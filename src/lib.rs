//! Reproduction package for *"Join Processing for Graph Patterns: An Old Dog with New
//! Tricks"*.
//!
//! This crate only hosts the runnable examples (`examples/`) and the cross-crate
//! integration and property tests (`tests/`); the library itself lives in the
//! workspace crates and is re-exported here for convenience:
//!
//! * [`graphjoin`] — the public façade ([`graphjoin::Database`], engines, catalog,
//!   disk persistence via [`graphjoin::Database::open`] / `persist`);
//! * [`gj_service`] — the concurrent serving layer (sessions, bounded admission,
//!   the session-history serializability checker);
//! * `gj-storage`, `gj-query`, `gj-runtime`, `gj-lftj`, `gj-minesweeper`,
//!   `gj-baselines`, `gj-datagen`, `gj-store` — the individual building blocks;
//! * `gj-bench` (not re-exported) — the table/figure harness binaries.
//!
//! Start with the repository-level `README.md` (quickstart, bench instructions)
//! and `ARCHITECTURE.md` (crate dependency graph, the prepare/execute split, the
//! `Sink` protocol, the parallel ordering guarantee, per-engine feature matrix,
//! and the "Persistence & serving" section for the disk store and service).

pub use gj_service;
pub use graphjoin;
