//! Ablation-oriented integration tests: every Minesweeper configuration (each of the
//! paper's Ideas toggled individually) must stay correct, and the statistics must
//! reflect what each idea is supposed to do. These are the correctness counterparts
//! of the speed-up Tables 1–3.

use gj_minesweeper::{run, MsConfig};
use graphjoin::{workload_database, BoundQuery, CatalogQuery, Engine, Graph};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

fn random_graph(seed: u64, n: u32, p: f64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> =
        (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).filter(|_| rng.gen_bool(p)).collect();
    Arc::new(Graph::new_undirected(n as usize, edges))
}

fn all_configs() -> Vec<(&'static str, MsConfig)> {
    let base = MsConfig::default();
    vec![
        ("default", base.clone()),
        ("no idea4", MsConfig { idea4_gap_memo: false, ..base.clone() }),
        (
            "no idea5",
            MsConfig { idea5_caching: false, idea6_complete_nodes: false, ..base.clone() },
        ),
        ("no idea6", MsConfig { idea6_complete_nodes: false, ..base.clone() }),
        ("no idea7", MsConfig { idea7_skeleton: false, ..base.clone() }),
        ("baseline", MsConfig::baseline()),
        (
            "nothing",
            MsConfig {
                idea4_gap_memo: false,
                idea5_caching: false,
                idea6_complete_nodes: false,
                idea7_skeleton: false,
                ..base
            },
        ),
    ]
}

#[test]
fn every_configuration_is_correct_on_every_query() {
    let graph = random_graph(11, 28, 0.15);
    for cq in CatalogQuery::all() {
        let db = workload_database(graph.clone(), cq, 3, 21);
        let q = cq.query();
        let expected = db.count(&q, &Engine::Lftj).unwrap();
        for (name, config) in all_configs() {
            let got = db.count(&q, &Engine::Minesweeper(config)).unwrap();
            assert_eq!(got, expected, "{} with {name}", q.name);
        }
    }
}

#[test]
fn idea4_reduces_index_probes() {
    let graph = random_graph(12, 80, 0.08);
    let db = workload_database(graph.clone(), CatalogQuery::ThreePath, 5, 3);
    let q = CatalogQuery::ThreePath.query();
    let bq = BoundQuery::new(db.instance(), &q, None).unwrap();

    let with = run(&bq, &MsConfig::default(), &mut |_, _| {});
    let without =
        run(&bq, &MsConfig { idea4_gap_memo: false, ..MsConfig::default() }, &mut |_, _| {});
    assert_eq!(with.results, without.results);
    assert!(with.probes_skipped > 0, "the memo never fired");
    assert!(
        with.probes < without.probes,
        "idea 4 should reduce probes: {} vs {}",
        with.probes,
        without.probes
    );
}

#[test]
fn idea6_produces_complete_node_hits_on_low_selectivity_paths() {
    let graph = random_graph(13, 80, 0.08);
    // Selectivity 2: half of the nodes in each sample -> lots of repeated sub-path work.
    let db = workload_database(graph.clone(), CatalogQuery::FourPath, 2, 3);
    let q = CatalogQuery::FourPath.query();
    let bq = BoundQuery::new(db.instance(), &q, None).unwrap();

    let with = run(&bq, &MsConfig::default(), &mut |_, _| {});
    let without =
        run(&bq, &MsConfig { idea6_complete_nodes: false, ..MsConfig::default() }, &mut |_, _| {});
    assert_eq!(with.results, without.results);
    assert!(with.complete_node_hits > 0, "complete nodes never fired");
    assert_eq!(without.complete_node_hits, 0);
}

#[test]
fn idea7_reduces_cds_growth_on_cyclic_queries() {
    let graph = random_graph(14, 40, 0.2);
    let db = workload_database(graph.clone(), CatalogQuery::FourClique, 1, 1);
    let q = CatalogQuery::FourClique.query();
    let bq = BoundQuery::new(db.instance(), &q, None).unwrap();

    let with = run(&bq, &MsConfig::default(), &mut |_, _| {});
    let without =
        run(&bq, &MsConfig { idea7_skeleton: false, ..MsConfig::default() }, &mut |_, _| {});
    assert_eq!(with.results, without.results);
    assert!(
        with.constraints_inserted <= without.constraints_inserted,
        "idea 7 should not insert more constraints ({} vs {})",
        with.constraints_inserted,
        without.constraints_inserted
    );
}

#[test]
fn stats_results_match_the_actual_count_in_every_configuration() {
    let graph = random_graph(15, 30, 0.18);
    let db = workload_database(graph.clone(), CatalogQuery::TwoComb, 2, 9);
    let q = CatalogQuery::TwoComb.query();
    let bq = BoundQuery::new(db.instance(), &q, None).unwrap();
    let expected = db.count(&q, &Engine::Lftj).unwrap();
    for (name, config) in all_configs() {
        let mut emitted = 0u64;
        let stats = run(&bq, &config, &mut |_, m| emitted += m);
        assert_eq!(stats.results, expected, "stats.results for {name}");
        assert_eq!(emitted, expected, "emitted for {name}");
        assert!(stats.iterations >= stats.results, "iterations for {name}");
    }
}

#[test]
fn non_neo_gaos_still_count_correctly() {
    // Table 4 compares GAOs; whatever the GAO, the answer must not change.
    let graph = random_graph(16, 40, 0.1);
    let db = workload_database(graph.clone(), CatalogQuery::FourPath, 4, 2);
    let q = CatalogQuery::FourPath.query();
    let expected = db.count(&q, &Engine::Lftj).unwrap();
    let v = |s: &str| q.var(s).unwrap();
    let gaos = [
        vec![v("a"), v("b"), v("c"), v("d"), v("e")],
        vec![v("c"), v("b"), v("a"), v("d"), v("e")],
        vec![v("a"), v("b"), v("d"), v("c"), v("e")], // non-NEO
        vec![v("b"), v("a"), v("d"), v("c"), v("e")], // non-NEO
    ];
    for gao in gaos {
        let got = db.count_with_gao(&q, &Engine::minesweeper(), Some(gao.clone())).unwrap();
        assert_eq!(got, expected, "GAO {gao:?}");
    }
}
