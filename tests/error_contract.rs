//! Stability contract for the typed-error surface.
//!
//! The short labels returned by [`ExecError::kind`] and [`RunOutcome::label`]
//! are machine-readable: benchmark outcome cells, abort-parity assertions, and
//! the fault-injection harness all match on the literal strings. This test pins
//! every one of them, so renaming a label (or adding a variant without deciding
//! its label) fails here first — loudly — instead of silently reshaping
//! downstream reports.

use graphjoin::{CancelToken, CatalogQuery, Database, ExecError, Graph, QueryBudget, RunOutcome};
use std::time::Duration;

/// Every `ExecError` variant, constructed directly.
fn all_variants() -> Vec<ExecError> {
    vec![
        ExecError::BudgetExceeded { rows: 7, budget: 5 },
        ExecError::DeadlineExceeded,
        ExecError::Cancelled,
        ExecError::WorkerPanicked { payload: "boom".to_string() },
        ExecError::Saturated { active: 9, capacity: 8 },
    ]
}

#[test]
fn every_exec_error_kind_string_is_pinned() {
    let kinds: Vec<&str> = all_variants().iter().map(ExecError::kind).collect();
    assert_eq!(kinds, ["budget", "deadline", "cancelled", "panic", "saturated"]);
}

#[test]
fn every_display_rendering_is_pinned() {
    let rendered: Vec<String> = all_variants().iter().map(ExecError::to_string).collect();
    assert_eq!(
        rendered,
        [
            "row budget exceeded (7 rows delivered, budget 5)",
            "deadline exceeded",
            "cancelled",
            "worker panicked: boom",
            "service saturated (9 in flight, capacity 8)",
        ]
    );
}

#[test]
fn run_outcome_labels_are_pinned() {
    assert_eq!(RunOutcome::Completed.label(), "completed");
    assert!(RunOutcome::Completed.is_completed());
    for err in all_variants() {
        let outcome = RunOutcome::Aborted { reason: err.clone(), failpoint: None };
        assert_eq!(outcome.label(), err.kind(), "aborted label delegates to kind");
        assert!(!outcome.is_completed());
    }
}

/// The labels a live run reports must be the same pinned strings — the contract
/// holds end to end, not just on hand-built values.
#[test]
fn live_runs_report_the_pinned_labels() {
    let mut db = Database::new();
    let n = 24u32;
    let edges: Vec<(u32, u32)> = (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).collect();
    db.add_graph(Graph::new_undirected(n as usize, edges));
    let q = CatalogQuery::ThreeClique.query();
    let prepared = db.prepare(&q, &graphjoin::Engine::Lftj).unwrap();

    let completed = prepared.count_outcome(1, &QueryBudget::new());
    assert_eq!(completed.outcome.label(), "completed");

    let budget = prepared.count_outcome(1, &QueryBudget::new().with_max_rows(1));
    assert_eq!(budget.outcome.label(), "budget");

    let deadline = prepared.count_outcome(1, &QueryBudget::new().with_timeout(Duration::ZERO));
    assert_eq!(deadline.outcome.label(), "deadline");

    let token = CancelToken::default();
    token.cancel();
    let cancelled = prepared.count_outcome(1, &QueryBudget::new().with_cancel_token(token));
    assert_eq!(cancelled.outcome.label(), "cancelled");
}
