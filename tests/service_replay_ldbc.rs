//! Serving-layer acceptance for the LDBC workload: a seeded mixed read/edit
//! traffic trace replayed through bounded admission, per-query budgets and
//! deliberate cancellations on several concurrent sessions — gated by the
//! serial-replay history checker.

use gj_datagen::{LdbcConfig, SocialNetwork};
use gj_service::{generate_trace, replay_verified, Service, ServiceConfig, TraceConfig, TrafficOp};
use graphjoin::{Database, Engine, LdbcQuery, MsConfig};

fn ldbc_database() -> Database {
    let net = SocialNetwork::generate(&LdbcConfig {
        persons: 100,
        tags: 20,
        days: 32,
        tag_selectivity: 4,
        person_selectivity: 4,
        seed: 0x5e71,
        ..LdbcConfig::default()
    })
    .expect("valid config");
    let mut db = Database::new();
    for (name, rel) in net.relations() {
        db.add_relation(*name, rel.clone());
    }
    db
}

fn read_mix() -> Vec<(graphjoin::Query, Engine)> {
    [
        LdbcQuery::TwoHopFriends,
        LdbcQuery::FriendTriangle,
        LdbcQuery::FreshLikes,
        LdbcQuery::CommonTagPair,
        LdbcQuery::CreatorFan,
    ]
    .iter()
    .flat_map(|lq| {
        [(lq.query(), Engine::Lftj), (lq.query(), Engine::Minesweeper(MsConfig::default()))]
    })
    .collect()
}

/// Acceptance: a 180-op trace (reads on two engines, edit batches over three
/// social relations, ~1 in 8 reads pre-cancelled) replayed on 4 sessions
/// through a bounded gate. Every tolerated outcome is accounted for, the edits
/// are visible in the final epoch, and the recorded history is serially
/// consistent.
#[test]
fn mixed_ldbc_traffic_replays_serially_consistent() {
    let db = ldbc_database();
    let base = db.clone();
    let trace_config = TraceConfig {
        ops: 180,
        edit_fraction: 0.25,
        cancel_fraction: 0.125,
        max_batch: 3,
        seed: 0xcafe,
    };
    let trace = generate_trace(&db, &read_mix(), &["knows", "likes", "hasTag"], &trace_config);
    assert_eq!(trace.len(), 180);
    let cancel_ops =
        trace.iter().filter(|op| matches!(op, TrafficOp::Read { cancel: true, .. })).count() as u64;
    let edit_ops = trace.iter().filter(|op| matches!(op, TrafficOp::Edit { .. })).count() as u64;
    assert!(cancel_ops > 0, "the trace must exercise cancellation");
    assert!(edit_ops > 0, "the trace must exercise edits");

    // Bounded admission: 2 slots and a deep-enough queue that load sheds only
    // under genuine overload (tolerated and counted either way).
    let service = Service::new(
        db,
        ServiceConfig { max_concurrent: 2, queue_depth: 64, ..ServiceConfig::default() },
    );
    let report = replay_verified(&service, &base, &trace, 4).expect("history-checked replay");

    // Every operation ends in exactly one tolerated, counted outcome.
    assert_eq!(
        report.reads + report.cancelled + report.saturated + report.edits,
        trace.len() as u64,
        "unaccounted operations: {report:?}"
    );
    assert_eq!(report.edits, edit_ops, "every edit batch must apply");
    assert!(report.reads > 0, "no reads completed: {report:?}");
    assert!(report.read_rows > 0, "reads never returned rows: {report:?}");
    // 4 workers over 2 slots with a 64-deep queue never saturate, so every
    // pre-cancelled read must abort through the typed cancellation path.
    assert_eq!(report.saturated, 0, "{report:?}");
    assert_eq!(report.cancelled, cancel_ops, "{report:?}");
    assert!(report.final_epoch > 0, "edits never advanced the epoch");
    assert_eq!(report.final_epoch, service.epoch());
}

/// A saturating gate (one slot, no queue) hammered by 6 sessions: rejections
/// must be typed and counted — never panics, never a corrupted history — and
/// whatever completed must still replay serially.
#[test]
fn saturating_ldbc_replay_stays_serially_consistent() {
    let db = ldbc_database();
    let base = db.clone();
    let trace_config = TraceConfig {
        ops: 90,
        edit_fraction: 0.2,
        cancel_fraction: 0.1,
        max_batch: 2,
        seed: 0xbeef,
    };
    let trace = generate_trace(&db, &read_mix(), &["knows", "likes"], &trace_config);
    let service = Service::new(
        db,
        ServiceConfig { max_concurrent: 1, queue_depth: 0, ..ServiceConfig::default() },
    );
    let report = replay_verified(&service, &base, &trace, 6).expect("history-checked replay");
    assert_eq!(
        report.reads + report.cancelled + report.saturated + report.edits,
        trace.len() as u64,
        "unaccounted operations: {report:?}"
    );
    // Edits bypass the read gate: they must all land even under saturation.
    let edit_ops = trace.iter().filter(|op| matches!(op, TrafficOp::Edit { .. })).count() as u64;
    assert_eq!(report.edits, edit_ops);
}
