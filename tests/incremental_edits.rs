//! Cross-crate tests for the delta-trie edit path: incremental inserts and
//! deletes must update every cached `(relation, permutation)` index through
//! its delta layer — no trie rebuild, observable as `indexes_built() == 0` on
//! a re-prepare — while every engine, serial and parallel, answers exactly as
//! a from-scratch database built over the edited data.

use graphjoin::{CatalogQuery, Database, Engine, ExecLimits, Graph, MsConfig};

/// Engines whose counts we compare against a from-scratch rebuild.
fn engines() -> Vec<Engine> {
    vec![
        Engine::Lftj,
        Engine::Minesweeper(MsConfig::default()),
        Engine::Minesweeper(MsConfig { granularity: 8, ..MsConfig::default() }),
        Engine::HashJoin(ExecLimits::default()),
        Engine::SortMergeJoin(ExecLimits::default()),
        Engine::GraphEngine,
    ]
}

/// A database with the same logical content as `db` but no shared state: the
/// edited `"edge"` relation re-enters through `add_graph`, so even the graph
/// engine's CSR view is rebuilt from scratch.
fn rebuilt_from_scratch(db: &Database) -> Database {
    let graph = db.graph().expect("test databases carry a graph");
    let mut fresh = Database::new();
    fresh.add_graph(Graph::new(graph.num_nodes(), graph.edges().to_vec()));
    fresh
}

/// Acceptance: on a 30k-node indexed relation, an edge insert/delete batch
/// updates all cached permutations without a full trie rebuild.
#[test]
fn edits_on_a_30k_node_graph_rebuild_no_indexes() {
    let mut db = Database::new();
    db.add_graph(gj_datagen::erdos_renyi(30_000, 60_000, 77));
    let q = CatalogQuery::ThreeClique.query();

    // Warm the cache for both trie engines (several permutations of "edge").
    let cold = db.prepare(&q, &Engine::Lftj).unwrap();
    assert!(cold.indexes_built() > 0, "cold preparation builds indexes");
    let before_lftj = cold.count().unwrap();
    db.prepare(&q, &Engine::minesweeper()).unwrap();

    // Edit: close a triangle among fresh high-degree-free nodes and delete a
    // couple of existing edges.
    let existing: Vec<(u32, u32)> = db.graph().unwrap().edges()[..2].to_vec();
    let inserted =
        db.insert_edges(&[(29_990, 29_991), (29_991, 29_992), (29_990, 29_992)]).unwrap();
    assert_eq!(inserted, 6, "three new undirected edges, both orientations each");
    assert!(db.delete_edges(&existing).unwrap() > 0);

    // Every cached permutation absorbed the edit through its delta layer.
    let warm = db.prepare(&q, &Engine::Lftj).unwrap();
    assert_eq!(warm.indexes_built(), 0, "edits must not invalidate cached indexes");
    let warm_ms = db.prepare(&q, &Engine::minesweeper()).unwrap();
    assert_eq!(warm_ms.indexes_built(), 0);

    let fresh = rebuilt_from_scratch(&db);
    let expected = fresh.count(&q, &Engine::Lftj).unwrap();
    assert_eq!(warm.count().unwrap(), expected);
    assert_eq!(warm_ms.count().unwrap(), expected);
    assert!(
        warm.count().unwrap() > before_lftj,
        "the inserted triangle must be visible through the merged iterators"
    );
}

/// Regression (delta-aware partitioning): edits whose keys fall entirely
/// outside the base trie's first-level min/max used to be dropped by
/// `partition_first_attribute`, which read only the base level-0 values — a
/// parallel run then never visited the delta-only range. Every engine at 4
/// threads must see rows inserted far outside the original value range.
#[test]
fn out_of_range_edits_survive_parallel_partitioning() {
    // Node ids clustered in [50, 80): the base level-0 range is narrow.
    let edges: Vec<(u32, u32)> =
        (50..79).map(|a| (a, a + 1)).chain([(50, 52), (60, 62), (70, 72)]).collect();
    let mut db = Database::new();
    db.add_graph(Graph::new_undirected(80, edges));
    let q = CatalogQuery::ThreeClique.query();

    // Warm every engine's indexes before editing.
    for engine in engines() {
        db.prepare(&q, &engine).unwrap();
    }

    // New triangles strictly below and strictly above the base key range.
    db.insert_edges(&[(2, 5), (5, 9), (2, 9)]).unwrap();
    db.insert_edges(&[(700, 701), (701, 702), (700, 702)]).unwrap();
    // And delete one in-range triangle edge so tombstones ride along.
    db.delete_edges(&[(50, 52)]).unwrap();

    let fresh = rebuilt_from_scratch(&db);
    for engine in engines() {
        let expected = fresh.count(&q, &engine).unwrap();
        let prepared = db.prepare(&q, &engine).unwrap();
        assert_eq!(
            prepared.count().unwrap(),
            expected,
            "serial {} must see out-of-range edits",
            engine.label()
        );
        assert_eq!(
            prepared.par_count(4).unwrap(),
            expected,
            "parallel {} must partition the merged (base + delta) key range",
            engine.label()
        );
    }
}
