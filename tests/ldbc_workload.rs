//! Cross-crate tests for the LDBC-style social-network workload: the typed
//! generator feeds every engine through the whole query suite (serial and
//! parallel, against the naive reference), and random edit scripts over the
//! social relations must flow through the delta-trie layers — no index
//! rebuilds — while agreeing with a from-scratch recompute.

use gj_datagen::{EntityKind, LdbcConfig, SocialNetwork};
use graphjoin::{naive_count, Database, Engine, ExecLimits, LdbcQuery, MsConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The general-purpose engines (the clique-specialised graph engine does not
/// run multi-relation patterns).
fn engines() -> [Engine; 4] {
    [
        Engine::Lftj,
        Engine::Minesweeper(MsConfig::default()),
        Engine::HashJoin(ExecLimits::default()),
        Engine::SortMergeJoin(ExecLimits::default()),
    ]
}

/// A small but non-degenerate network, deterministic across the test file.
fn small_network() -> SocialNetwork {
    SocialNetwork::generate(&LdbcConfig {
        persons: 120,
        tags: 24,
        days: 32,
        tag_selectivity: 4,
        person_selectivity: 4,
        seed: 0x50c1a1,
        ..LdbcConfig::default()
    })
    .expect("valid config")
}

fn database_of(net: &SocialNetwork) -> Database {
    let mut db = Database::new();
    for (name, rel) in net.relations() {
        db.add_relation(*name, rel.clone());
    }
    db
}

/// Acceptance: the full suite runs through every engine, serial and at 4
/// threads, and agrees with the naive reference enumerator on every query.
#[test]
fn ldbc_suite_agrees_with_naive_across_engines_and_threads() {
    let net = small_network();
    let db = database_of(&net);
    let mut non_empty = 0;
    for lq in LdbcQuery::all() {
        let query = lq.query();
        let expected = naive_count(db.instance(), &query);
        non_empty += u32::from(expected > 0);
        for engine in engines() {
            let prepared = db.prepare(&query, &engine).expect("prepare");
            assert_eq!(
                prepared.count().expect("count"),
                expected,
                "{} serial {}",
                lq.name(),
                engine.label()
            );
            assert_eq!(
                prepared.par_count(4).expect("par_count"),
                expected,
                "{} par4 {}",
                lq.name(),
                engine.label()
            );
        }
    }
    // The workload is not vacuous at this scale: almost every query answers.
    assert!(non_empty >= 9, "only {non_empty}/11 queries had rows");
}

/// The generated schema honours its catalog: every relation's rows stay inside
/// the typed domains, and the id ranges of the four entity kinds are disjoint.
#[test]
fn generated_rows_respect_the_typed_catalog() {
    let net = small_network();
    let catalog = net.catalog();
    let kinds = [EntityKind::Person, EntityKind::Post, EntityKind::Tag, EntityKind::Day];
    for (i, &a) in kinds.iter().enumerate() {
        for &b in &kinds[i + 1..] {
            let (da, db) = (catalog.domain(a), catalog.domain(b));
            assert!(da.hi <= db.lo || db.hi <= da.lo, "{a:?}/{b:?} domains overlap");
        }
    }
    for meta in catalog.relations() {
        let rel = net.relation(meta.name).expect("relation exists");
        assert_eq!(rel.arity(), meta.arity(), "{}", meta.name);
        for row in rel.iter() {
            for (col, &kind) in meta.columns.iter().enumerate() {
                assert!(
                    catalog.domain(kind).contains(row[col]),
                    "{}[{col}] = {} escapes its {kind:?} domain",
                    meta.name,
                    row[col]
                );
            }
        }
    }
}

/// A from-scratch twin of `db`: same logical relations, fresh indexes.
fn rebuilt_twin(db: &Database) -> Database {
    let names: Vec<String> = db.instance().relation_names().map(str::to_string).collect();
    let mut fresh = Database::new();
    for name in names {
        let relation = db.instance().relation(&name).expect("resident relation").clone();
        fresh.add_relation(name, relation);
    }
    fresh
}

/// One random edit batch against `name`: inserts perturb existing rows (staying
/// inside the typed value regime), deletes sample current rows.
fn random_edit(rng: &mut StdRng, db: &Database, name: &str) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let current = db.instance().relation(name).expect("editable relation");
    let mut ins = Vec::new();
    let mut del = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        let row = current.row(rng.gen_range(0..current.len()));
        let mut row = row.to_vec();
        let col = rng.gen_range(0..row.len());
        row[col] += rng.gen_range(1..3i64);
        ins.push(row);
    }
    for _ in 0..rng.gen_range(0usize..3) {
        del.push(current.row(rng.gen_range(0..current.len())).to_vec());
    }
    (ins, del)
}

/// Satellite: random insert/delete streams over the LDBC relations must be
/// absorbed by the delta-trie layers (`indexes_built() == 0` on re-prepare)
/// and leave every engine, serial and at 4 threads, in exact agreement with a
/// full recompute over the edited data. Failures print the reproducing seed.
#[test]
fn ldbc_edit_scripts_agree_with_full_recompute() {
    const SEED: u64 = 0xed17_5eed;
    let mut rng = StdRng::seed_from_u64(SEED);
    let net = small_network();
    let mut db = database_of(&net);
    let queries = [
        LdbcQuery::FriendTriangle,
        LdbcQuery::CreatorFan,
        LdbcQuery::FreshLikes,
        LdbcQuery::CommonTagPair,
    ];
    let ctx = format!("seed {SEED:#018x}");

    // Warm every engine on every query, so later preparations must be served
    // by delta-patched indexes rather than rebuilds.
    for lq in &queries {
        for engine in engines() {
            db.prepare(&lq.query(), &engine).expect("warm prepare");
        }
    }

    let editable = ["knows", "likes", "hasTag", "post", "hasCreator"];
    for step in 0..6 {
        let name = editable[rng.gen_range(0..editable.len())];
        let (ins, del) = random_edit(&mut rng, &db, name);
        db.edit_rows(name, &ins, &del)
            .unwrap_or_else(|e| panic!("{ctx} step {step}: edit on {name} failed: {e}"));

        let fresh = rebuilt_twin(&db);
        for lq in &queries {
            let query = lq.query();
            for engine in engines() {
                let label = format!("{ctx} step {step} {} {}", lq.name(), engine.label());
                let prepared = db.prepare(&query, &engine).expect("prepare");
                if matches!(engine, Engine::Lftj | Engine::Minesweeper(_)) {
                    assert_eq!(
                        prepared.indexes_built(),
                        0,
                        "{label}: edits must delta-patch cached indexes, not rebuild"
                    );
                }
                let expected =
                    fresh.prepare(&query, &engine).expect("twin prepare").count().expect("count");
                assert_eq!(
                    prepared.count().expect("count"),
                    expected,
                    "{label}: serial count disagrees with full recompute"
                );
                assert_eq!(
                    prepared.par_count(4).expect("par_count"),
                    expected,
                    "{label}: par4 count disagrees with full recompute"
                );
            }
        }
    }
}
