//! Workspace-level property tests: on arbitrary small graphs and samples, all join
//! engines must agree with the naive reference join on every catalog query, and the
//! AGM bound must hold. These are the strongest end-to-end invariants in the
//! repository — any unsoundness in the trie indexes, the CDS, the skeleton logic or
//! the pairwise planner shows up here.

use gj_query::naive_join;
use graphjoin::{agm_bound, CatalogQuery, Database, Engine, ExecLimits, Graph, MsConfig, Relation};
use proptest::prelude::*;

/// Strategy: a random undirected graph (as raw edge picks) plus two node samples.
fn arb_database() -> impl Strategy<Value = Database> {
    (
        2usize..14,
        prop::collection::vec((0u32..14, 0u32..14), 0..70),
        prop::collection::vec(0i64..14, 0..10),
        prop::collection::vec(0i64..14, 0..10),
    )
        .prop_map(|(n, raw_edges, v1, v2)| {
            let n = n.max(raw_edges.iter().map(|&(a, b)| a.max(b) as usize + 1).max().unwrap_or(1));
            let graph = Graph::new_undirected(n, raw_edges);
            let mut db = Database::new();
            db.add_graph(graph);
            db.add_relation("v1", Relation::from_values(v1.into_iter().filter(|&v| v < n as i64)));
            db.add_relation("v2", Relation::from_values(v2.into_iter().filter(|&v| v < n as i64)));
            db.add_relation("v3", Relation::from_values((0..n as i64).step_by(2)));
            db.add_relation("v4", Relation::from_values((0..n as i64).step_by(3)));
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LFTJ, Minesweeper (several configurations) and the pairwise baselines agree
    /// with the naive join on every catalog query.
    #[test]
    fn all_engines_agree_with_the_naive_join(db in arb_database()) {
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let expected = naive_join(db.instance(), &q).len() as u64;
            let engines = vec![
                Engine::Lftj,
                Engine::minesweeper(),
                Engine::Minesweeper(MsConfig::baseline()),
                Engine::Minesweeper(MsConfig {
                    idea4_gap_memo: false,
                    idea5_caching: false,
                    idea6_complete_nodes: false,
                    idea7_skeleton: false,
                    ..MsConfig::default()
                }),
                Engine::HashJoin(ExecLimits::default()),
                Engine::SortMergeJoin(ExecLimits::default()),
            ];
            for engine in engines {
                let got = db.count(&q, &engine).unwrap();
                prop_assert_eq!(got, expected, "{} with {}", q.name, engine.label());
            }
            if let Some(hybrid) = Engine::hybrid_for(cq) {
                prop_assert_eq!(db.count(&q, &hybrid).unwrap(), expected, "{} hybrid", q.name);
            }
        }
    }

    /// The specialised graph engine agrees with the relational definition of cliques.
    #[test]
    fn graph_engine_agrees_on_cliques(db in arb_database()) {
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourClique] {
            let q = cq.query();
            let expected = db.count(&q, &Engine::Lftj).unwrap();
            prop_assert_eq!(db.count(&q, &Engine::GraphEngine).unwrap(), expected, "{}", q.name);
        }
    }

    /// The output never exceeds the AGM bound (checked on the unfiltered cyclic
    /// patterns, since the bound ignores order filters).
    #[test]
    fn output_respects_the_agm_bound(db in arb_database()) {
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourClique, CatalogQuery::FourCycle] {
            let mut q = cq.query();
            q.filters.clear();
            let bq = db.bind(&q, None).unwrap();
            let bound = agm_bound(&q, &bq.atom_sizes());
            let actual = db.count(&q, &Engine::Lftj).unwrap() as f64;
            prop_assert!(actual <= bound.bound + 1e-6, "{}: {} > {}", q.name, actual, bound.bound);
        }
    }

    /// Parallel Minesweeper partitions the output space without losing or double
    /// counting anything.
    #[test]
    fn parallel_minesweeper_agrees(db in arb_database(), threads in 2usize..5, granularity in 1usize..4) {
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::ThreePath] {
            let q = cq.query();
            let expected = db.count(&q, &Engine::minesweeper()).unwrap();
            let cfg = MsConfig { threads, granularity, ..MsConfig::default() };
            prop_assert_eq!(db.count(&q, &Engine::Minesweeper(cfg)).unwrap(), expected, "{}", q.name);
        }
    }

    /// Minesweeper is correct under any legal GAO, NEO or not.
    #[test]
    fn minesweeper_is_gao_independent(db in arb_database(), seed in 0u64..500) {
        let q = CatalogQuery::ThreePath.query();
        let n = q.num_vars();
        let mut gao: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(37).wrapping_add(i * 11) % (i + 1);
            gao.swap(i, j);
        }
        let expected = db.count(&q, &Engine::Lftj).unwrap();
        let got = db.count_with_gao(&q, &Engine::minesweeper(), Some(gao.clone())).unwrap();
        prop_assert_eq!(got, expected, "GAO {:?}", gao);
    }
}
