//! Parallel-vs-serial differential tests for the morsel-driven runtime: over random
//! and property-generated instances, `PreparedQuery::run_parallel` (and the
//! `par_count` / `par_collect` / `par_first_k` / `par_exists` conveniences) must
//! agree with the serial execution for LFTJ and Minesweeper across
//! `threads ∈ {1, 2, 4, 8}` and every granularity — identical counts, identical
//! (not merely set-equal) `collect` results, and `first_k` answers that are exact
//! serial prefixes even when early termination retires morsels across workers.

use graphjoin::{CatalogQuery, Database, Engine, Graph, MsConfig, Ordered, Relation, Val};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::ops::ControlFlow;

/// A random database: a seeded undirected graph plus the node samples every catalog
/// query draws on.
fn random_database(seed: u64, n: u32, p: f64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> =
        (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).filter(|_| rng.gen_bool(p)).collect();
    let mut db = Database::new();
    db.add_graph(Graph::new_undirected(n as usize, edges));
    for (i, step) in [3usize, 2, 5, 4].iter().enumerate() {
        let name = format!("v{}", i + 1);
        db.add_relation(name, Relation::from_values((0..n as i64).step_by(*step)));
    }
    db
}

/// The engines with a range-partitionable search, over several granularities.
fn parallel_engines() -> Vec<Engine> {
    let mut engines = vec![Engine::Lftj];
    for granularity in [1, 2, 8] {
        engines.push(Engine::Minesweeper(MsConfig { granularity, ..MsConfig::default() }));
    }
    engines.push(Engine::Minesweeper(MsConfig {
        idea8_batch_counting: true,
        granularity: 4,
        ..MsConfig::default()
    }));
    engines
}

#[test]
fn parallel_counts_match_serial_for_all_engines_and_thread_counts() {
    for seed in [1u64, 2] {
        let db = random_database(seed, 26, 0.18);
        for cq in CatalogQuery::all() {
            let q = cq.query();
            for engine in parallel_engines() {
                let prepared = db.prepare(&q, &engine).unwrap();
                let serial = prepared.count().unwrap();
                for threads in [1, 2, 4, 8] {
                    assert_eq!(
                        prepared.par_count(threads).unwrap(),
                        serial,
                        "seed {seed} {} {} threads {threads}",
                        q.name,
                        engine.label()
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_collect_is_identical_to_serial_collect() {
    let db = random_database(3, 24, 0.2);
    for cq in [
        CatalogQuery::ThreeClique,
        CatalogQuery::FourClique,
        CatalogQuery::FourCycle,
        CatalogQuery::ThreePath,
    ] {
        let q = cq.query();
        for engine in parallel_engines() {
            let prepared = db.prepare(&q, &engine).unwrap();
            let serial = prepared.collect().unwrap();
            for threads in [2, 4, 8] {
                let parallel = prepared.par_collect(threads).unwrap();
                // The ordered shard merge makes the parallel rows *identical* to the
                // serial emission, not just set-equal — assert the strong form.
                assert_eq!(parallel, serial, "{} {} threads {threads}", q.name, engine.label());
            }
        }
    }
}

#[test]
fn parallel_first_k_is_a_serial_prefix_under_early_termination() {
    let db = random_database(5, 28, 0.2);
    for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
        let q = cq.query();
        for engine in [Engine::Lftj, Engine::minesweeper()] {
            let prepared = db.prepare(&q, &engine).unwrap();
            let all = prepared.collect().unwrap();
            for threads in [2, 4, 8] {
                for k in [0usize, 1, 2, all.len() / 2, all.len(), all.len() + 7] {
                    let prefix = prepared.par_first_k(k, threads).unwrap();
                    assert_eq!(
                        prefix,
                        all[..k.min(all.len())].to_vec(),
                        "{} {} threads {threads} k {k}",
                        q.name,
                        engine.label()
                    );
                }
                assert_eq!(
                    prepared.par_exists(threads).unwrap(),
                    !all.is_empty(),
                    "{} {} threads {threads}",
                    q.name,
                    engine.label()
                );
            }
        }
    }
}

#[test]
fn user_sinks_run_in_parallel_through_ordered() {
    let db = random_database(7, 24, 0.2);
    let q = CatalogQuery::ThreeClique.query();
    let prepared = db.prepare(&q, &Engine::Lftj).unwrap();
    let serial = prepared.collect().unwrap();
    // A custom closure sink, wrapped in Ordered, observes the serial stream.
    let mut rows: Vec<Vec<Val>> = Vec::new();
    let mut sink = Ordered::new(|b: &[Val]| {
        rows.push(b.to_vec());
        ControlFlow::Continue(())
    });
    let stats = prepared.run_parallel(&mut sink, 4).unwrap();
    assert_eq!(rows, serial);
    assert_eq!(stats.rows, serial.len() as u64);
    // A breaking user sink stops the parallel run early, and the delivered rows are
    // still a serial prefix.
    let mut prefix: Vec<Vec<Val>> = Vec::new();
    let mut sink = Ordered::new(|b: &[Val]| {
        prefix.push(b.to_vec());
        if prefix.len() == 2 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    prepared.run_parallel(&mut sink, 4).unwrap();
    assert_eq!(prefix, serial[..2.min(serial.len())].to_vec());
}

#[test]
fn prepared_queries_are_shareable_across_threads() {
    // One prepared query serving "traffic" from several client threads, each
    // running parallel and serial executions concurrently.
    let db = random_database(9, 24, 0.2);
    let q = CatalogQuery::FourCycle.query();
    let prepared = db.prepare(&q, &Engine::minesweeper()).unwrap();
    let serial = prepared.count().unwrap();
    std::thread::scope(|scope| {
        for threads in [1, 2, 4] {
            let prepared = &prepared;
            scope.spawn(move || {
                assert_eq!(prepared.par_count(threads).unwrap(), serial);
            });
        }
    });
}

/// Strategy: a small random graph database (same shape as `prop_engines.rs`).
fn arb_database() -> impl Strategy<Value = Database> {
    (2usize..12, prop::collection::vec((0u32..12, 0u32..12), 0..50)).prop_map(|(n, raw_edges)| {
        let n = n.max(raw_edges.iter().map(|&(a, b)| a.max(b) as usize + 1).max().unwrap_or(1));
        let graph = Graph::new_undirected(n, raw_edges);
        let mut db = Database::new();
        db.add_graph(graph);
        db.add_relation("v1", Relation::from_values((0..n as i64).step_by(2)));
        db.add_relation("v2", Relation::from_values((0..n as i64).step_by(3)));
        db.add_relation("v3", Relation::from_values((0..n as i64).step_by(5)));
        db.add_relation("v4", Relation::from_values((1..n as i64).step_by(4)));
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: on arbitrary graphs, every thread/granularity combination agrees
    /// with the serial execution on counts and ordered rows for both engines.
    #[test]
    fn parallel_execution_agrees_with_serial_on_arbitrary_graphs(db in arb_database()) {
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
            let q = cq.query();
            for engine in [
                Engine::Lftj,
                Engine::Minesweeper(MsConfig { granularity: 3, ..MsConfig::default() }),
            ] {
                let prepared = db.prepare(&q, &engine).unwrap();
                let rows = prepared.collect().unwrap();
                for threads in [2, 8] {
                    prop_assert_eq!(
                        prepared.par_count(threads).unwrap(),
                        rows.len() as u64,
                        "{} {} threads {}", q.name, engine.label(), threads
                    );
                    prop_assert_eq!(
                        prepared.par_collect(threads).unwrap(),
                        rows.clone(),
                        "{} {} threads {}", q.name, engine.label(), threads
                    );
                    let k = rows.len() / 2 + 1;
                    prop_assert_eq!(
                        prepared.par_first_k(k, threads).unwrap(),
                        rows[..k.min(rows.len())].to_vec(),
                        "{} {} threads {}", q.name, engine.label(), threads
                    );
                }
            }
        }
    }
}
