//! Fault-injection sweep for the fault-tolerant execution stack: armed
//! [`FailpointRegistry`] sites (morsel claim, shard merge, join step, trie build)
//! inject panics, forced budget trips and delays into every engine at 1 and 4
//! worker threads, and the suite asserts the robustness contract:
//!
//! * a run under an injected fault either **completes with the exact answer**
//!   (the site was never reached — e.g. parallel-only sites under a serial run)
//!   or surfaces a **typed [`ExecError`]** matching the injected action — never a
//!   process abort and never a wrong answer;
//! * after the fault, the *same* `PreparedQuery` (same plan, same shared index
//!   cache, same worker pool) re-executes cleanly and byte-identically to a
//!   fresh database;
//! * abort reasons agree between the serial and the parallel execution paths;
//! * cancellation is observed within a bounded latency even when morsel claims
//!   are artificially slowed.

use graphjoin::{
    fault::sites, CancelToken, CatalogQuery, Database, Engine, EngineError, ExecError, ExecLimits,
    FailAction, FailpointRegistry, Graph, MsConfig, QueryBudget, Relation, RunOutcome, StoreError,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Silences the default panic-hook backtrace for *injected* panics (payloads
/// starting with `"failpoint panic"`). Installed once per process and delegating
/// to the previous hook otherwise, so a genuine test failure still prints.
fn quiet_failpoint_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
            if !msg.is_some_and(|m| m.contains("failpoint panic")) {
                prev(info);
            }
        }));
    });
}

/// A seeded random database big enough that every engine's inner loop passes the
/// cooperative check stride many times (so `join_step` faults genuinely fire),
/// yet small enough for a debug-mode sweep.
fn test_database(seed: u64) -> Database {
    let n: u32 = 40;
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|_| rng.gen_bool(0.22))
        .collect();
    let mut db = Database::new();
    db.add_graph(Graph::new_undirected(n as usize, edges));
    for (i, step) in [3usize, 2, 5, 4].iter().enumerate() {
        let name = format!("v{}", i + 1);
        db.add_relation(name, Relation::from_values((0..n as i64).step_by(*step)));
    }
    db
}

/// Every engine the fault sweep covers: both trie engines plus both pairwise
/// baselines (the morsel-parallel pairwise path has its own driver wiring).
fn engines() -> Vec<Engine> {
    vec![
        Engine::Lftj,
        Engine::Minesweeper(MsConfig::default()),
        Engine::HashJoin(ExecLimits::default()),
        Engine::SortMergeJoin(ExecLimits::default()),
    ]
}

/// The central sweep: sites × actions × engines × threads. Each run must either
/// complete exactly (fault site never reached) or abort with the typed error the
/// action dictates; either way the same prepared query then re-executes cleanly.
#[test]
fn injected_faults_yield_typed_errors_or_exact_answers_and_clean_reruns() {
    quiet_failpoint_panics();
    let db = test_database(11);
    let q = CatalogQuery::ThreePath.query();
    for engine in engines() {
        let prepared = db.prepare(&q, &engine).unwrap();
        let expected = prepared.count().unwrap();
        for site in [sites::MORSEL_CLAIM, sites::SHARD_MERGE, sites::JOIN_STEP] {
            for action in [FailAction::Panic, FailAction::Trip] {
                for threads in [1usize, 4] {
                    let tag = format!("{} {site} {action:?} threads {threads}", engine.label());
                    let fp = Arc::new(FailpointRegistry::new());
                    fp.arm(site, action);
                    let budget = QueryBudget::new().with_failpoints(fp.clone());
                    match prepared.try_par_count(threads, &budget) {
                        Ok(count) => {
                            // Legitimate only when the site was never reached
                            // (driver-level sites do not exist on a serial run).
                            assert_eq!(count, expected, "completed run must be exact: {tag}");
                            assert_eq!(
                                fp.fired(),
                                None,
                                "a fired fault must not yield a completed run: {tag}"
                            );
                        }
                        Err(EngineError::Exec(err)) => {
                            assert_eq!(fp.fired().as_deref(), Some(site), "attribution: {tag}");
                            let want = match action {
                                FailAction::Panic => "panic",
                                FailAction::Trip => "budget",
                                FailAction::Delay(_) => unreachable!("sweep injects no delays"),
                            };
                            assert_eq!(err.kind(), want, "typed abort reason: {tag}");
                        }
                        Err(other) => panic!("untyped failure {other} under fault: {tag}"),
                    }
                    // Post-fault reuse: the same prepared query, a clean budget,
                    // the exact answer — pool and cache survived the fault.
                    assert_eq!(
                        prepared.try_par_count(threads, &QueryBudget::new()).unwrap(),
                        expected,
                        "clean rerun after fault: {tag}"
                    );
                }
            }
        }
        assert_eq!(prepared.count().unwrap(), expected, "{} after sweep", engine.label());
    }
}

/// The `join_step` site sits behind the cooperative check stride; assert it is
/// genuinely reachable from every engine's serial inner loop on the sweep
/// database (otherwise the sweep above would be vacuous for that engine).
#[test]
fn the_join_step_site_is_reachable_from_every_engine() {
    let db = test_database(11);
    let q = CatalogQuery::ThreePath.query();
    for engine in engines() {
        let prepared = db.prepare(&q, &engine).unwrap();
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm(sites::JOIN_STEP, FailAction::Trip);
        let budget = QueryBudget::new().with_failpoints(fp.clone());
        let err = prepared.try_count(&budget).expect_err(engine.label());
        assert!(
            matches!(err, EngineError::Exec(ExecError::BudgetExceeded { .. })),
            "{}: {err}",
            engine.label()
        );
        assert_eq!(fp.fired().as_deref(), Some(sites::JOIN_STEP), "{}", engine.label());
    }
}

/// After a worker panic mid-join, re-executing the same prepared query must give
/// rows byte-identical to a freshly built database — no partial state leaks out
/// of the poisoned run.
#[test]
fn post_fault_reexecution_is_byte_identical_to_a_fresh_database() {
    quiet_failpoint_panics();
    let db = test_database(17);
    let fresh = test_database(17);
    let q = CatalogQuery::ThreePath.query();
    for engine in engines() {
        // Engines emit rows in their own (deterministic) order, so the
        // byte-identical reference is a fresh database under the same engine.
        let reference = fresh.prepare(&q, &engine).unwrap().collect().unwrap();
        let prepared = db.prepare(&q, &engine).unwrap();
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm(sites::MORSEL_CLAIM, FailAction::Panic);
        let budget = QueryBudget::new().with_failpoints(fp.clone());
        let err = prepared.try_par_count(4, &budget).expect_err(engine.label());
        assert!(
            matches!(err, EngineError::Exec(ExecError::WorkerPanicked { .. })),
            "{}: {err}",
            engine.label()
        );
        // Same prepared query, same cache, same pool: the rows must be the
        // reference rows, byte for byte.
        assert_eq!(prepared.collect().unwrap(), reference, "{}", engine.label());
    }
}

/// A zero deadline (and a pre-cancelled token) abort deterministically before any
/// work, even on queries small enough to finish inside one check stride.
#[test]
fn pre_violated_budgets_abort_deterministically() {
    let db = test_database(19);
    let q = CatalogQuery::ThreeClique.query();
    for engine in [Engine::Lftj, Engine::minesweeper()] {
        let prepared = db.prepare(&q, &engine).unwrap();
        for threads in [1usize, 4] {
            let deadline = QueryBudget::new().with_timeout(Duration::ZERO);
            assert!(
                matches!(
                    prepared.try_par_count(threads, &deadline),
                    Err(EngineError::Exec(ExecError::DeadlineExceeded))
                ),
                "{} threads {threads}",
                engine.label()
            );
            let token = CancelToken::default();
            token.cancel();
            let cancelled = QueryBudget::new().with_cancel_token(token);
            assert!(
                matches!(
                    prepared.try_par_count(threads, &cancelled),
                    Err(EngineError::Exec(ExecError::Cancelled))
                ),
                "{} threads {threads}",
                engine.label()
            );
        }
    }
}

/// Serial and parallel executions surface the *same* typed abort reason for the
/// same budget violation — callers can branch on `ExecError::kind` without caring
/// how many threads ran.
#[test]
fn abort_reasons_agree_between_serial_and_parallel() {
    let db = test_database(23);
    let q = CatalogQuery::ThreePath.query();
    let budgets: Vec<(&str, QueryBudget)> = vec![
        ("deadline", QueryBudget::new().with_timeout(Duration::ZERO)),
        ("cancelled", {
            let token = CancelToken::default();
            token.cancel();
            QueryBudget::new().with_cancel_token(token)
        }),
        ("budget", QueryBudget::new().with_max_rows(5)),
    ];
    let kind = |r: Result<u64, EngineError>| match r {
        Err(EngineError::Exec(err)) => err.kind(),
        other => panic!("expected a typed exec abort, got {other:?}"),
    };
    for engine in engines() {
        let prepared = db.prepare(&q, &engine).unwrap();
        for (want, budget) in &budgets {
            let serial = kind(prepared.try_count(budget));
            let parallel = kind(prepared.try_par_count(4, budget));
            assert_eq!(serial, *want, "serial {} {want}", engine.label());
            assert_eq!(serial, parallel, "parity {} {want}", engine.label());
        }
    }
}

/// An armed `trie_build` failpoint makes *preparation* panic; the panic is caught
/// and typed, and after disarming the same database prepares and answers exactly.
#[test]
fn prepare_survives_a_trie_build_panic_and_the_cache_stays_usable() {
    quiet_failpoint_panics();
    let db = test_database(13);
    let q = CatalogQuery::ThreeClique.query();
    let expected = test_database(13).prepare(&q, &Engine::Lftj).unwrap().count().unwrap();
    let fp = Arc::new(FailpointRegistry::new());
    fp.arm(sites::TRIE_BUILD, FailAction::Panic);
    db.cache().set_failpoints(Some(fp.clone()));
    let err = db.prepare(&q, &Engine::Lftj).expect_err("armed trie build");
    assert!(
        matches!(err, EngineError::Exec(ExecError::WorkerPanicked { .. })),
        "prepare-time panic must be typed: {err}"
    );
    assert_eq!(fp.fired().as_deref(), Some(sites::TRIE_BUILD));
    // Disarm: the cache recovered (it only ever holds fully-built indexes), so the
    // same database now prepares cleanly and counts exactly.
    db.cache().set_failpoints(None);
    let prepared = db.prepare(&q, &Engine::Lftj).expect("disarmed prepare");
    assert_eq!(prepared.count().unwrap(), expected);
}

/// Cancellation latency is bounded even when every morsel claim is artificially
/// slowed: workers poll the monitor at each claim boundary, so a cancel lands
/// after at most one in-flight delay instead of after the whole (slowed) run.
#[test]
fn cancellation_is_observed_promptly_under_slow_morsel_claims() {
    let db = test_database(29);
    let q = CatalogQuery::ThreePath.query();
    let prepared = db.prepare(&q, &Engine::Lftj).unwrap();
    let fp = Arc::new(FailpointRegistry::new());
    fp.arm(sites::MORSEL_CLAIM, FailAction::Delay(Duration::from_millis(100)));
    let token = CancelToken::default();
    let budget = QueryBudget::new().with_failpoints(fp.clone()).with_cancel_token(token.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(25));
        token.cancel();
    });
    let start = Instant::now();
    let result = prepared.try_par_count(2, &budget);
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    assert!(
        matches!(result, Err(EngineError::Exec(ExecError::Cancelled))),
        "cancel must win over the slowed run: {result:?}"
    );
    // Generous bound: without the boundary checks the delay applies to every
    // remaining claim; with them the run ends after roughly one in-flight delay.
    assert!(elapsed < Duration::from_secs(2), "cancellation latency {elapsed:?}");
    assert_eq!(fp.fired().as_deref(), Some(sites::MORSEL_CLAIM));
}

/// `count_outcome` never errors: completed runs and typed aborts (with failpoint
/// attribution) both come back as `RunStats.outcome` — the bench harness records
/// its timeout cells through exactly this path.
#[test]
fn count_outcome_reports_completion_and_attributed_aborts() {
    let db = test_database(31);
    let q = CatalogQuery::ThreePath.query();
    let prepared = db.prepare(&q, &Engine::Lftj).unwrap();
    let clean = prepared.count_outcome(1, &QueryBudget::new());
    assert!(clean.outcome.is_completed());
    assert_eq!(clean.outcome.label(), "completed");

    let fp = Arc::new(FailpointRegistry::new());
    fp.arm(sites::MORSEL_CLAIM, FailAction::Trip);
    let tripped = prepared.count_outcome(4, &QueryBudget::new().with_failpoints(fp));
    match &tripped.outcome {
        RunOutcome::Aborted { reason, failpoint } => {
            assert_eq!(reason.kind(), "budget");
            assert_eq!(failpoint.as_deref(), Some(sites::MORSEL_CLAIM));
        }
        RunOutcome::Completed => panic!("armed trip must abort the run"),
    }
    assert_eq!(tripped.outcome.label(), "budget");

    let overrun = prepared.count_outcome(1, &QueryBudget::new().with_max_rows(3));
    assert_eq!(tripped.outcome.label(), overrun.outcome.label(), "both are budget aborts");
}

// ---------------------------------------------------------------------------
// Crash-recovery sweeps for the disk-store sites (`wal_append`, `page_flush`,
// `recovery_replay`): at every armed offset, a simulated crash (panic) or a
// typed fault (trip) must leave the store recoverable to exactly the
// pre-mutation or post-mutation state — never a torn, partially-applied one.
// ---------------------------------------------------------------------------

/// A scratch store directory, cleaned before use.
fn store_scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gj-fault-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The durable mutations every sweep applies, in order. Replacing `edge`
/// exercises the biggest extent; `v9` is a brand-new catalog entry.
fn sweep_commits() -> Vec<(&'static str, Relation)> {
    vec![
        ("v1", Relation::from_values(vec![1, 2, 3, 5, 8])),
        ("edge", Relation::from_flat(2, vec![0, 1, 1, 0, 1, 2, 2, 1, 0, 2, 2, 0])),
        ("v9", Relation::from_values(vec![42])),
    ]
}

/// Structural + behavioural equality: identical relation catalogs, identical
/// relation contents, and byte-identical parallel query answers.
fn assert_same_database(ctx: &str, actual: &Database, expected: &Database) {
    let names: Vec<String> = expected.instance().relation_names().map(str::to_string).collect();
    let actual_names: Vec<String> =
        actual.instance().relation_names().map(str::to_string).collect();
    assert_eq!(actual_names, names, "{ctx}: relation catalogs differ");
    for name in &names {
        assert_eq!(
            actual.instance().relation(name),
            expected.instance().relation(name),
            "{ctx}: relation '{name}' differs"
        );
    }
    let q = CatalogQuery::ThreeClique.query();
    let lhs = actual.prepare(&q, &Engine::Lftj).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let rhs = expected.prepare(&q, &Engine::Lftj).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(
        lhs.par_collect(4).unwrap_or_else(|e| panic!("{ctx}: {e}")),
        rhs.par_collect(4).unwrap_or_else(|e| panic!("{ctx}: {e}")),
        "{ctx}: parallel query answers differ"
    );
}

/// `wal_append` sweep: a crash or typed fault at every append offset must
/// recover to *exactly* the committed prefix — the torn half-record a panic
/// leaves behind is discarded, a tripped append writes nothing.
#[test]
fn wal_append_crashes_recover_to_the_committed_prefix() {
    quiet_failpoint_panics();
    let commits = sweep_commits();
    for action in [FailAction::Panic, FailAction::Trip] {
        for offset in 0..=commits.len() as u64 {
            let ctx = format!("wal_append {action:?} offset {offset}");
            let dir = store_scratch(&format!("wal-{action:?}-{offset}"));
            let base = test_database(77);
            base.persist(&dir).unwrap_or_else(|e| panic!("{ctx}: persist: {e}"));

            let fp = Arc::new(FailpointRegistry::new());
            fp.arm_after(sites::WAL_APPEND, action, offset, 1);
            let mut db = Database::open_with_failpoints(&dir, Some(Arc::clone(&fp)))
                .unwrap_or_else(|e| panic!("{ctx}: open: {e}"));
            let mut reference = base.clone();
            let mut applied = 0usize;
            for (name, rel) in &commits {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    db.commit_relation(*name, rel.clone()).map(|_| ())
                }));
                match outcome {
                    Ok(Ok(())) => {
                        reference.add_relation(*name, rel.clone());
                        applied += 1;
                    }
                    Ok(Err(err)) => {
                        assert_eq!(err, StoreError::Fault(sites::WAL_APPEND), "{ctx}");
                        break; // typed rejection: nothing was written
                    }
                    Err(_) => break, // simulated crash mid-append (torn record)
                }
            }
            assert_eq!(
                applied,
                (offset as usize).min(commits.len()),
                "{ctx}: exactly the pre-fault commits succeed"
            );
            drop(db);

            let reopened = Database::open(&dir).unwrap_or_else(|e| panic!("{ctx}: reopen: {e}"));
            assert_same_database(&ctx, &reopened, &reference);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// `page_flush` sweep: a crash or typed fault at any page write *during a
/// checkpoint* must be invisible after reopen — the checkpoint builds a
/// temporary image and the WAL is only truncated after the atomic rename, so
/// the committed state survives regardless of which flush died.
#[test]
fn page_flush_crashes_during_checkpoint_lose_no_committed_state() {
    quiet_failpoint_panics();
    let commit = Relation::from_values(vec![9, 8, 7]);
    for action in [FailAction::Panic, FailAction::Trip] {
        for offset in [0u64, 1, 2, 5, 9] {
            let ctx = format!("page_flush {action:?} offset {offset}");
            let dir = store_scratch(&format!("flush-{action:?}-{offset}"));
            let base = test_database(78);
            base.persist(&dir).unwrap_or_else(|e| panic!("{ctx}: persist: {e}"));

            let fp = Arc::new(FailpointRegistry::new());
            let mut db = Database::open_with_failpoints(&dir, Some(Arc::clone(&fp)))
                .unwrap_or_else(|e| panic!("{ctx}: open: {e}"));
            db.commit_relation("v1", commit.clone()).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let mut reference = base.clone();
            reference.add_relation("v1", commit.clone());

            fp.arm_after(sites::PAGE_FLUSH, action, offset, 1);
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.checkpoint()));
            match outcome {
                // Deep offsets can land beyond the image's page count: then the
                // checkpoint simply completes, which is equally fine — the
                // invariant below holds either way.
                Ok(Ok(())) => {}
                Ok(Err(err)) => assert_eq!(err, StoreError::Fault(sites::PAGE_FLUSH), "{ctx}"),
                Err(_) => {} // simulated crash mid-image-write
            }
            drop(db);

            let reopened = Database::open(&dir).unwrap_or_else(|e| panic!("{ctx}: reopen: {e}"));
            assert_same_database(&ctx, &reopened, &reference);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// `recovery_replay` sweep: a crash or typed fault while *replaying* the WAL
/// is restartable — replay is read-only, so a clean retry always sees the full
/// committed state, no matter which record the previous attempt died on.
#[test]
fn recovery_replay_crashes_are_restartable_without_loss() {
    quiet_failpoint_panics();
    let commits = sweep_commits();
    let dir = store_scratch("replay");
    let base = test_database(79);
    base.persist(&dir).unwrap();
    let mut reference = base.clone();
    {
        let mut db = Database::open(&dir).unwrap();
        for (name, rel) in &commits {
            db.commit_relation(*name, rel.clone()).unwrap();
            reference.add_relation(*name, rel.clone());
        }
    }

    for action in [FailAction::Panic, FailAction::Trip] {
        for offset in 0..commits.len() as u64 {
            let ctx = format!("recovery_replay {action:?} offset {offset}");
            let fp = Arc::new(FailpointRegistry::new());
            fp.arm_after(sites::RECOVERY_REPLAY, action, offset, 1);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Database::open_with_failpoints(&dir, Some(Arc::clone(&fp)))
            }));
            match outcome {
                Ok(Err(err)) => {
                    assert_eq!(err, StoreError::Fault(sites::RECOVERY_REPLAY), "{ctx}")
                }
                Err(_) => {} // simulated crash mid-replay
                Ok(Ok(_)) => panic!("{ctx}: the armed replay must not succeed"),
            }
            // A clean retry replays everything: recovery lost nothing.
            let reopened =
                Database::open(&dir).unwrap_or_else(|e| panic!("{ctx}: clean reopen: {e}"));
            assert_same_database(&ctx, &reopened, &reference);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
