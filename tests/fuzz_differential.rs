//! Seeded cross-engine differential fuzzing: a deterministic random-query
//! generator draws ~50 conjunctive queries over random graphs/relations and checks
//! that LFTJ, Minesweeper, both pairwise baselines (hash and sort-merge) and — on
//! the queries it can split — the hybrid all agree, serially and through the
//! morsel-driven parallel runtime at `threads ∈ {1, 4}`:
//!
//! * identical `count`;
//! * identical **sorted** `collect` row sets across engines, and byte-identical
//!   `par_collect` vs the same engine's serial `collect` (the ordered shard merge
//!   guarantee, now including the parallel pairwise path);
//! * `first_k` / `par_first_k` answers that are exact serial prefixes;
//! * `exists` / `par_exists` consistency.
//!
//! Every assertion message carries the case number and the RNG seed, so a failure
//! is reproducible by pasting the seed into [`run_case`]. The black-box approach
//! follows the differential-testing playbook: trust an optimised engine only by
//! checking it against independent references on inputs nobody hand-picked.

use gj_baselines::BaselineError;
use graphjoin::{
    Database, Engine, EngineError, ExecLimits, Graph, MsConfig, Query, QueryBuilder, Relation,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Number of random cases the corpus draws.
const CASES: u64 = 50;

/// Splitmix-style per-case seed derivation from one base seed.
fn case_seed(case: u64) -> u64 {
    (0x9e3779b97f4a7c15u64.wrapping_mul(case + 1)) ^ 0x5eed_f022_dead_beef
}

/// A random database: a seeded undirected graph (`edge`), two unary samples
/// (`u1`, `u2`) and one random directed binary relation (`r1`).
fn random_database(rng: &mut StdRng) -> Database {
    let n = rng.gen_range(8u32..26);
    // Edge probability around 2/n .. 6/n keeps cartesian worst cases bounded.
    let per_mille = rng.gen_range(80u64..260);
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|_| rng.gen_bool(per_mille as f64 / 1000.0))
        .collect();
    let mut db = Database::new();
    db.add_graph(Graph::new_undirected(n as usize, edges));
    for name in ["u1", "u2"] {
        let values: Vec<i64> = (0..n as i64).filter(|_| rng.gen_bool(0.4)).collect();
        db.add_relation(name, Relation::from_values(values));
    }
    let pairs: Vec<(i64, i64)> = (0..rng.gen_range(5usize..50))
        .map(|_| (rng.gen_range(0i64..n as i64), rng.gen_range(0i64..n as i64)))
        .collect();
    db.add_relation("r1", Relation::from_pairs(pairs));
    db
}

/// A random conjunctive query over the relations of [`random_database`]: 2–4 atoms
/// over a pool of up to four variables, with 0–2 order filters restricted to
/// variables that actually occur in an atom (every engine requires each query
/// variable to be contained in some atom).
fn random_query(rng: &mut StdRng, case: u64) -> Query {
    const VARS: [&str; 4] = ["a", "b", "c", "d"];
    let pool = rng.gen_range(2usize..5);
    let atoms = rng.gen_range(2usize..5);
    let mut builder = QueryBuilder::new(format!("fuzz-{case}"));
    let mut used: Vec<usize> = Vec::new();
    let use_var = |rng: &mut StdRng, used: &mut Vec<usize>| {
        let v = rng.gen_range(0usize..pool);
        if !used.contains(&v) {
            used.push(v);
        }
        v
    };
    for _ in 0..atoms {
        match rng.gen_range(0u32..10) {
            // Mostly graph self-joins (the paper's workload shape) ...
            0..=5 => {
                let x = use_var(rng, &mut used);
                let mut y = use_var(rng, &mut used);
                while y == x {
                    y = use_var(rng, &mut used);
                }
                builder = builder.atom("edge", &[VARS[x], VARS[y]]);
            }
            // ... some joins against the random binary relation ...
            6..=7 => {
                let x = use_var(rng, &mut used);
                let mut y = use_var(rng, &mut used);
                while y == x {
                    y = use_var(rng, &mut used);
                }
                builder = builder.atom("r1", &[VARS[x], VARS[y]]);
            }
            // ... and unary sample restrictions.
            _ => {
                let u = if rng.gen_bool(0.5) { "u1" } else { "u2" };
                let x = use_var(rng, &mut used);
                builder = builder.atom(u, &[VARS[x]]);
            }
        }
    }
    for _ in 0..rng.gen_range(0u32..3) {
        if used.len() < 2 {
            break;
        }
        let x = used[rng.gen_range(0usize..used.len())];
        let y = used[rng.gen_range(0usize..used.len())];
        if x != y {
            builder = builder.lt(VARS[x], VARS[y]);
        }
    }
    builder.build()
}

/// The general-purpose engines every case must agree on.
fn fuzz_engines() -> [Engine; 4] {
    [
        Engine::Lftj,
        Engine::Minesweeper(MsConfig::default()),
        Engine::HashJoin(ExecLimits::default()),
        Engine::SortMergeJoin(ExecLimits::default()),
    ]
}

/// Runs one differential case; every assertion names the case and seed.
fn run_case(case: u64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_database(&mut rng);
    let query = random_query(&mut rng, case);
    let ctx = format!("case {case} seed {seed:#018x} [{query}]");
    differential_case(&db, &query, &ctx);
}

/// The shared differential body: every engine must agree with the LFTJ
/// reference on `query` over `db` — count, sorted collect, and the parallel
/// entry points at 1 and 4 threads — and every valid hybrid split must agree
/// on the count. `ctx` (carrying the reproducing seed) prefixes every
/// assertion.
fn differential_case(db: &Database, query: &Query, ctx: &str) {
    // Reference: LFTJ's sorted row set.
    let reference = {
        let prepared = db
            .prepare(query, &Engine::Lftj)
            .unwrap_or_else(|e| panic!("{ctx}: reference prepare failed: {e}"));
        let mut rows =
            prepared.collect().unwrap_or_else(|e| panic!("{ctx}: reference collect failed: {e}"));
        rows.sort_unstable();
        rows
    };

    for engine in fuzz_engines() {
        let label = format!("{ctx} {}", engine.label());
        let prepared =
            db.prepare(query, &engine).unwrap_or_else(|e| panic!("{label}: prepare failed: {e}"));
        let count = prepared.count().unwrap_or_else(|e| panic!("{label}: count failed: {e}"));
        assert_eq!(count as usize, reference.len(), "{label}: count disagrees");

        let serial = prepared.collect().unwrap_or_else(|e| panic!("{label}: collect failed: {e}"));
        let mut sorted = serial.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, reference, "{label}: sorted collect disagrees");

        for threads in [1usize, 4] {
            let tlabel = format!("{label} threads {threads}");
            assert_eq!(
                prepared.par_count(threads).unwrap_or_else(|e| panic!("{tlabel}: {e}")),
                count,
                "{tlabel}: par_count disagrees"
            );
            assert_eq!(
                prepared.par_collect(threads).unwrap_or_else(|e| panic!("{tlabel}: {e}")),
                serial,
                "{tlabel}: par_collect is not byte-identical to serial collect"
            );
            assert_eq!(
                prepared.par_exists(threads).unwrap_or_else(|e| panic!("{tlabel}: {e}")),
                !serial.is_empty(),
                "{tlabel}: par_exists disagrees"
            );
            for k in [0usize, 1, serial.len() / 3, serial.len() + 2] {
                let prefix = prepared
                    .par_first_k(k, threads)
                    .unwrap_or_else(|e| panic!("{tlabel}: first_k({k}): {e}"));
                assert_eq!(
                    prefix,
                    serial[..k.min(serial.len())].to_vec(),
                    "{tlabel}: first_k({k}) is not the serial prefix"
                );
            }
        }
    }

    // The hybrid only counts, and only on queries it can split; every valid split
    // must agree with the reference count.
    for split in 1..query.num_vars() {
        let engine = Engine::Hybrid { split, config: MsConfig::default() };
        if let Ok(prepared) = db.prepare(query, &engine) {
            let count =
                prepared.count().unwrap_or_else(|e| panic!("{ctx}: hybrid split {split}: {e}"));
            assert_eq!(
                count as usize,
                reference.len(),
                "{ctx}: hybrid split {split} count disagrees"
            );
        }
    }
}

#[test]
fn fifty_random_queries_agree_across_engines_and_thread_counts() {
    for case in 0..CASES {
        run_case(case, case_seed(case));
    }
}

/// Number of cases the repeated-execution corpus draws (a slice of the main
/// corpus's seed stream; smaller because every case runs each engine 3 × 2 ways).
const RERUN_CASES: u64 = 12;

/// Repeated executions of one `PreparedQuery` reuse worker state — Minesweeper
/// carries CDS constraints across morsels, the pairwise engines pool their
/// buffers and merge-join left sort permutations across whole executions — so the
/// second and third runs exercise warm caches the first run populated. Every warm
/// run must be byte-identical to the cold one, at one and at four threads, for
/// count, collect and first_k alike.
#[test]
fn repeated_executions_serve_warm_caches_without_drift() {
    for case in 0..RERUN_CASES {
        let seed = case_seed(1000 + case);
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_database(&mut rng);
        let query = random_query(&mut rng, 1000 + case);
        let ctx = format!("rerun case {case} seed {seed:#018x} [{query}]");

        for engine in fuzz_engines() {
            let label = format!("{ctx} {}", engine.label());
            let prepared = db
                .prepare(&query, &engine)
                .unwrap_or_else(|e| panic!("{label}: prepare failed: {e}"));
            let cold =
                prepared.collect().unwrap_or_else(|e| panic!("{label}: cold collect failed: {e}"));
            let count = cold.len() as u64;
            let k = cold.len() / 2 + 1;
            for threads in [1usize, 4] {
                for run in 0..3 {
                    let rlabel = format!("{label} threads {threads} run {run}");
                    assert_eq!(
                        prepared.par_count(threads).unwrap_or_else(|e| panic!("{rlabel}: {e}")),
                        count,
                        "{rlabel}: warm count drifted"
                    );
                    assert_eq!(
                        prepared.par_collect(threads).unwrap_or_else(|e| panic!("{rlabel}: {e}")),
                        cold,
                        "{rlabel}: warm collect is not byte-identical to the cold run"
                    );
                    assert_eq!(
                        prepared
                            .par_first_k(k, threads)
                            .unwrap_or_else(|e| panic!("{rlabel}: {e}")),
                        cold[..k.min(cold.len())].to_vec(),
                        "{rlabel}: warm first_k is not the cold prefix"
                    );
                }
            }
        }
    }
}

/// Regression: `ExecLimits::max_intermediate_rows` must abort with
/// `IntermediateBudgetExceeded` both (a) for streamed final-join rows in a serial
/// run and (b) on the parallel pairwise path, where per-worker row counts
/// aggregate into one global budget — each morsel alone stays far below the
/// budget, only the aggregate crosses it.
#[test]
fn pairwise_budget_aborts_streamed_and_parallel_runs() {
    let seed = case_seed(1234);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 40u32;
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|_| rng.gen_bool(0.3))
        .collect();
    let mut db = Database::new();
    db.add_graph(Graph::new_undirected(n as usize, edges));
    // An open wedge: the only materialised intermediate is the edge list itself,
    // while the (much larger) wedge output streams into the sink.
    let query =
        QueryBuilder::new("wedge").atom("edge", &["a", "b"]).atom("edge", &["b", "c"]).build();
    let ctx = format!("seed {seed:#018x}");

    for engine_of in [Engine::HashJoin, Engine::SortMergeJoin] {
        let full = db.prepare(&query, &engine_of(ExecLimits::default())).unwrap();
        let count = full.count().unwrap_or_else(|e| panic!("{ctx}: {e}"));
        let edge_rows = db.instance().relation("edge").unwrap().len() as u64;
        assert!(count > edge_rows, "{ctx}: the test needs a streamed output larger than the base");

        let budget_err = |r: Result<u64, EngineError>, what: &str| {
            let err = r.expect_err(what);
            assert!(
                matches!(
                    err,
                    EngineError::Baseline(BaselineError::IntermediateBudgetExceeded { .. })
                ),
                "{ctx}: {what}: unexpected error {err:?}"
            );
        };

        let tight = db
            .prepare(&query, &engine_of(ExecLimits { max_intermediate_rows: count as usize - 1 }))
            .unwrap();
        // (a) Serial: the streamed final join overruns the budget.
        budget_err(tight.count(), "serial streamed-row budget");
        // (b) Parallel: no single worker exceeds the budget, the aggregate does.
        budget_err(tight.par_count(4), "parallel aggregated budget");
        // (c) Warm reruns (pooled workers, cached permutations) abort identically:
        // the budget ledger is per-execution, the caches are not a loophole.
        budget_err(tight.count(), "warm serial budget rerun");
        budget_err(tight.par_count(4), "warm parallel budget rerun");

        // The exact budget succeeds both ways, with identical counts — repeatedly.
        let exact = db
            .prepare(&query, &engine_of(ExecLimits { max_intermediate_rows: count as usize }))
            .unwrap();
        for _ in 0..2 {
            assert_eq!(exact.count().unwrap(), count, "{ctx}");
            assert_eq!(exact.par_count(4).unwrap(), count, "{ctx}");
        }
    }
}

/// Number of cases the cancellation corpus draws.
const CANCEL_CASES: u64 = 10;

/// Cancellation fuzz: a bounded delay failpoint stretches the first morsel claims
/// while a canceller thread fires at a case-randomized instant. Whichever way the
/// race goes, the run must end in a typed outcome — the exact count or
/// [`ExecError::Cancelled`], never a wrong answer or an untyped failure — and a
/// warm re-execution of the *same* prepared query under a fresh budget must be
/// byte-identical to the pre-cancellation rows.
#[test]
fn randomized_cancellation_never_corrupts_a_prepared_query() {
    use graphjoin::{
        fault::sites, CancelToken, ExecError, FailAction, FailpointRegistry, QueryBudget,
    };
    use std::sync::Arc;
    use std::time::Duration;

    for case in 0..CANCEL_CASES {
        let seed = case_seed(2000 + case);
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_database(&mut rng);
        let query = random_query(&mut rng, 2000 + case);
        let ctx = format!("cancel case {case} seed {seed:#018x} [{query}]");

        for engine in fuzz_engines() {
            let label = format!("{ctx} {}", engine.label());
            let prepared = db
                .prepare(&query, &engine)
                .unwrap_or_else(|e| panic!("{label}: prepare failed: {e}"));
            let rows =
                prepared.collect().unwrap_or_else(|e| panic!("{label}: collect failed: {e}"));
            // Cancel somewhere inside (or just after) the stretched run window.
            let cancel_after = Duration::from_micros(rng.gen_range(0u64..6000));

            for threads in [1usize, 4] {
                let tlabel = format!("{label} threads {threads}");
                let fp = Arc::new(FailpointRegistry::new());
                fp.arm_after(
                    sites::MORSEL_CLAIM,
                    FailAction::Delay(Duration::from_millis(2)),
                    0,
                    4,
                );
                let token = CancelToken::default();
                let budget =
                    QueryBudget::new().with_failpoints(fp).with_cancel_token(token.clone());
                let canceller = std::thread::spawn(move || {
                    std::thread::sleep(cancel_after);
                    token.cancel();
                });
                let result = prepared.try_par_count(threads, &budget);
                canceller.join().unwrap();
                match result {
                    Ok(count) => assert_eq!(
                        count,
                        rows.len() as u64,
                        "{tlabel}: a completed race must be exact"
                    ),
                    Err(EngineError::Exec(ExecError::Cancelled)) => {}
                    Err(other) => panic!("{tlabel}: untyped cancellation outcome: {other}"),
                }
                // Warm rerun under a fresh, unlimited budget: byte-identical rows.
                assert_eq!(
                    prepared.par_collect(threads).unwrap_or_else(|e| panic!("{tlabel}: {e}")),
                    rows,
                    "{tlabel}: post-cancellation rerun drifted"
                );
            }
        }
    }
}

/// Number of cases the persistence corpus draws (each case persists a store,
/// reopens it and runs every engine twice, so it is a slice of the main corpus).
const PERSIST_CASES: u64 = 16;

/// Persistence differential: every random database, persisted to a paged disk
/// store and reopened through lazy catalog slots, must be query-indistinguishable
/// from the in-RAM original — identical counts and **byte-identical**
/// `par_collect` rows for every engine, with hydration actually deferred until
/// the first query touches a relation.
#[test]
fn persisted_and_reopened_databases_are_query_identical() {
    let scratch = std::env::temp_dir().join(format!("gj-fuzz-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    for case in 0..PERSIST_CASES {
        let seed = case_seed(3000 + case);
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_database(&mut rng);
        let query = random_query(&mut rng, 3000 + case);
        let ctx = format!("persist case {case} seed {seed:#018x} [{query}]");

        let dir = scratch.join(format!("case-{case}"));
        db.persist(&dir).unwrap_or_else(|e| panic!("{ctx}: persist failed: {e}"));
        let reopened = Database::open(&dir).unwrap_or_else(|e| panic!("{ctx}: open failed: {e}"));
        assert!(
            !reopened.instance().is_resident("edge"),
            "{ctx}: open must not hydrate relation extents"
        );

        for engine in fuzz_engines() {
            let label = format!("{ctx} {}", engine.label());
            let mem = db
                .prepare(&query, &engine)
                .unwrap_or_else(|e| panic!("{label}: prepare failed: {e}"));
            let disk = reopened
                .prepare(&query, &engine)
                .unwrap_or_else(|e| panic!("{label}: reopened prepare failed: {e}"));
            assert_eq!(
                disk.count().unwrap_or_else(|e| panic!("{label}: {e}")),
                mem.count().unwrap_or_else(|e| panic!("{label}: {e}")),
                "{label}: reopened count disagrees"
            );
            assert_eq!(
                disk.par_collect(4).unwrap_or_else(|e| panic!("{label}: {e}")),
                mem.par_collect(4).unwrap_or_else(|e| panic!("{label}: {e}")),
                "{label}: reopened par_collect is not byte-identical"
            );
        }
        for name in query.relation_names() {
            assert!(
                reopened.instance().is_resident(name),
                "{ctx}: queries hydrate the relations they touch ({name})"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Number of (graph, edit-script) cases the incremental-edit corpus draws.
const EDIT_CASES: u64 = 12;
/// Edit batches per case, each followed by a full differential check.
const EDIT_STEPS: usize = 5;

/// A from-scratch twin of `db`: same relations, fresh indexes, shared nothing.
fn rebuilt_twin(db: &Database) -> Database {
    let names: Vec<String> = db.instance().relation_names().map(str::to_string).collect();
    let mut fresh = Database::new();
    for name in names {
        let relation = db.instance().relation(&name).expect("resident relation").clone();
        fresh.add_relation(name, relation);
    }
    fresh
}

/// One random edit batch against relation `name`: up to 3 random inserts (drawn
/// from a domain wider than the base data, so keys land outside the base trie's
/// first-level range) and up to 3 deletes sampled from the current rows.
fn random_edit(rng: &mut StdRng, db: &Database, name: &str) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let current = db.instance().relation(name).expect("editable relation");
    let arity = current.arity();
    let ins: Vec<Vec<i64>> = (0..rng.gen_range(0usize..4))
        .map(|_| (0..arity).map(|_| rng.gen_range(0i64..60)).collect())
        .collect();
    let mut del: Vec<Vec<i64>> = Vec::new();
    if !current.is_empty() {
        for _ in 0..rng.gen_range(0usize..4) {
            del.push(current.row(rng.gen_range(0usize..current.len())).to_vec());
        }
    }
    // The occasional no-op delete of an absent row keeps normalization honest.
    if rng.gen_bool(0.3) {
        del.push((0..arity).map(|_| rng.gen_range(100i64..160)).collect());
    }
    (ins, del)
}

/// Incremental-edit differential fuzz: random insert/delete batches interleaved
/// with queries. After every batch, each engine's serial and parallel answers
/// over the *edited* database (whose cached indexes absorbed the edits through
/// their delta layers — `indexes_built() == 0`) must match a from-scratch
/// rebuild over the same logical data. Failures print the case seed.
#[test]
fn random_edit_scripts_agree_with_from_scratch_rebuilds() {
    for case in 0..EDIT_CASES {
        let seed = case_seed(4000 + case);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = random_database(&mut rng);
        let query = random_query(&mut rng, 4000 + case);
        let ctx = format!("edit case {case} seed {seed:#018x} [{query}]");

        // Warm every engine before the first edit, so later preparations must
        // be served by delta-updated indexes rather than rebuilds.
        for engine in fuzz_engines() {
            db.prepare(&query, &engine)
                .unwrap_or_else(|e| panic!("{ctx}: warm prepare failed: {e}"));
        }

        for step in 0..EDIT_STEPS {
            let name = ["edge", "r1", "u1"][rng.gen_range(0usize..3)];
            let (ins, del) = random_edit(&mut rng, &db, name);
            db.edit_rows(name, &ins, &del)
                .unwrap_or_else(|e| panic!("{ctx} step {step}: edit on {name} failed: {e}"));

            let fresh = rebuilt_twin(&db);
            for engine in fuzz_engines() {
                let label = format!("{ctx} step {step} {}", engine.label());
                let prepared = db
                    .prepare(&query, &engine)
                    .unwrap_or_else(|e| panic!("{label}: prepare failed: {e}"));
                if matches!(engine, Engine::Lftj | Engine::Minesweeper(_)) {
                    assert_eq!(
                        prepared.indexes_built(),
                        0,
                        "{label}: edits must update cached indexes, not rebuild them"
                    );
                }
                let twin = fresh
                    .prepare(&query, &engine)
                    .unwrap_or_else(|e| panic!("{label}: twin prepare failed: {e}"));
                let expected = twin.count().unwrap_or_else(|e| panic!("{label}: {e}"));
                let mut expected_rows = twin.collect().unwrap_or_else(|e| panic!("{label}: {e}"));
                expected_rows.sort_unstable();
                let mut got = prepared.collect().unwrap_or_else(|e| panic!("{label}: {e}"));
                got.sort_unstable();
                assert_eq!(got, expected_rows, "{label}: sorted collect disagrees with rebuild");
                for threads in [1usize, 4] {
                    assert_eq!(
                        prepared.par_count(threads).unwrap_or_else(|e| panic!("{label}: {e}")),
                        expected,
                        "{label} threads {threads}: count disagrees with a from-scratch rebuild"
                    );
                }
            }
        }
    }
}

/// Number of cases the LDBC typed-catalog corpus draws.
const LDBC_CASES: u64 = 20;

/// A random LDBC social network (small, randomized shape) plus its catalog:
/// the typed multi-relation schema the single-`edge` corpus never covers.
fn random_ldbc_database(rng: &mut StdRng) -> (Database, gj_datagen::Catalog) {
    let config = gj_datagen::LdbcConfig {
        persons: rng.gen_range(30usize..80),
        avg_friends: rng.gen_range(3usize..7),
        posts_per_person: rng.gen_range(2usize..4),
        tags: rng.gen_range(8usize..20),
        likes_per_person: rng.gen_range(5usize..12),
        tags_per_post: rng.gen_range(1usize..3),
        days: rng.gen_range(16usize..33),
        tag_selectivity: rng.gen_range(2u32..5),
        person_selectivity: rng.gen_range(2u32..5),
        seed: rng.next_u64(),
    };
    let net = gj_datagen::SocialNetwork::generate(&config).expect("valid random LDBC config");
    let mut db = Database::new();
    for (name, rel) in net.relations() {
        db.add_relation(*name, rel.clone());
    }
    (db, net.catalog().clone())
}

/// A random *typed* conjunctive query over the LDBC catalog: 2–4 atoms drawn
/// from the schema, variables shared only between columns of the same
/// [`EntityKind`](gj_datagen::EntityKind) (so joins are type-correct under the
/// disjoint id layout), every atom after the first forced to share at least
/// one variable with the query so far (no accidental cartesian blow-ups), and
/// 0–2 same-kind `<` filters.
fn random_ldbc_query(rng: &mut StdRng, catalog: &gj_datagen::Catalog, case: u64) -> Query {
    use gj_datagen::EntityKind;
    // Weighted template pool: the binary/ternary joins dominate, the unaries
    // act as selective restrictions.
    const TEMPLATES: [&str; 13] = [
        "knows",
        "knows",
        "knows",
        "likes",
        "likes",
        "likes",
        "hasCreator",
        "hasCreator",
        "hasTag",
        "hasTag",
        "post",
        "tagSample",
        "personSample",
    ];
    let prefix = |kind: EntityKind| match kind {
        EntityKind::Person => "p",
        EntityKind::Post => "m",
        EntityKind::Tag => "t",
        EntityKind::Day => "d",
    };
    let mut pools: Vec<(EntityKind, Vec<String>)> = Vec::new();
    let mint = |pools: &mut Vec<(EntityKind, Vec<String>)>, kind: EntityKind| -> String {
        let pool = match pools.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, pool)) => pool,
            None => {
                pools.push((kind, Vec::new()));
                &mut pools.last_mut().expect("just pushed").1
            }
        };
        let name = format!("{}{}", prefix(kind), pool.len());
        pool.push(name.clone());
        name
    };
    let mut builder = QueryBuilder::new(format!("ldbc-fuzz-{case}"));
    let atoms = rng.gen_range(2usize..5);
    for atom_idx in 0..atoms {
        let relation = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
        let columns = catalog.relation(relation).expect("catalog relation").columns.clone();
        // Pick one column to force-share with the query so far (if possible).
        let shareable: Vec<usize> = columns
            .iter()
            .enumerate()
            .filter(|(_, kind)| pools.iter().any(|(k, pool)| k == *kind && !pool.is_empty()))
            .map(|(i, _)| i)
            .collect();
        let forced = (atom_idx > 0 && !shareable.is_empty())
            .then(|| shareable[rng.gen_range(0..shareable.len())]);
        let mut vars: Vec<String> = Vec::with_capacity(columns.len());
        for (i, &kind) in columns.iter().enumerate() {
            // Candidates: existing vars of this kind not already in this atom
            // (an atom may not repeat a variable).
            let pool: Vec<String> = pools
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, p)| p.iter().filter(|v| !vars.contains(v)).cloned().collect())
                .unwrap_or_default();
            let reuse = !pool.is_empty() && (forced == Some(i) || rng.gen_bool(0.5));
            let var = if reuse {
                pool[rng.gen_range(0..pool.len())].clone()
            } else {
                mint(&mut pools, kind)
            };
            vars.push(var);
        }
        let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
        builder = builder.atom(relation, &var_refs);
    }
    // Same-kind order filters: comparing across kinds is vacuous under the
    // disjoint id layout.
    for _ in 0..rng.gen_range(0u32..3) {
        if let Some((_, pool)) = pools
            .iter()
            .filter(|(_, pool)| pool.len() >= 2)
            .nth(rng.gen_range(0usize..pools.len().max(1)))
        {
            let x = rng.gen_range(0..pool.len());
            let y = rng.gen_range(0..pool.len());
            if x != y {
                builder = builder.lt(&pool[x.min(y)], &pool[x.max(y)]);
            }
        }
    }
    builder.build()
}

/// LDBC typed-catalog differential fuzz: random multi-relation queries over
/// random social networks, every engine × {1, 4} threads against the LFTJ
/// reference. Failures print the reproducing case seed.
#[test]
fn random_ldbc_queries_agree_across_engines_and_thread_counts() {
    for case in 0..LDBC_CASES {
        let seed = case_seed(5000 + case);
        let mut rng = StdRng::seed_from_u64(seed);
        let (db, catalog) = random_ldbc_database(&mut rng);
        let query = random_ldbc_query(&mut rng, &catalog, case);
        let ctx = format!("ldbc case {case} seed {seed:#018x} [{query}]");
        differential_case(&db, &query, &ctx);
    }
}

/// The LDBC corpus stays meaningful: enough non-empty and multi-row answers,
/// and a healthy share of queries actually touching the ternary `likes`.
#[test]
fn ldbc_fuzz_corpus_is_not_vacuous() {
    let mut non_empty = 0usize;
    let mut multi_row = 0usize;
    let mut ternary = 0usize;
    for case in 0..LDBC_CASES {
        let seed = case_seed(5000 + case);
        let mut rng = StdRng::seed_from_u64(seed);
        let (db, catalog) = random_ldbc_database(&mut rng);
        let query = random_ldbc_query(&mut rng, &catalog, case);
        let rows = db.prepare(&query, &Engine::Lftj).unwrap().count().unwrap();
        non_empty += usize::from(rows > 0);
        multi_row += usize::from(rows > 8);
        ternary += usize::from(query.relation_names().contains(&"likes"));
    }
    assert!(non_empty as u64 >= LDBC_CASES / 2, "only {non_empty}/{LDBC_CASES} had rows");
    assert!(multi_row as u64 >= LDBC_CASES / 4, "only {multi_row}/{LDBC_CASES} had > 8 rows");
    assert!(ternary as u64 >= LDBC_CASES / 5, "only {ternary}/{LDBC_CASES} bound `likes`");
}

/// The corpus stays meaningful: the generator must produce a healthy share of
/// non-empty answers and some multi-row results (otherwise the differential
/// assertions above would be vacuous).
#[test]
fn fuzz_corpus_is_not_vacuous() {
    let mut non_empty = 0usize;
    let mut multi_row = 0usize;
    let mut hybrid_splittable = 0usize;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case_seed(case));
        let db = random_database(&mut rng);
        let query = random_query(&mut rng, case);
        let rows = db.prepare(&query, &Engine::Lftj).unwrap().count().unwrap();
        non_empty += usize::from(rows > 0);
        multi_row += usize::from(rows > 8);
        hybrid_splittable += usize::from((1..query.num_vars()).any(|split| {
            db.prepare(&query, &Engine::Hybrid { split, config: MsConfig::default() }).is_ok()
        }));
    }
    assert!(non_empty as u64 >= CASES / 2, "only {non_empty}/{CASES} cases had any rows");
    assert!(multi_row as u64 >= CASES / 4, "only {multi_row}/{CASES} cases had > 8 rows");
    assert!(
        hybrid_splittable as u64 >= CASES / 10,
        "only {hybrid_splittable}/{CASES} cases exercised the hybrid"
    );
}
