//! Cross-crate integration tests: every engine must produce identical answers on
//! every benchmark query, across several random graphs and selectivities.

use graphjoin::{workload_database, CatalogQuery, Engine, ExecLimits, Graph, MsConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

/// A seeded random undirected graph over `n` nodes with edge probability `p`,
/// shared behind `Arc` so many workload databases can reuse it without copies.
fn random_graph(seed: u64, n: u32, p: f64) -> Arc<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> =
        (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).filter(|_| rng.gen_bool(p)).collect();
    Arc::new(Graph::new_undirected(n as usize, edges))
}

#[test]
fn all_engines_agree_on_all_catalog_queries() {
    let graph = random_graph(1, 40, 0.12);
    for cq in CatalogQuery::all() {
        let db = workload_database(graph.clone(), cq, 4, 99);
        let q = cq.query();
        let reference = db.count(&q, &Engine::Lftj).unwrap();
        let mut engines = vec![
            Engine::minesweeper(),
            Engine::HashJoin(ExecLimits::default()),
            Engine::SortMergeJoin(ExecLimits::default()),
        ];
        if let Some(h) = Engine::hybrid_for(cq) {
            engines.push(h);
        }
        if matches!(cq, CatalogQuery::ThreeClique | CatalogQuery::FourClique) {
            engines.push(Engine::GraphEngine);
        }
        for engine in engines {
            assert_eq!(
                db.count(&q, &engine).unwrap(),
                reference,
                "{} with {}",
                q.name,
                engine.label()
            );
        }
    }
}

#[test]
fn engines_agree_across_selectivities() {
    let graph = random_graph(2, 60, 0.08);
    for selectivity in [2u32, 10, 50] {
        for cq in [CatalogQuery::ThreePath, CatalogQuery::TwoComb, CatalogQuery::TwoTree] {
            let db = workload_database(graph.clone(), cq, selectivity, 7);
            let q = cq.query();
            assert_eq!(
                db.count(&q, &Engine::Lftj).unwrap(),
                db.count(&q, &Engine::minesweeper()).unwrap(),
                "{} selectivity {selectivity}",
                q.name
            );
        }
    }
}

#[test]
fn lftj_and_minesweeper_enumerate_identical_bindings() {
    let graph = random_graph(3, 30, 0.15);
    for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
        let db = workload_database(graph.clone(), cq, 3, 5);
        let q = cq.query();
        assert_eq!(
            db.enumerate(&q, &Engine::Lftj).unwrap(),
            db.enumerate(&q, &Engine::minesweeper()).unwrap(),
            "{}",
            q.name
        );
    }
}

#[test]
fn parallel_minesweeper_agrees_with_sequential() {
    let graph = random_graph(4, 70, 0.1);
    for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
        let db = workload_database(graph.clone(), cq, 5, 13);
        let q = cq.query();
        let sequential = db.count(&q, &Engine::minesweeper()).unwrap();
        let f = if cq.is_cyclic() { 8 } else { 1 };
        let parallel =
            Engine::Minesweeper(MsConfig { threads: 4, granularity: f, ..MsConfig::default() });
        assert_eq!(db.count(&q, &parallel).unwrap(), sequential, "{}", q.name);
    }
}

#[test]
fn empty_graph_gives_zero_everywhere() {
    let graph = Arc::new(Graph::new_undirected(10, vec![]));
    for cq in CatalogQuery::all() {
        let db = workload_database(graph.clone(), cq, 2, 1);
        let q = cq.query();
        assert_eq!(db.count(&q, &Engine::Lftj).unwrap(), 0, "{}", q.name);
        assert_eq!(db.count(&q, &Engine::minesweeper()).unwrap(), 0, "{}", q.name);
    }
}

#[test]
fn triangle_counts_match_the_graph_utility_on_dataset_standins() {
    // The datagen catalog, the storage triangle counter, LFTJ and the graph engine
    // must all agree about the number of triangles.
    let graph = Arc::new(graphjoin::Dataset::CaGrQc.generate_scaled(0.15));
    let db = workload_database(graph.clone(), CatalogQuery::ThreeClique, 1, 1);
    let q = CatalogQuery::ThreeClique.query();
    let expected = graph.triangle_count();
    assert_eq!(db.count(&q, &Engine::Lftj).unwrap(), expected);
    assert_eq!(db.count(&q, &Engine::GraphEngine).unwrap(), expected);
}
