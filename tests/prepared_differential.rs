//! Cross-engine differential tests for the prepared-query API: over random small
//! instances and every catalog query, all supporting engines must report identical
//! counts through `PreparedQuery`, `first_k(k)` must be a prefix-consistent subset
//! of `collect()`, and warm re-preparations must be answered entirely from the
//! shared index cache.

use graphjoin::{
    naive_count, CatalogQuery, Database, Engine, EngineError, ExecLimits, Graph, MsConfig, Relation,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random database: a seeded undirected graph plus the node samples every catalog
/// query draws on.
fn random_database(seed: u64, n: u32, p: f64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> =
        (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).filter(|_| rng.gen_bool(p)).collect();
    let mut db = Database::new();
    db.add_graph(Graph::new_undirected(n as usize, edges));
    for (i, step) in [3usize, 2, 5, 4].iter().enumerate() {
        let name = format!("v{}", i + 1);
        db.add_relation(name, Relation::from_values((0..n as i64).step_by(*step)));
    }
    db
}

/// The engines that support full enumeration through the sink protocol.
fn enumeration_engines() -> Vec<Engine> {
    vec![
        Engine::Lftj,
        Engine::minesweeper(),
        Engine::Minesweeper(MsConfig { idea8_batch_counting: true, ..MsConfig::default() }),
        Engine::HashJoin(ExecLimits::default()),
        Engine::SortMergeJoin(ExecLimits::default()),
    ]
}

#[test]
fn all_supporting_engines_count_identically_through_prepare() {
    for seed in [1u64, 2, 3] {
        let db = random_database(seed, 24, 0.18);
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let expected = naive_count(db.instance(), &q);
            let mut engines = enumeration_engines();
            if let Some(hybrid) = Engine::hybrid_for(cq) {
                engines.push(hybrid);
            }
            if matches!(cq, CatalogQuery::ThreeClique | CatalogQuery::FourClique) {
                engines.push(Engine::GraphEngine);
            }
            for engine in engines {
                let prepared = db.prepare(&q, &engine).unwrap();
                assert_eq!(
                    prepared.count().unwrap(),
                    expected,
                    "seed {seed} {} {}",
                    q.name,
                    engine.label()
                );
                assert_eq!(
                    prepared.exists().unwrap(),
                    expected > 0,
                    "seed {seed} {} {}",
                    q.name,
                    engine.label()
                );
            }
        }
    }
}

#[test]
fn first_k_is_a_prefix_of_collect_for_every_engine() {
    let db = random_database(7, 20, 0.2);
    for cq in CatalogQuery::all() {
        let q = cq.query();
        for engine in enumeration_engines() {
            let prepared = db.prepare(&q, &engine).unwrap();
            let all = prepared.collect().unwrap();
            assert_eq!(all.len() as u64, prepared.count().unwrap(), "{}", q.name);
            for k in [0usize, 1, 2, all.len() / 2, all.len(), all.len() + 5] {
                let prefix = prepared.first_k(k).unwrap();
                assert_eq!(
                    prefix,
                    all[..k.min(all.len())].to_vec(),
                    "{} {} first_k({k})",
                    q.name,
                    engine.label()
                );
            }
        }
    }
}

#[test]
fn sorted_collect_agrees_across_engines() {
    let db = random_database(11, 22, 0.15);
    for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
        let q = cq.query();
        let reference = db.enumerate(&q, &Engine::Lftj).unwrap();
        for engine in enumeration_engines() {
            assert_eq!(
                db.enumerate(&q, &engine).unwrap(),
                reference,
                "{} {}",
                q.name,
                engine.label()
            );
        }
    }
}

#[test]
fn warm_preparations_build_nothing_and_stay_correct() {
    let db = random_database(13, 26, 0.15);
    for cq in CatalogQuery::all() {
        let q = cq.query();
        let cold = db.prepare(&q, &Engine::Lftj).unwrap();
        let expected = cold.count().unwrap();
        for engine in enumeration_engines() {
            let warm = db.prepare(&q, &engine).unwrap();
            if matches!(engine, Engine::Lftj | Engine::Minesweeper(_)) {
                assert_eq!(warm.indexes_built(), 0, "{} {}", q.name, engine.label());
            }
            assert_eq!(warm.count().unwrap(), expected, "{} {}", q.name, engine.label());
        }
    }
}

#[test]
fn count_only_engines_report_unsupported_for_enumeration() {
    let db = random_database(17, 18, 0.25);
    let q = CatalogQuery::ThreeClique.query();
    let prepared = db.prepare(&q, &Engine::GraphEngine).unwrap();
    assert!(matches!(prepared.collect(), Err(EngineError::Unsupported(_))));
    assert!(matches!(prepared.first_k(3), Err(EngineError::Unsupported(_))));
    assert_eq!(prepared.count().unwrap(), naive_count(db.instance(), &q));
}
