//! Black-box tests for the `gj-service` serving layer: many concurrent
//! sessions over one shared database must be indistinguishable from *some*
//! serial execution, saturation must surface as typed rejections (never a
//! panic, never a wrong answer), cancellation must abort cleanly mid-flight,
//! and the whole stack must compose with disk-backed databases whose
//! relations hydrate lazily under concurrent first access.

use gj_service::{Service, ServiceConfig};
use graphjoin::{
    fault::sites, CancelToken, CatalogQuery, Database, Engine, EngineError, ExecError, FailAction,
    FailpointRegistry, Graph, Query, QueryBudget, Relation,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A seeded random database big enough that engine inner loops pass the
/// cooperative check stride (so budget-carried failpoints genuinely fire).
fn test_database(seed: u64) -> Database {
    let n: u32 = 40;
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|_| rng.gen_bool(0.22))
        .collect();
    let mut db = Database::new();
    db.add_graph(Graph::new_undirected(n as usize, edges));
    db
}

/// A small bidirectional edge relation over `n` nodes, seeded — used as the
/// update payload so epochs genuinely change query answers.
fn random_edges(seed: u64, n: i64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(0.25) {
                flat.extend_from_slice(&[a, b, b, a]);
            }
        }
    }
    Relation::from_flat(2, flat)
}

fn queries() -> Vec<(Query, Engine)> {
    vec![
        (CatalogQuery::ThreeClique.query(), Engine::Lftj),
        (CatalogQuery::ThreeClique.query(), Engine::minesweeper()),
        (CatalogQuery::FourClique.query(), Engine::Lftj),
        (CatalogQuery::FourCycle.query(), Engine::minesweeper()),
    ]
}

/// N session threads race M queries each against a stream of concurrent
/// updates; afterwards the recorded history must replay serially — every
/// session read exactly what the single serial snapshot order says it should
/// have read at its epoch.
#[test]
fn concurrent_sessions_match_a_serial_snapshot_order() {
    let db = test_database(11);
    let base = db.clone();
    let service = Service::new(
        db,
        ServiceConfig { max_concurrent: 4, queue_depth: 64, ..ServiceConfig::default() },
    );
    let workload = queries();

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let service = service.clone();
            let workload = workload.clone();
            s.spawn(move || {
                let session = service.session();
                for i in 0..8usize {
                    let (q, e) = &workload[(t as usize + i) % workload.len()];
                    session.count(q, e).unwrap();
                }
            });
        }
        let updater = service.clone();
        s.spawn(move || {
            for u in 0..3u64 {
                std::thread::sleep(Duration::from_millis(3));
                updater.update_relation("edge", random_edges(100 + u, 40));
            }
        });
    });

    let history = service.history();
    assert_eq!(
        history.iter().filter(|e| matches!(e, gj_service::SessionEvent::Read { .. })).count(),
        32,
        "every read completed and was recorded"
    );
    assert_eq!(service.epoch(), 3);
    service.verify_history(&base).unwrap();
}

/// With one execution slot and an empty wait queue, a second query issued
/// while the first is (artificially) slow must be rejected *before execution*
/// with a typed `Saturated` error — and capacity must fully recover.
#[test]
fn saturation_is_a_typed_rejection_and_capacity_recovers() {
    let db = test_database(12);
    let q = CatalogQuery::ThreeClique.query();
    let expected = db.count(&q, &Engine::Lftj).unwrap();
    // Two exec threads so queries run the parallel driver, whose morsel-claim
    // loop is where the blocker's delay failpoint fires.
    let service = Service::new(
        db,
        ServiceConfig {
            max_concurrent: 1,
            queue_depth: 0,
            exec_threads: 2,
            ..ServiceConfig::default()
        },
    );

    // The blocker's budget carries a failpoint registry that delays every
    // morsel claim: the query stays in flight long enough to observe.
    let fp = Arc::new(FailpointRegistry::new());
    fp.arm(sites::MORSEL_CLAIM, FailAction::Delay(Duration::from_millis(20)));
    let slow_budget = QueryBudget::new().with_failpoints(fp);

    std::thread::scope(|s| {
        let svc = service.clone();
        let query = q.clone();
        let blocker = s.spawn(move || {
            let session = svc.session();
            session.count_with(&query, &Engine::Lftj, &slow_budget)
        });

        // Wait for the blocker to hold the only slot, then overflow.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.in_flight() == 0 {
            assert!(Instant::now() < deadline, "blocker never admitted");
            std::thread::yield_now();
        }
        let probe = service.session();
        match probe.count(&q, &Engine::Lftj) {
            Err(EngineError::Exec(ExecError::Saturated { active, capacity })) => {
                assert_eq!(capacity, 1);
                assert!(active >= 1);
            }
            // The blocker can finish between our in_flight() observation and
            // the probe's admission; then the probe simply succeeds.
            Ok(n) => assert_eq!(n, expected),
            Err(other) => panic!("expected Saturated or success, got {other:?}"),
        }
        assert_eq!(blocker.join().unwrap().unwrap(), expected, "the slow query still answers");
    });

    assert_eq!(service.in_flight(), 0, "all permits released");
    let session = service.session();
    assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), expected);
}

/// A cancel token tripped mid-flight aborts the query with a typed
/// `Cancelled` error; the failed read is not recorded, the session keeps
/// working, and the history stays serially valid.
#[test]
fn cancellation_mid_flight_is_clean_and_unrecorded() {
    let db = test_database(13);
    let base = db.clone();
    let q = CatalogQuery::FourClique.query();
    let expected = db.count(&q, &Engine::Lftj).unwrap();
    // Parallel execution so the morsel-claim delay failpoint below fires.
    let service = Service::new(
        db,
        ServiceConfig { max_concurrent: 2, queue_depth: 8, exec_threads: 2, ..Default::default() },
    );
    let session = service.session();

    // Delay every morsel claim so the query is guaranteed to still be in
    // flight when the canceller fires, and cancellation is observed at the
    // next morsel boundary.
    let fp = Arc::new(FailpointRegistry::new());
    fp.arm(sites::MORSEL_CLAIM, FailAction::Delay(Duration::from_millis(20)));
    let token = CancelToken::new();
    let budget = QueryBudget::new().with_failpoints(fp).with_cancel_token(token.clone());

    std::thread::scope(|s| {
        let canceller = s.spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
        });
        let err = session.count_with(&q, &Engine::Lftj, &budget).unwrap_err();
        match err {
            EngineError::Exec(e) => assert_eq!(e.kind(), "cancelled"),
            other => panic!("expected a cancelled abort, got {other:?}"),
        }
        canceller.join().unwrap();
    });

    assert!(service.history().is_empty(), "aborted reads are not recorded");
    assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), expected, "session survives");
    service.verify_history(&base).unwrap();
}

/// The serving layer composes with disk persistence: sessions over a
/// `Database::open`-ed store race their first queries, so lazy relation
/// hydration (per-slot `OnceLock` through the buffer pool) is exercised under
/// genuine concurrency — answers must match the in-memory original.
#[test]
fn concurrent_sessions_over_a_reopened_store_match_memory() {
    let dir = std::env::temp_dir().join(format!("gj-svc-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = test_database(14);
    db.persist(&dir).unwrap();

    let reopened = Database::open(&dir).unwrap();
    let base = reopened.clone();
    // Room for all four racing sessions: this test exercises concurrent lazy
    // hydration, not admission control.
    let service = Service::new(
        reopened,
        ServiceConfig { max_concurrent: 4, queue_depth: 64, ..ServiceConfig::default() },
    );
    let workload = queries();
    let expected: Vec<u64> = workload.iter().map(|(q, e)| db.count(q, e).unwrap()).collect();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let service = service.clone();
            let workload = workload.clone();
            let expected = expected.clone();
            s.spawn(move || {
                let session = service.session();
                for (i, (q, e)) in workload.iter().enumerate() {
                    let _ = (t, i);
                    assert_eq!(session.count(q, e).unwrap(), expected[i]);
                }
            });
        }
    });

    service.verify_history(&base).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
