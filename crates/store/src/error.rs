//! The typed error surface of the disk store.
//!
//! Every fallible store operation returns [`StoreError`]; the crate never
//! panics on bad input or bad bytes (the lint gate enforces this). The only
//! intentional panic in the crate is the simulated crash a `Panic`-armed
//! failpoint injects, and that panic *is* the fault under test.

use std::fmt;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed. `op` names the operation
    /// (`"open"`, `"read_page"`, …); `detail` is the OS error rendering.
    Io {
        /// The store operation that was executing.
        op: &'static str,
        /// Stringified OS error.
        detail: String,
    },
    /// On-disk bytes failed validation (bad magic, checksum mismatch, a
    /// catalog entry pointing outside the file, …).
    Corrupt(String),
    /// An armed failpoint tripped the operation (fault injection only).
    Fault(&'static str),
    /// Every buffer-pool frame was pinned; the page could not be cached.
    PoolExhausted {
        /// The pool's frame capacity.
        capacity: usize,
    },
    /// The named relation is not in the store's catalog.
    MissingRelation(String),
    /// A durable mutation was requested on a database with no attached store.
    NotAttached,
}

impl StoreError {
    /// Wraps an `std::io::Error` with the name of the failing operation.
    pub fn io(op: &'static str, err: std::io::Error) -> Self {
        StoreError::Io { op, detail: err.to_string() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "io error during {op}: {detail}"),
            StoreError::Corrupt(detail) => write!(f, "corrupt store: {detail}"),
            StoreError::Fault(site) => write!(f, "injected fault at {site}"),
            StoreError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted (all {capacity} frames pinned)")
            }
            StoreError::MissingRelation(name) => {
                write!(f, "relation '{name}' is not in the store catalog")
            }
            StoreError::NotAttached => write!(f, "database has no attached store"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_each_variant() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::Io { op: "read_page", detail: "boom".into() },
                "io error during read_page: boom",
            ),
            (StoreError::Corrupt("bad magic".into()), "corrupt store: bad magic"),
            (StoreError::Fault("wal_append"), "injected fault at wal_append"),
            (
                StoreError::PoolExhausted { capacity: 4 },
                "buffer pool exhausted (all 4 frames pinned)",
            ),
            (
                StoreError::MissingRelation("edge".into()),
                "relation 'edge' is not in the store catalog",
            ),
            (StoreError::NotAttached, "database has no attached store"),
        ];
        for (err, rendered) in cases {
            assert_eq!(err.to_string(), rendered);
        }
    }
}
