//! `gj-store`: a paged on-disk relation store with write-ahead logging.
//!
//! This crate gives the engine a durable home for the columnar flat buffers
//! that [`gj_storage::Relation`] already uses in memory, without changing the
//! in-memory representation at all: an extent on disk *is* the `rows × arity`
//! value buffer, so hydration is one checksum pass plus one `from_flat` call.
//!
//! The pieces, bottom-up:
//!
//! * [`Pager`] — whole-page I/O over the data file ([`PAGE_SIZE`] bytes/page),
//!   with the `page_flush` failpoint on every write;
//! * [`BufferPool`] / [`PageGuard`] — a fixed-capacity page cache with pin
//!   counts and a clock replacer; pinned pages are never evicted, dirty pages
//!   are written back on eviction or flush;
//! * [`Wal`] / [`WalRecord`] — checksummed full-replacement redo records with
//!   a torn-tail recovery scan, and the `wal_append` failpoint (whose `Panic`
//!   action deliberately tears a record, simulating a crash mid-append);
//! * [`Store`] — the catalog, the atomic-rename checkpoint protocol, and
//!   ARIES-lite redo recovery (the `recovery_replay` failpoint fires once per
//!   replayed record).
//!
//! `gj-core` builds `Database::open` / `Database::persist` on top: relations
//! hydrate lazily through the pool on first query, so opening a store is cheap
//! regardless of image size.
//!
//! Everything here returns typed [`StoreError`]s — the crate's only panics are
//! the simulated crashes injected by `Panic`-armed failpoints.

mod codec;
mod error;
mod pager;
mod pool;
mod store;
mod wal;

pub use error::StoreError;
pub use pager::{Pager, PAGE_SIZE};
pub use pool::{BufferPool, PageGuard, PoolStats};
pub use store::Store;
pub use wal::{Wal, WalRecord};

#[cfg(test)]
mod tests {
    use super::*;
    use gj_storage::fault::{sites, FailAction, FailpointRegistry};
    use gj_storage::{Graph, Relation};
    use std::sync::Arc;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gj-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn unary(vals: &[i64]) -> Relation {
        Relation::from_flat(1, vals.to_vec())
    }

    fn sample_graph() -> Graph {
        Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    }

    #[test]
    fn checkpoint_then_open_roundtrips_relations_and_graph() {
        let dir = scratch("roundtrip");
        let store = Store::create(&dir, None).unwrap();
        let r1 = unary(&[3, 1, 4, 1, 5]);
        let r2 = Relation::from_flat(2, vec![1, 2, 3, 4, 5, 6]);
        let g = sample_graph();
        let edge = g.edge_relation();
        store.checkpoint(&[("u", &r1), ("r", &r2), ("edge", &edge)], Some(&g)).unwrap();
        drop(store);

        let store = Store::open(&dir, None).unwrap();
        assert_eq!(store.relation_names(), ["edge", "r", "u"]);
        assert_eq!(store.load_relation("u").unwrap().flat_values(), r1.flat_values());
        assert_eq!(store.load_relation("r").unwrap().flat_values(), r2.flat_values());
        let reopened = store.load_graph().unwrap().unwrap();
        assert_eq!(reopened.edges(), g.edges());
        assert_eq!(reopened.num_nodes(), g.num_nodes());
        assert!(matches!(store.load_relation("nope").unwrap_err(), StoreError::MissingRelation(_)));
    }

    #[test]
    fn a_large_extent_spans_pages_and_survives_pool_pressure() {
        let dir = scratch("large");
        let store = Store::create(&dir, None).unwrap();
        // ~8 pages of values: forces multi-page extents and, at checkpoint
        // time, eviction traffic through the 8-frame write pool.
        let vals: Vec<i64> = (0..4096).collect();
        let big = Relation::from_flat(2, vals.clone());
        store.checkpoint(&[("big", &big)], None).unwrap();
        drop(store);
        let store = Store::open(&dir, None).unwrap();
        assert_eq!(store.load_relation("big").unwrap().flat_values(), &vals[..]);
        let stats = store.pool_stats();
        assert!(stats.misses > 0, "image reads go through the pool: {stats:?}");
    }

    #[test]
    fn wal_records_survive_reopen_without_checkpoint() {
        let dir = scratch("wal-replay");
        let store = Store::create(&dir, None).unwrap();
        store.log_add_relation("u", &unary(&[7, 8])).unwrap();
        let g = sample_graph();
        store.log_add_graph(&g).unwrap();
        store.log_add_relation("u", &unary(&[9])).unwrap(); // replacement wins
        drop(store);

        let store = Store::open(&dir, None).unwrap();
        assert_eq!(store.load_relation("u").unwrap().flat_values(), &[9]);
        assert_eq!(
            store.load_relation("edge").unwrap().flat_values(),
            g.edge_relation().flat_values(),
            "add_graph replay derives the edge relation, mirroring Database::add_graph"
        );
        assert_eq!(store.load_graph().unwrap().unwrap().edges(), g.edges());
    }

    #[test]
    fn edit_records_replay_against_the_image_base() {
        let dir = scratch("edit-replay");
        let store = Store::create(&dir, None).unwrap();
        let base = unary(&[10, 20, 30]);
        // Base lives only in the checkpoint image: replaying the edit must load
        // the extent lazily.
        store.checkpoint(&[("u", &base)], None).unwrap();
        store.log_edit("u", &unary(&[25]), &unary(&[10])).unwrap();
        // A second edit chains on the first (WAL order matters).
        store.log_edit("u", &unary(&[40]), &unary(&[25])).unwrap();
        assert_eq!(store.load_relation("u").unwrap().flat_values(), &[20, 30, 40]);
        drop(store);

        let store = Store::open(&dir, None).unwrap();
        assert_eq!(store.load_relation("u").unwrap().flat_values(), &[20, 30, 40]);
        // Edit records are delta-sized: two single-row edits stay far below one
        // full 3-row image rewrite... structurally: the log holds 2 records.
        let (_wal, records) = Wal::open(&dir.join("wal.gj"), None).unwrap();
        assert_eq!(records.len(), 2);
        assert!(matches!(records[0], WalRecord::Edit { .. }));
    }

    #[test]
    fn edits_on_unknown_relations_fail_without_dirtying_the_log() {
        let dir = scratch("edit-unknown");
        let store = Store::create(&dir, None).unwrap();
        let err = store.log_edit("ghost", &unary(&[1]), &unary(&[])).unwrap_err();
        assert!(matches!(err, StoreError::MissingRelation(_)));
        assert_eq!(std::fs::metadata(dir.join("wal.gj")).unwrap().len(), 0);
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_keeps_state() {
        let dir = scratch("ckpt-truncate");
        let store = Store::create(&dir, None).unwrap();
        let r = unary(&[1, 2, 3]);
        store.log_add_relation("u", &r).unwrap();
        store.checkpoint(&[("u", &r)], None).unwrap();
        assert_eq!(std::fs::metadata(dir.join("wal.gj")).unwrap().len(), 0);
        assert_eq!(store.load_relation("u").unwrap().flat_values(), r.flat_values());
        drop(store);
        let store = Store::open(&dir, None).unwrap();
        assert_eq!(store.load_relation("u").unwrap().flat_values(), r.flat_values());
    }

    #[test]
    fn recovery_replay_trip_is_a_typed_open_error_and_retry_succeeds() {
        let dir = scratch("replay-trip");
        let store = Store::create(&dir, None).unwrap();
        store.log_add_relation("u", &unary(&[1])).unwrap();
        store.log_add_relation("v", &unary(&[2])).unwrap();
        drop(store);

        let fp = Arc::new(FailpointRegistry::new());
        fp.arm_after(sites::RECOVERY_REPLAY, FailAction::Trip, 1, 1);
        let err = Store::open(&dir, Some(Arc::clone(&fp))).unwrap_err();
        assert_eq!(err, StoreError::Fault(sites::RECOVERY_REPLAY));
        assert_eq!(fp.fired().as_deref(), Some(sites::RECOVERY_REPLAY));

        // Recovery is read-only until it completes: a clean retry sees all.
        let store = Store::open(&dir, None).unwrap();
        assert_eq!(store.relation_names(), ["u", "v"]);
    }

    #[test]
    fn corrupt_header_is_a_typed_error() {
        let dir = scratch("corrupt");
        drop(Store::create(&dir, None).unwrap());
        let data = dir.join("data.gj");
        let mut bytes = std::fs::read(&data).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&data, bytes).unwrap();
        assert!(matches!(Store::open(&dir, None).unwrap_err(), StoreError::Corrupt(_)));
    }

    #[test]
    fn corrupt_extent_is_caught_by_its_checksum() {
        let dir = scratch("bitrot");
        let store = Store::create(&dir, None).unwrap();
        let vals: Vec<i64> = (0..2048).collect();
        store.checkpoint(&[("u", &Relation::from_flat(1, vals))], None).unwrap();
        drop(store);
        let data = dir.join("data.gj");
        let mut bytes = std::fs::read(&data).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip a bit in the final extent page
        std::fs::write(&data, bytes).unwrap();
        let store = Store::open(&dir, None).unwrap();
        assert!(matches!(store.load_relation("u").unwrap_err(), StoreError::Corrupt(_)));
    }
}
