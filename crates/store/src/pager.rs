//! Fixed-size page I/O over a single data file.
//!
//! The pager is the only code that touches the data file's bytes. Pages are
//! [`PAGE_SIZE`] bytes, addressed by a `u32` page number; page 0 is the store
//! header, the catalog and extents follow (layout is the catalog's business —
//! the pager only moves whole pages).
//!
//! Every page write passes the [`sites::PAGE_FLUSH`] failpoint first, so the
//! fault harness can trip a typed error or simulate a crash at any individual
//! page of a checkpoint.

use crate::error::StoreError;
use gj_storage::fault::{sites, FailpointHit, FailpointRegistry};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// Size in bytes of every page in a store data file.
pub const PAGE_SIZE: usize = 4096;

/// Whole-page reader/writer over one file (see the module docs).
#[derive(Debug)]
pub struct Pager {
    file: Mutex<File>,
    failpoints: Option<Arc<FailpointRegistry>>,
}

impl Pager {
    /// Opens an existing data file read/write.
    pub fn open(
        path: &Path,
        failpoints: Option<Arc<FailpointRegistry>>,
    ) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io("open data file", e))?;
        Ok(Pager { file: Mutex::new(file), failpoints })
    }

    /// Creates (or truncates) a data file.
    pub fn create(
        path: &Path,
        failpoints: Option<Arc<FailpointRegistry>>,
    ) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io("create data file", e))?;
        Ok(Pager { file: Mutex::new(file), failpoints })
    }

    fn lock_file(&self) -> std::sync::MutexGuard<'_, File> {
        self.file.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of whole pages in the file (a partial trailing page counts as one).
    pub fn num_pages(&self) -> Result<u32, StoreError> {
        let file = self.lock_file();
        let len = file.metadata().map_err(|e| StoreError::io("stat data file", e))?.len();
        Ok(len.div_ceil(PAGE_SIZE as u64) as u32)
    }

    /// Reads page `page` into a fresh `PAGE_SIZE` buffer, zero-padding past EOF.
    pub fn read_page(&self, page: u32) -> Result<Box<[u8; PAGE_SIZE]>, StoreError> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        let mut file = self.lock_file();
        file.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::io("seek for read_page", e))?;
        // Read as much of the page as exists; a short read at EOF leaves zeros.
        let mut filled = 0;
        while filled < PAGE_SIZE {
            match file.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StoreError::io("read_page", e)),
            }
        }
        Ok(buf)
    }

    /// Writes `data` (at most one page) at page `page`, passing the
    /// `page_flush` failpoint first.
    pub fn write_page(&self, page: u32, data: &[u8]) -> Result<(), StoreError> {
        if data.len() > PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "page write of {} bytes exceeds page size {PAGE_SIZE}",
                data.len()
            )));
        }
        if let Some(fp) = &self.failpoints {
            match fp.hit(sites::PAGE_FLUSH) {
                Some(FailpointHit::Trip) => return Err(StoreError::Fault(sites::PAGE_FLUSH)),
                Some(FailpointHit::Panic) => {
                    // gj-lint: allow(no-panic-in-engines) — fault-injection failpoint: the panic IS the simulated crash under test
                    panic!("failpoint panic: {}", sites::PAGE_FLUSH);
                }
                None => {}
            }
        }
        let mut file = self.lock_file();
        file.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::io("seek for write_page", e))?;
        file.write_all(data).map_err(|e| StoreError::io("write_page", e))?;
        Ok(())
    }

    /// Flushes file buffers to the OS (no fsync — crash durability in this
    /// repro is modeled by the failpoint harness, not the kernel cache).
    pub fn flush(&self) -> Result<(), StoreError> {
        self.lock_file().flush().map_err(|e| StoreError::io("flush data file", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_storage::fault::FailAction;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gj-pager-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("data.gj")
    }

    #[test]
    fn pages_roundtrip_and_eof_reads_are_zero_padded() {
        let path = scratch("roundtrip");
        let pager = Pager::create(&path, None).unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xab;
        page[PAGE_SIZE - 1] = 0xcd;
        pager.write_page(3, &page).unwrap();
        assert_eq!(pager.num_pages().unwrap(), 4);
        let read = pager.read_page(3).unwrap();
        assert_eq!(read[0], 0xab);
        assert_eq!(read[PAGE_SIZE - 1], 0xcd);
        // Past EOF: all zeros, no error.
        assert!(pager.read_page(10).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn page_flush_trip_is_a_typed_error() {
        let path = scratch("trip");
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm(sites::PAGE_FLUSH, FailAction::Trip);
        let pager = Pager::create(&path, Some(Arc::clone(&fp))).unwrap();
        let err = pager.write_page(0, &[0u8; PAGE_SIZE]).unwrap_err();
        assert_eq!(err, StoreError::Fault(sites::PAGE_FLUSH));
        assert_eq!(fp.fired().as_deref(), Some(sites::PAGE_FLUSH));
    }

    #[test]
    fn oversized_writes_are_rejected() {
        let path = scratch("oversize");
        let pager = Pager::create(&path, None).unwrap();
        let err = pager.write_page(0, &vec![0u8; PAGE_SIZE + 1]).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }
}
