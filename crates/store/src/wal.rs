//! The write-ahead log: checksummed redo records, torn-tail recovery scan.
//!
//! Record framing on disk: `[len: u32][crc: u32][payload: len bytes]`, all
//! little-endian, `crc = fnv1a32(payload)`. Payloads are full-replacement redo
//! records ([`WalRecord`]), so replay is idempotent: applying a prefix of the
//! log twice (e.g. after a crash *during* recovery) lands in the same state as
//! applying it once. That is the whole ARIES-lite trick — no undo pass is ever
//! needed because records replace rather than delta.
//!
//! The recovery scan ([`Wal::open`]) reads records until it meets the end of
//! file, a frame that extends past the file, or a checksum mismatch. Everything
//! from the first bad frame on is a torn tail from an interrupted append: it is
//! discarded and the file truncated back to the last valid record. A torn tail
//! is produced deliberately by the [`sites::WAL_APPEND`] failpoint's `Panic`
//! action, which writes half a record and then simulates the crash.

use crate::codec::{fnv1a32, ByteReader, ByteWriter};
use crate::error::StoreError;
use gj_storage::fault::{sites, FailpointHit, FailpointRegistry};
use gj_storage::{Graph, Relation, Val};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Upper bound on a single record's payload; a length field beyond this is
/// treated as torn/corrupt rather than allocated.
const MAX_RECORD_BYTES: u32 = 1 << 30;

const TAG_ADD_RELATION: u8 = 1;
const TAG_ADD_GRAPH: u8 = 2;
const TAG_EDIT: u8 = 3;

/// One redo record: a full replacement of a relation or of the graph, or an
/// incremental edit batch sized by the delta rather than the relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// `add_relation(name, …)`: the relation's complete flat buffer.
    AddRelation {
        /// Relation name.
        name: String,
        /// Number of columns.
        arity: u32,
        /// Row-major `rows × arity` flat values, sorted/deduped.
        values: Vec<Val>,
    },
    /// `add_graph(…)`: the graph's canonical edge list.
    AddGraph {
        /// Node-id domain size.
        num_nodes: u64,
        /// Canonical (sorted, deduped, self-loop-free) directed edges.
        edges: Vec<(u32, u32)>,
    },
    /// `commit_edits(name, …)`: an incremental edit batch. Replay applies
    /// [`Relation::with_edits`] to the relation's current state (earlier records
    /// plus the image), so an edit record costs O(delta) bytes — this is what
    /// keeps a sustained update stream from rewriting full images into the log.
    ///
    /// Not idempotent *in isolation* (unlike the full-replacement records), but
    /// recovery always replays the log's valid prefix exactly once from the
    /// immutable image, which restores the replace-prefix-twice-lands-same-state
    /// guarantee at the log level.
    Edit {
        /// Relation name.
        name: String,
        /// Number of columns.
        arity: u32,
        /// Row-major flat values of the inserted rows.
        ins: Vec<Val>,
        /// Row-major flat values of the deleted rows.
        del: Vec<Val>,
    },
}

impl WalRecord {
    /// Builds the record for replacing `name` with `relation`.
    pub fn add_relation(name: &str, relation: &Relation) -> Self {
        WalRecord::AddRelation {
            name: name.to_string(),
            arity: relation.arity() as u32,
            values: relation.flat_values().to_vec(),
        }
    }

    /// Builds the record for replacing the graph.
    pub fn add_graph(graph: &Graph) -> Self {
        WalRecord::AddGraph { num_nodes: graph.num_nodes() as u64, edges: graph.edges().to_vec() }
    }

    /// Builds the record for an incremental edit batch on `name`.
    pub fn edit(name: &str, ins: &Relation, del: &Relation) -> Self {
        debug_assert_eq!(ins.arity(), del.arity(), "edit batch arity mismatch");
        WalRecord::Edit {
            name: name.to_string(),
            arity: ins.arity() as u32,
            ins: ins.flat_values().to_vec(),
            del: del.flat_values().to_vec(),
        }
    }

    /// Serializes the payload (framing is added by [`Wal::append`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            WalRecord::AddRelation { name, arity, values } => {
                w.put_u8(TAG_ADD_RELATION);
                w.put_str(name);
                w.put_u32(*arity);
                w.put_u64(values.len() as u64);
                for &v in values {
                    w.put_val(v);
                }
            }
            WalRecord::AddGraph { num_nodes, edges } => {
                w.put_u8(TAG_ADD_GRAPH);
                w.put_u64(*num_nodes);
                w.put_u64(edges.len() as u64);
                for &(a, b) in edges {
                    w.put_u32(a);
                    w.put_u32(b);
                }
            }
            WalRecord::Edit { name, arity, ins, del } => {
                w.put_u8(TAG_EDIT);
                w.put_str(name);
                w.put_u32(*arity);
                for flat in [ins, del] {
                    w.put_u64(flat.len() as u64);
                    for &v in flat {
                        w.put_val(v);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Parses a payload produced by [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<WalRecord, StoreError> {
        let mut r = ByteReader::new(payload, "wal record");
        match r.get_u8()? {
            TAG_ADD_RELATION => {
                let name = r.get_str()?;
                let arity = r.get_u32()?;
                let len = r.get_u64()? as usize;
                if arity == 0 || !len.is_multiple_of(arity as usize) {
                    return Err(StoreError::Corrupt(format!(
                        "wal record: {len} values are not a multiple of arity {arity}"
                    )));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(r.get_val()?);
                }
                Ok(WalRecord::AddRelation { name, arity, values })
            }
            TAG_ADD_GRAPH => {
                let num_nodes = r.get_u64()?;
                let len = r.get_u64()? as usize;
                let mut edges = Vec::with_capacity(len);
                for _ in 0..len {
                    let a = r.get_u32()?;
                    let b = r.get_u32()?;
                    edges.push((a, b));
                }
                Ok(WalRecord::AddGraph { num_nodes, edges })
            }
            TAG_EDIT => {
                let name = r.get_str()?;
                let arity = r.get_u32()?;
                let mut batches = [Vec::new(), Vec::new()];
                for batch in &mut batches {
                    let len = r.get_u64()? as usize;
                    if arity == 0 || !len.is_multiple_of(arity as usize) {
                        return Err(StoreError::Corrupt(format!(
                            "wal edit record: {len} values are not a multiple of arity {arity}"
                        )));
                    }
                    batch.reserve_exact(len);
                    for _ in 0..len {
                        batch.push(r.get_val()?);
                    }
                }
                let [ins, del] = batches;
                Ok(WalRecord::Edit { name, arity, ins, del })
            }
            tag => Err(StoreError::Corrupt(format!("wal record: unknown tag {tag}"))),
        }
    }
}

/// An open write-ahead log file positioned at its valid end.
#[derive(Debug)]
pub struct Wal {
    file: File,
    failpoints: Option<Arc<FailpointRegistry>>,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scans it, truncates any
    /// torn tail, and returns the valid records in append order.
    pub fn open(
        path: &Path,
        failpoints: Option<Arc<FailpointRegistry>>,
    ) -> Result<(Wal, Vec<WalRecord>), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("open wal", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| StoreError::io("read wal", e))?;

        let mut records = Vec::new();
        let mut pos = 0usize;
        while let Some(header) = bytes.get(pos..pos + 8) {
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            if len > MAX_RECORD_BYTES {
                break; // absurd length: torn or corrupt frame
            }
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else { break };
            if fnv1a32(payload) != crc {
                break; // torn append: checksum does not match
            }
            records.push(WalRecord::decode(payload)?);
            pos += 8 + len as usize;
        }
        if pos < bytes.len() {
            // Discard the torn tail so later appends start at a clean frame.
            file.set_len(pos as u64).map_err(|e| StoreError::io("truncate wal tail", e))?;
        }
        file.seek(SeekFrom::Start(pos as u64)).map_err(|e| StoreError::io("seek wal", e))?;
        Ok((Wal { file, failpoints }, records))
    }

    /// Appends one record, passing the `wal_append` failpoint first. A `Panic`
    /// action writes a deliberately torn half-record before panicking, so the
    /// next recovery scan meets exactly the crash this site simulates.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let payload = record.encode();
        if let Some(fp) = &self.failpoints {
            match fp.hit(sites::WAL_APPEND) {
                Some(FailpointHit::Trip) => return Err(StoreError::Fault(sites::WAL_APPEND)),
                Some(FailpointHit::Panic) => {
                    let torn = self.frame(&payload);
                    let half = &torn[..torn.len() / 2];
                    let _ = self.file.write_all(half);
                    let _ = self.file.flush();
                    // gj-lint: allow(no-panic-in-engines) — fault-injection failpoint: the panic IS the simulated crash under test
                    panic!("failpoint panic: {}", sites::WAL_APPEND);
                }
                None => {}
            }
        }
        let framed = self.frame(&payload);
        self.file.write_all(&framed).map_err(|e| StoreError::io("wal append", e))?;
        self.file.flush().map_err(|e| StoreError::io("wal flush", e))
    }

    /// Empties the log (runs after a checkpoint commits).
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0).map_err(|e| StoreError::io("truncate wal", e))?;
        self.file.seek(SeekFrom::Start(0)).map_err(|e| StoreError::io("seek wal", e))?;
        Ok(())
    }

    fn frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        framed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_storage::fault::FailAction;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gj-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.gj")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::AddRelation { name: "u1".into(), arity: 1, values: vec![1, 5, 9] },
            WalRecord::AddGraph { num_nodes: 4, edges: vec![(0, 1), (1, 2), (2, 3)] },
            WalRecord::AddRelation { name: "r".into(), arity: 2, values: vec![1, 2, 3, 4] },
            WalRecord::Edit { name: "r".into(), arity: 2, ins: vec![5, 6], del: vec![1, 2] },
        ]
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = scratch("roundtrip");
        let (mut wal, replayed) = Wal::open(&path, None).unwrap();
        assert!(replayed.is_empty());
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let (_wal, replayed) = Wal::open(&path, None).unwrap();
        assert_eq!(replayed, sample_records());
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let path = scratch("torn");
        let (mut wal, _) = Wal::open(&path, None).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        // Tear the file mid-way through the last record's payload.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_wal, replayed) = Wal::open(&path, None).unwrap();
        assert_eq!(replayed, sample_records()[..3], "torn final record dropped");
        assert!(
            std::fs::metadata(&path).unwrap().len() < full.len() as u64 - 3,
            "tail truncated back to the last valid frame"
        );
        // Reopening again is stable (recovery is idempotent).
        let (_wal, replayed) = Wal::open(&path, None).unwrap();
        assert_eq!(replayed, sample_records()[..3]);
    }

    #[test]
    fn panic_failpoint_leaves_a_torn_record_recovery_discards() {
        let path = scratch("panic");
        let fp = Arc::new(FailpointRegistry::new());
        let (mut wal, _) = Wal::open(&path, Some(Arc::clone(&fp))).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        fp.arm(sites::WAL_APPEND, FailAction::Panic);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wal.append(&sample_records()[1])
        }));
        assert!(panicked.is_err(), "panic action must panic");
        drop(wal);
        let (_wal, replayed) = Wal::open(&path, None).unwrap();
        assert_eq!(replayed, sample_records()[..1], "torn record from the crash discarded");
    }

    #[test]
    fn trip_failpoint_is_a_typed_error_and_writes_nothing() {
        let path = scratch("trip");
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm(sites::WAL_APPEND, FailAction::Trip);
        let (mut wal, _) = Wal::open(&path, Some(fp)).unwrap();
        let err = wal.append(&sample_records()[0]).unwrap_err();
        assert_eq!(err, StoreError::Fault(sites::WAL_APPEND));
        drop(wal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0, "nothing written");
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = scratch("truncate");
        let (mut wal, _) = Wal::open(&path, None).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.truncate().unwrap();
        wal.append(&sample_records()[2]).unwrap();
        drop(wal);
        let (_wal, replayed) = Wal::open(&path, None).unwrap();
        assert_eq!(replayed, vec![sample_records()[2].clone()]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        // Arity-0 relation frames are corrupt by definition.
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_str("x");
        w.put_u32(0);
        w.put_u64(0);
        assert!(WalRecord::decode(&w.into_bytes()).is_err());
        // An edit batch whose flat length is not a multiple of the arity.
        let mut w = ByteWriter::new();
        w.put_u8(3);
        w.put_str("r");
        w.put_u32(2);
        w.put_u64(3);
        for v in [1, 2, 3] {
            w.put_val(v);
        }
        w.put_u64(0);
        assert!(WalRecord::decode(&w.into_bytes()).is_err());
    }
}
