//! A fixed-capacity buffer pool with pin counts and a clock replacer.
//!
//! The pool caches whole pages of one [`Pager`] file in memory. Readers call
//! [`BufferPool::fetch`], which pins the frame and returns a [`PageGuard`];
//! while any guard for a page is alive the frame cannot be evicted. Dropping
//! the guard unpins it. Writers call [`BufferPool::write_page`], which dirties
//! the frame in memory; dirty frames reach disk when they are evicted by the
//! clock sweep or when [`BufferPool::flush_all`] runs (checkpoints do both —
//! a checkpoint routes every page through a small pool on purpose so eviction
//! writeback is exercised by real traffic, not only by unit tests).
//!
//! Replacement is the classic clock (second-chance) scheme: each frame has a
//! reference bit set on every hit; the sweeping hand clears reference bits and
//! evicts the first unpinned frame whose bit is already clear. If every frame
//! is pinned the pool refuses with [`StoreError::PoolExhausted`] rather than
//! blocking — callers hold guards briefly, so exhaustion is a caller bug or a
//! deliberately undersized test pool, and either way a typed error beats a
//! deadlock.

use crate::error::StoreError;
use crate::pager::{Pager, PAGE_SIZE};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Counters describing pool traffic since creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read the pager.
    pub misses: u64,
    /// Frames recycled by the clock sweep.
    pub evictions: u64,
    /// Dirty frames written back to disk (evictions and flushes).
    pub flushes: u64,
}

#[derive(Debug)]
struct Frame {
    page: u32,
    data: Arc<[u8; PAGE_SIZE]>,
    dirty: bool,
    pins: usize,
    referenced: bool,
}

#[derive(Debug, Default)]
struct PoolState {
    /// Frame slots; `None` until first use.
    frames: Vec<Option<Frame>>,
    /// page number → slot index.
    map: HashMap<u32, usize>,
    /// Clock hand: next slot the sweep examines.
    hand: usize,
}

/// The buffer pool (see the module docs).
#[derive(Debug)]
pub struct BufferPool {
    pager: Pager,
    state: Mutex<PoolState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushes: AtomicU64,
}

/// A pinned page. Dereferences to the page bytes; dropping it unpins the frame.
#[derive(Debug)]
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    page: u32,
    data: Arc<[u8; PAGE_SIZE]>,
}

impl Deref for PageGuard<'_> {
    type Target = [u8; PAGE_SIZE];

    fn deref(&self) -> &Self::Target {
        &self.data
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.page);
    }
}

impl BufferPool {
    /// A pool of `capacity` frames over `pager`. Capacity is clamped to ≥ 1.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let state =
            PoolState { frames: (0..capacity).map(|_| None).collect(), ..Default::default() };
        BufferPool {
            pager,
            state: Mutex::new(state),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    /// The underlying pager (page-count queries during catalog validation).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Frame capacity of the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traffic counters since creation.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fetches `page`, pinning its frame until the returned guard drops.
    pub fn fetch(&self, page: u32) -> Result<PageGuard<'_>, StoreError> {
        let mut state = self.lock_state();
        if let Some(&slot) = state.map.get(&page) {
            if let Some(frame) = state.frames[slot].as_mut() {
                frame.pins += 1;
                frame.referenced = true;
                let data = Arc::clone(&frame.data);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PageGuard { pool: self, page, data });
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let slot = self.free_slot(&mut state)?;
        let data: Arc<[u8; PAGE_SIZE]> = Arc::new(*self.pager.read_page(page)?);
        state.frames[slot] =
            Some(Frame { page, data: Arc::clone(&data), dirty: false, pins: 1, referenced: true });
        state.map.insert(page, slot);
        Ok(PageGuard { pool: self, page, data })
    }

    /// Stages `data` as the new contents of `page`, dirty in memory. The bytes
    /// reach disk on eviction or [`flush_all`](Self::flush_all).
    pub fn write_page(&self, page: u32, data: &[u8]) -> Result<(), StoreError> {
        if data.len() > PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "page write of {} bytes exceeds page size {PAGE_SIZE}",
                data.len()
            )));
        }
        let mut full = [0u8; PAGE_SIZE];
        full[..data.len()].copy_from_slice(data);
        let mut state = self.lock_state();
        if let Some(&slot) = state.map.get(&page) {
            if let Some(frame) = state.frames[slot].as_mut() {
                frame.data = Arc::new(full);
                frame.dirty = true;
                frame.referenced = true;
                return Ok(());
            }
        }
        let slot = self.free_slot(&mut state)?;
        state.frames[slot] =
            Some(Frame { page, data: Arc::new(full), dirty: true, pins: 0, referenced: true });
        state.map.insert(page, slot);
        Ok(())
    }

    /// Writes every dirty frame back to the pager and clears its dirty bit.
    pub fn flush_all(&self) -> Result<(), StoreError> {
        let mut state = self.lock_state();
        for slot in 0..state.frames.len() {
            let (page, data) = match &state.frames[slot] {
                Some(f) if f.dirty => (f.page, Arc::clone(&f.data)),
                _ => continue,
            };
            self.pager.write_page(page, &data[..])?;
            self.flushes.fetch_add(1, Ordering::Relaxed);
            if let Some(frame) = state.frames[slot].as_mut() {
                frame.dirty = false;
            }
        }
        self.pager.flush()
    }

    /// Finds a slot for a new frame: an empty slot, or a clock-sweep victim
    /// (flushing it first if dirty). Errors when every frame is pinned.
    fn free_slot(&self, state: &mut PoolState) -> Result<usize, StoreError> {
        if let Some(slot) = state.frames.iter().position(Option::is_none) {
            return Ok(slot);
        }
        // Clock sweep: two full revolutions guarantee every unpinned frame has
        // had its reference bit cleared and been revisited.
        for _ in 0..2 * self.capacity {
            let slot = state.hand;
            state.hand = (state.hand + 1) % self.capacity;
            let Some(frame) = state.frames[slot].as_mut() else { continue };
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if frame.dirty {
                let (page, data) = (frame.page, Arc::clone(&frame.data));
                self.pager.write_page(page, &data[..])?;
                self.flushes.fetch_add(1, Ordering::Relaxed);
            }
            let page = frame.page;
            state.frames[slot] = None;
            state.map.remove(&page);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(slot);
        }
        Err(StoreError::PoolExhausted { capacity: self.capacity })
    }

    fn unpin(&self, page: u32) {
        let mut state = self.lock_state();
        if let Some(&slot) = state.map.get(&page) {
            if let Some(frame) = state.frames[slot].as_mut() {
                frame.pins = frame.pins.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(tag: &str, capacity: usize) -> BufferPool {
        let dir = std::env::temp_dir().join(format!("gj-pool-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let pager = Pager::create(&dir.join("data.gj"), None).unwrap();
        BufferPool::new(pager, capacity)
    }

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = pool("hits", 4);
        pool.write_page(0, &page_of(1)).unwrap();
        pool.flush_all().unwrap();
        let a = pool.fetch(0).unwrap();
        let b = pool.fetch(0).unwrap();
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 1);
        drop((a, b));
        let stats = pool.stats();
        assert_eq!(stats.hits, 2, "both fetches hit the staged frame");
        assert_eq!(stats.flushes, 1);
    }

    #[test]
    fn eviction_writes_dirty_frames_back() {
        let pool = pool("evict", 2);
        for p in 0..4u32 {
            pool.write_page(p, &page_of(p as u8 + 1)).unwrap();
        }
        // Capacity 2 with 4 staged pages forces evictions with writeback.
        assert!(pool.stats().evictions >= 2);
        assert!(pool.stats().flushes >= 2);
        pool.flush_all().unwrap();
        for p in 0..4u32 {
            let guard = pool.fetch(p).unwrap();
            assert_eq!(guard[0], p as u8 + 1, "page {p} survived eviction");
        }
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let pool = pool("pin", 2);
        pool.write_page(0, &page_of(1)).unwrap();
        pool.write_page(1, &page_of(2)).unwrap();
        pool.flush_all().unwrap();
        let g0 = pool.fetch(0).unwrap();
        let g1 = pool.fetch(1).unwrap();
        let err = pool.fetch(2).unwrap_err();
        assert_eq!(err, StoreError::PoolExhausted { capacity: 2 });
        drop(g1);
        let g2 = pool.fetch(2).unwrap();
        assert_eq!(g2[0], 0, "page 2 was never written: zero-padded read");
        assert_eq!(g0[0], 1, "pinned page 0 still resident");
    }

    #[test]
    fn guard_drop_unpins() {
        let pool = pool("unpin", 1);
        pool.write_page(0, &page_of(9)).unwrap();
        pool.flush_all().unwrap();
        drop(pool.fetch(0).unwrap());
        // With the single frame unpinned, a different page can displace it.
        let g = pool.fetch(5).unwrap();
        assert_eq!(g[0], 0);
    }
}
