//! Little-endian byte packing shared by the WAL and the catalog.
//!
//! Everything the store writes to disk goes through these two helpers so the
//! encoding (little-endian, length-prefixed strings) lives in exactly one
//! place. Reads are fallible: a short or malformed buffer surfaces as
//! [`StoreError::Corrupt`], never a panic — recovery *expects* to meet torn
//! bytes at the WAL tail.

use crate::error::StoreError;
use gj_storage::Val;

/// FNV-1a 32-bit hash; the checksum on WAL records and catalog extents.
///
/// Not cryptographic — it only needs to catch torn writes and bit rot, and it
/// keeps the crate dependency-free.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// An append-only little-endian byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` value in little-endian order.
    pub fn put_val(&mut self, v: Val) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor over a byte slice whose reads fail with [`StoreError::Corrupt`]
/// instead of panicking when the buffer runs short.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string included in corruption errors ("wal record", "catalog").
    what: &'static str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`; `what` labels corruption errors.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        ByteReader { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "{}: truncated (wanted {} bytes at offset {}, have {})",
                self.what,
                n,
                self.pos,
                self.buf.len()
            ))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64` value.
    pub fn get_val(&mut self) -> Result<Val, StoreError> {
        let b = self.take(8)?;
        Ok(Val::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("{}: invalid utf-8 in string", self.what)))
    }

    /// Bytes not yet consumed.
    #[cfg(test)]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_val(-42);
        w.put_str("edge");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_val().unwrap(), -42);
        assert_eq!(r.get_str().unwrap(), "edge");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn short_reads_are_corruption_not_panics() {
        let mut r = ByteReader::new(&[1, 2], "test");
        let err = r.get_u32().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn string_length_overflow_is_caught() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // absurd length prefix with no payload
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert!(r.get_str().is_err());
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_ne!(fnv1a32(b"edge"), fnv1a32(b"edgf"));
    }
}
