//! The store proper: catalog, checkpoint protocol, and WAL recovery.
//!
//! ## On-disk layout
//!
//! A store is a directory holding two files:
//!
//! * `data.gj` — the checkpoint image, in [`PAGE_SIZE`] pages:
//!   * page 0: header (`"GJSTORE1"` magic, version, page size, catalog length,
//!     catalog checksum);
//!   * pages 1..=k: the serialized catalog (name, arity, rows, extent location
//!     and checksum per relation; plus the graph's node count and edge extent);
//!   * remaining pages: extents — each relation's `rows × arity` flat values as
//!     little-endian `i64`s, and the graph's canonical edge list as `u32` pairs.
//! * `wal.gj` — the write-ahead log of mutations since the image was taken
//!   (format in [`crate::wal`]).
//!
//! ## Crash safety
//!
//! * **Mutations** ([`Store::log_add_relation`] / [`Store::log_add_graph`])
//!   append a checksummed redo record to the WAL *before* the in-memory apply;
//!   a crash mid-append leaves a torn tail the next recovery scan discards, so
//!   the store reopens to exactly the pre- or post-mutation state, never a torn
//!   one.
//! * **Checkpoints** ([`Store::checkpoint`]) write a complete fresh image to
//!   `data.gj.tmp` (every page through a deliberately small buffer pool, so
//!   eviction writeback runs under real traffic), then atomically rename it
//!   over `data.gj`, then truncate the WAL. The rename is the commit point: a
//!   crash before it leaves the old image + intact WAL; a crash after it leaves
//!   the new image, against which replaying the old WAL is harmless because
//!   redo records are idempotent full replacements.
//! * **Recovery** ([`Store::open`]) reads the image catalog lazily (extents
//!   stay on disk until first use), replays the WAL's valid prefix in order,
//!   and truncates the torn tail. Replay itself only builds in-memory state, so
//!   a crash *during* recovery loses nothing: the next open replays again.

use crate::codec::{fnv1a32, ByteReader, ByteWriter};
use crate::error::StoreError;
use crate::pager::{Pager, PAGE_SIZE};
use crate::pool::{BufferPool, PoolStats};
use crate::wal::{Wal, WalRecord};
use gj_storage::fault::{sites, FailpointHit, FailpointRegistry};
use gj_storage::{Graph, Relation, Val};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

const MAGIC: [u8; 8] = *b"GJSTORE1";
const VERSION: u32 = 1;
/// Frames in the read pool of an open store.
const OPEN_POOL_FRAMES: usize = 64;
/// Frames in the write pool used during a checkpoint — small on purpose, so
/// image writes overflow the pool and exercise clock eviction + writeback.
const CHECKPOINT_POOL_FRAMES: usize = 8;

/// Location + integrity data for one relation extent in the image.
#[derive(Debug, Clone)]
struct RelationEntry {
    arity: u32,
    rows: u64,
    first_page: u32,
    crc: u32,
}

/// Location + integrity data for the graph extent in the image.
#[derive(Debug, Clone)]
struct GraphEntry {
    num_nodes: u64,
    num_edges: u64,
    first_page: u32,
    crc: u32,
}

#[derive(Debug, Clone, Default)]
struct Catalog {
    relations: BTreeMap<String, RelationEntry>,
    graph: Option<GraphEntry>,
}

#[derive(Debug)]
struct StoreState {
    pool: BufferPool,
    catalog: Catalog,
    wal: Wal,
    /// Relations whose latest version lives in the WAL, already materialized.
    overrides: BTreeMap<String, Relation>,
    /// Graph whose latest version lives in the WAL.
    graph_override: Option<Graph>,
}

/// A disk-backed relation store (see the module docs for the protocol).
///
/// All methods take `&self`; the store is shared behind an `Arc` by the lazy
/// relation loaders `gj-core` installs. Locks are poison-tolerant — a panic
/// injected by the fault harness never wedges the store.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    failpoints: Option<Arc<FailpointRegistry>>,
    state: Mutex<StoreState>,
}

impl Store {
    /// Creates an empty store directory (overwriting any existing image).
    pub fn create(
        dir: impl AsRef<Path>,
        failpoints: Option<Arc<FailpointRegistry>>,
    ) -> Result<Store, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create store dir", e))?;
        write_image(dir, failpoints.clone(), &[], None)?;
        let wal_path = dir.join("wal.gj");
        std::fs::write(&wal_path, b"").map_err(|e| StoreError::io("create wal", e))?;
        Store::open(dir, failpoints)
    }

    /// Opens an existing store: reads the header + catalog, replays the WAL's
    /// valid prefix (each record passes the `recovery_replay` failpoint), and
    /// truncates any torn tail.
    pub fn open(
        dir: impl AsRef<Path>,
        failpoints: Option<Arc<FailpointRegistry>>,
    ) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let pager = Pager::open(&dir.join("data.gj"), failpoints.clone())?;
        let pool = BufferPool::new(pager, OPEN_POOL_FRAMES);
        let catalog = read_catalog(&pool)?;
        let (wal, records) = Wal::open(&dir.join("wal.gj"), failpoints.clone())?;

        let mut overrides = BTreeMap::new();
        let mut graph_override = None;
        for record in records {
            if let Some(fp) = &failpoints {
                match fp.hit(sites::RECOVERY_REPLAY) {
                    Some(FailpointHit::Trip) => {
                        return Err(StoreError::Fault(sites::RECOVERY_REPLAY))
                    }
                    Some(FailpointHit::Panic) => {
                        // gj-lint: allow(no-panic-in-engines) — fault-injection failpoint: the panic IS the simulated crash under test
                        panic!("failpoint panic: {}", sites::RECOVERY_REPLAY);
                    }
                    None => {}
                }
            }
            apply_record(record, &mut overrides, &mut graph_override, &pool, &catalog)?;
        }

        let state = StoreState { pool, catalog, wal, overrides, graph_override };
        Ok(Store { dir, failpoints, state: Mutex::new(state) })
    }

    /// The store's directory on disk.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn lock_state(&self) -> MutexGuard<'_, StoreState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Names of every relation visible in the store (image catalog plus any
    /// WAL-replayed replacements), in sorted order.
    pub fn relation_names(&self) -> Vec<String> {
        let state = self.lock_state();
        let mut names: Vec<String> = state.catalog.relations.keys().cloned().collect();
        for name in state.overrides.keys() {
            if !state.catalog.relations.contains_key(name) {
                names.push(name.clone());
            }
        }
        names.sort();
        names
    }

    /// Materializes one relation: the WAL-replayed version if the log replaced
    /// it, otherwise the image extent read through the buffer pool and
    /// checksum-verified.
    pub fn load_relation(&self, name: &str) -> Result<Relation, StoreError> {
        let state = self.lock_state();
        if let Some(r) = state.overrides.get(name) {
            return Ok(r.clone());
        }
        load_image_relation(&state.pool, &state.catalog, name)?
            .ok_or_else(|| StoreError::MissingRelation(name.to_string()))
    }

    /// Materializes the graph, if one was persisted or committed.
    pub fn load_graph(&self) -> Result<Option<Graph>, StoreError> {
        let state = self.lock_state();
        if let Some(g) = &state.graph_override {
            return Ok(Some(g.clone()));
        }
        let Some(entry) = state.catalog.graph.clone() else { return Ok(None) };
        let total = entry.num_edges * 8;
        let bytes = read_extent(&state.pool, entry.first_page, total, entry.crc, "graph")?;
        let edges: Vec<(u32, u32)> = bytes
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                )
            })
            .collect();
        Ok(Some(Graph::new(entry.num_nodes as usize, edges)))
    }

    /// Durably records `add_relation(name, relation)`: WAL append first, then
    /// the in-memory apply. On any error (including an injected fault) nothing
    /// is applied.
    pub fn log_add_relation(&self, name: &str, relation: &Relation) -> Result<(), StoreError> {
        let mut state = self.lock_state();
        state.wal.append(&WalRecord::add_relation(name, relation))?;
        state.overrides.insert(name.to_string(), relation.clone());
        Ok(())
    }

    /// Durably records `add_graph(graph)`. Mirrors `Database::add_graph`
    /// semantics: the derived `"edge"` relation is replaced along with the
    /// graph, so replay order reproduces the in-memory state exactly.
    pub fn log_add_graph(&self, graph: &Graph) -> Result<(), StoreError> {
        let mut state = self.lock_state();
        state.wal.append(&WalRecord::add_graph(graph))?;
        state.overrides.insert("edge".to_string(), graph.edge_relation());
        state.graph_override = Some(graph.clone());
        Ok(())
    }

    /// Durably records an incremental edit batch on `name`: WAL append first
    /// (an [`WalRecord::Edit`] record sized by the delta, not the relation),
    /// then the in-memory apply via [`Relation::with_edits`]. The relation must
    /// already exist in the store (override or image); on any error nothing is
    /// applied.
    pub fn log_edit(&self, name: &str, ins: &Relation, del: &Relation) -> Result<(), StoreError> {
        let mut state = self.lock_state();
        // Resolve the base before appending, so an unknown relation (or an
        // unreadable extent) fails the commit without dirtying the log.
        let base = match state.overrides.get(name) {
            Some(r) => r.clone(),
            None => load_image_relation(&state.pool, &state.catalog, name)?
                .ok_or_else(|| StoreError::MissingRelation(name.to_string()))?,
        };
        state.wal.append(&WalRecord::edit(name, ins, del))?;
        state.overrides.insert(name.to_string(), base.with_edits(ins, del));
        Ok(())
    }

    /// Writes a fresh checkpoint image containing exactly `relations` and
    /// `graph`, commits it by atomic rename, then truncates the WAL. See the
    /// module docs for the crash-safety argument.
    pub fn checkpoint<'a>(
        &self,
        relations: &[(&'a str, &'a Relation)],
        graph: Option<&Graph>,
    ) -> Result<(), StoreError> {
        let mut state = self.lock_state();
        write_image(&self.dir, self.failpoints.clone(), relations, graph)?;
        // The rename committed: rebuild the read side over the new image.
        let pager = Pager::open(&self.dir.join("data.gj"), self.failpoints.clone())?;
        let pool = BufferPool::new(pager, OPEN_POOL_FRAMES);
        let catalog = read_catalog(&pool)?;
        state.pool = pool;
        state.catalog = catalog;
        state.overrides.clear();
        state.graph_override = None;
        state.wal.truncate()
    }

    /// Buffer-pool traffic counters for the current image's read pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.lock_state().pool.stats()
    }
}

/// Applies one redo record to the in-memory override maps (recovery replay and
/// the post-append apply share these exact semantics). Edit records need the
/// image behind them: their base is the relation's current state, loaded from
/// `pool`/`catalog` when no earlier record replaced it.
fn apply_record(
    record: WalRecord,
    overrides: &mut BTreeMap<String, Relation>,
    graph_override: &mut Option<Graph>,
    pool: &BufferPool,
    catalog: &Catalog,
) -> Result<(), StoreError> {
    match record {
        WalRecord::AddRelation { name, arity, values } => {
            overrides.insert(name, Relation::from_flat(arity as usize, values));
        }
        WalRecord::AddGraph { num_nodes, edges } => {
            let graph = Graph::new(num_nodes as usize, edges);
            overrides.insert("edge".to_string(), graph.edge_relation());
            *graph_override = Some(graph);
        }
        WalRecord::Edit { name, arity, ins, del } => {
            let base = match overrides.get(&name) {
                Some(r) => r.clone(),
                None => load_image_relation(pool, catalog, &name)?.ok_or_else(|| {
                    StoreError::Corrupt(format!("wal edit record for unknown relation '{name}'"))
                })?,
            };
            let ins = Relation::from_flat(arity as usize, ins);
            let del = Relation::from_flat(arity as usize, del);
            overrides.insert(name, base.with_edits(&ins, &del));
        }
    }
    Ok(())
}

/// Materializes one relation from the checkpoint image (checksum-verified), or
/// `None` when the catalog does not list it.
fn load_image_relation(
    pool: &BufferPool,
    catalog: &Catalog,
    name: &str,
) -> Result<Option<Relation>, StoreError> {
    let Some(entry) = catalog.relations.get(name).cloned() else { return Ok(None) };
    let total = entry.rows * entry.arity as u64 * 8;
    let bytes = read_extent(pool, entry.first_page, total, entry.crc, "relation")?;
    let values: Vec<Val> = bytes
        .chunks_exact(8)
        .map(|c| Val::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Ok(Some(Relation::from_flat(entry.arity as usize, values)))
}

/// Reads `total` bytes starting at `first_page` through the pool and verifies
/// the extent checksum.
fn read_extent(
    pool: &BufferPool,
    first_page: u32,
    total: u64,
    crc: u32,
    what: &'static str,
) -> Result<Vec<u8>, StoreError> {
    let mut bytes = Vec::with_capacity(total as usize);
    let mut remaining = total as usize;
    let mut page = first_page;
    while remaining > 0 {
        let guard = pool.fetch(page)?;
        let take = remaining.min(PAGE_SIZE);
        bytes.extend_from_slice(&guard[..take]);
        remaining -= take;
        page += 1;
    }
    if fnv1a32(&bytes) != crc {
        return Err(StoreError::Corrupt(format!("{what} extent checksum mismatch")));
    }
    Ok(bytes)
}

/// Serializes the catalog. Byte length is independent of the page-number
/// fields (fixed-width), which `write_image` relies on to lay out extents.
fn encode_catalog(catalog: &Catalog) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(catalog.relations.len() as u32);
    for (name, e) in &catalog.relations {
        w.put_str(name);
        w.put_u32(e.arity);
        w.put_u64(e.rows);
        w.put_u32(e.first_page);
        w.put_u32(e.crc);
    }
    match &catalog.graph {
        None => w.put_u8(0),
        Some(g) => {
            w.put_u8(1);
            w.put_u64(g.num_nodes);
            w.put_u64(g.num_edges);
            w.put_u32(g.first_page);
            w.put_u32(g.crc);
        }
    }
    w.into_bytes()
}

fn decode_catalog(bytes: &[u8]) -> Result<Catalog, StoreError> {
    let mut r = ByteReader::new(bytes, "catalog");
    let mut catalog = Catalog::default();
    let count = r.get_u32()?;
    for _ in 0..count {
        let name = r.get_str()?;
        let entry = RelationEntry {
            arity: r.get_u32()?,
            rows: r.get_u64()?,
            first_page: r.get_u32()?,
            crc: r.get_u32()?,
        };
        if entry.arity == 0 {
            return Err(StoreError::Corrupt(format!("catalog: relation '{name}' has arity 0")));
        }
        catalog.relations.insert(name, entry);
    }
    if r.get_u8()? == 1 {
        catalog.graph = Some(GraphEntry {
            num_nodes: r.get_u64()?,
            num_edges: r.get_u64()?,
            first_page: r.get_u32()?,
            crc: r.get_u32()?,
        });
    }
    Ok(catalog)
}

/// Reads and validates the header + catalog of an image through `pool`.
fn read_catalog(pool: &BufferPool) -> Result<Catalog, StoreError> {
    let header = pool.fetch(0)?;
    let mut r = ByteReader::new(&header[..], "header");
    let mut magic = [0u8; 8];
    for b in &mut magic {
        *b = r.get_u8()?;
    }
    if magic != MAGIC {
        return Err(StoreError::Corrupt("bad magic (not a gj-store data file)".to_string()));
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(StoreError::Corrupt(format!("unsupported store version {version}")));
    }
    let page_size = r.get_u32()?;
    if page_size as usize != PAGE_SIZE {
        return Err(StoreError::Corrupt(format!(
            "page size mismatch (file {page_size}, build {PAGE_SIZE})"
        )));
    }
    let catalog_len = r.get_u64()? as usize;
    let catalog_crc = r.get_u32()?;
    drop(header);

    let mut bytes = Vec::with_capacity(catalog_len);
    let mut page = 1u32;
    while bytes.len() < catalog_len {
        let guard = pool.fetch(page)?;
        let take = (catalog_len - bytes.len()).min(PAGE_SIZE);
        bytes.extend_from_slice(&guard[..take]);
        page += 1;
    }
    if fnv1a32(&bytes) != catalog_crc {
        return Err(StoreError::Corrupt("catalog checksum mismatch".to_string()));
    }
    decode_catalog(&bytes)
}

/// Writes a complete image for `relations` + `graph` to `<dir>/data.gj.tmp`
/// and atomically renames it over `<dir>/data.gj`. Every page write passes the
/// `page_flush` failpoint (via the pager), so a simulated crash can land on any
/// individual page; until the rename, the old image is untouched.
fn write_image(
    dir: &Path,
    failpoints: Option<Arc<FailpointRegistry>>,
    relations: &[(&str, &Relation)],
    graph: Option<&Graph>,
) -> Result<(), StoreError> {
    // Serialize extents and build a catalog with placeholder page numbers; the
    // catalog's byte length does not depend on those numbers.
    let mut extents: Vec<Vec<u8>> = Vec::new();
    let mut catalog = Catalog::default();
    for (name, relation) in relations {
        let mut bytes = Vec::with_capacity(relation.flat_values().len() * 8);
        for &v in relation.flat_values() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        catalog.relations.insert(
            name.to_string(),
            RelationEntry {
                arity: relation.arity() as u32,
                rows: relation.len() as u64,
                first_page: 0,
                crc: fnv1a32(&bytes),
            },
        );
        extents.push(bytes);
    }
    let graph_bytes = graph.map(|g| {
        let mut bytes = Vec::with_capacity(g.edges().len() * 8);
        for &(a, b) in g.edges() {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        catalog.graph = Some(GraphEntry {
            num_nodes: g.num_nodes() as u64,
            num_edges: g.edges().len() as u64,
            first_page: 0,
            crc: fnv1a32(&bytes),
        });
        bytes
    });

    let catalog_pages = encode_catalog(&catalog).len().div_ceil(PAGE_SIZE).max(1) as u32;
    let mut next_page = 1 + catalog_pages;
    // BTreeMap iteration matches the `relations` insertion scan only if names
    // are unique; assign pages by re-walking the same sorted order.
    let sorted_names: Vec<String> = catalog.relations.keys().cloned().collect();
    let extent_of: BTreeMap<&str, &Vec<u8>> =
        relations.iter().zip(&extents).map(|((n, _), b)| (*n, b)).collect();
    for name in &sorted_names {
        let bytes_len = extent_of.get(name.as_str()).map_or(0, |b| b.len());
        if let Some(entry) = catalog.relations.get_mut(name) {
            entry.first_page = next_page;
            next_page += bytes_len.div_ceil(PAGE_SIZE) as u32;
        }
    }
    if let Some(entry) = &mut catalog.graph {
        entry.first_page = next_page;
    }

    let catalog_bytes = encode_catalog(&catalog);
    let tmp = dir.join("data.gj.tmp");
    let pool = BufferPool::new(Pager::create(&tmp, failpoints)?, CHECKPOINT_POOL_FRAMES);
    for name in &sorted_names {
        let Some(entry) = catalog.relations.get(name.as_str()) else { continue };
        let Some(bytes) = extent_of.get(name.as_str()) else { continue };
        for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
            pool.write_page(entry.first_page + i as u32, chunk)?;
        }
    }
    if let (Some(entry), Some(bytes)) = (&catalog.graph, &graph_bytes) {
        for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
            pool.write_page(entry.first_page + i as u32, chunk)?;
        }
    }
    for (i, chunk) in catalog_bytes.chunks(PAGE_SIZE).enumerate() {
        pool.write_page(1 + i as u32, chunk)?;
    }
    let mut header = ByteWriter::new();
    header.put_bytes(&MAGIC);
    header.put_u32(VERSION);
    header.put_u32(PAGE_SIZE as u32);
    header.put_u64(catalog_bytes.len() as u64);
    header.put_u32(fnv1a32(&catalog_bytes));
    pool.write_page(0, &header.into_bytes())?;
    pool.flush_all()?;
    drop(pool);
    std::fs::rename(&tmp, dir.join("data.gj")).map_err(|e| StoreError::io("commit image", e))
}
