//! Offline stand-in for the subset of the `proptest` crate this workspace uses.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors this shim under the `proptest` package name. It supports exactly the
//! surface the property tests call:
//!
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`,
//! * [`Strategy`] with [`Strategy::prop_map`] for integer ranges, tuples of
//!   strategies, and [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is no shrinking and no persisted failure corpus:
//! each test runs a fixed number of deterministic cases seeded from the test
//! name, so failures reproduce exactly across runs and machines.

use std::ops::Range;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes), so every
    /// test gets a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator. The real crate's strategies also know how to shrink;
/// this shim only generates.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A size specification for [`collection::vec`]: an exact length or a half-open
/// range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "size range must be non-empty");
        SizeRange { lo: r.start, hi: r.end }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The names the real crate exposes through `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each function body runs once per generated case; `prop_assert*` failures
/// report the case number and panic (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest case {}/{} of {} failed: {}",
                            __case + 1,
                            __cfg.cases,
                            stringify!($name),
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)*)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            n in 1usize..10,
            xs in prop::collection::vec(0i64..20, 0..30),
            pair in (0u32..5, 0u32..5),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 30);
            for &x in &xs {
                prop_assert!((0..20).contains(&x), "out of range: {}", x);
            }
            prop_assert!(pair.0 < 5 && pair.1 < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honoured(x in 0u64..1000) {
            // Runs without panicking; the case count is checked indirectly by
            // the deterministic stream below.
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(v in (0i64..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!((0..20).contains(&v));
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = TestRng::deterministic("a");
        let mut b = TestRng::deterministic("a");
        let mut c = TestRng::deterministic("b");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
