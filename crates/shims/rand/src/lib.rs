//! Offline stand-in for the tiny subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors this shim under the `rand` package name. It implements exactly the API
//! surface the seed code calls — `StdRng::seed_from_u64`, `Rng::gen_range` over
//! half-open integer ranges, and `Rng::gen_bool` — with a deterministic
//! xoshiro256++ generator seeded through SplitMix64 (the same construction the
//! real `rand` documents for seeding). Streams are NOT bit-compatible with the
//! real crate, but every consumer in this workspace only relies on determinism
//! per seed, which this shim guarantees.

use std::ops::Range;

/// Seeding interface: the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface: uniform integers in a half-open range and
/// Bernoulli draws.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open, `start < end` required).
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p`. `p` must lie in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]: {p}");
        // 53 uniform mantissa bits give a float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait UniformInt: Copy {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased-enough bounded sample via Lemire's multiply-shift. The spans used in
/// this workspace are tiny relative to 2^64, so the modulo bias of the plain
/// multiply-shift is far below anything the statistical tests can see.
fn below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range needs a non-empty range");
                let span = (range.end - range.start) as u64;
                range.start + below(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range needs a non-empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator, the shim's stand-in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}
