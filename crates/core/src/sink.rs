//! The unified execution sink protocol — re-exported from [`gj_runtime::sink`].
//!
//! The [`Sink`] trait and its concrete implementations moved into `gj-runtime` so
//! the morsel-driven parallel driver and the engines can share them without
//! depending on this crate; the public API here is unchanged. Every sink also
//! implements [`ParallelSink`](crate::ParallelSink), so the same value can be
//! passed to [`PreparedQuery::run`](crate::PreparedQuery::run) or
//! [`PreparedQuery::run_parallel`](crate::PreparedQuery::run_parallel).
//!
//! ```
//! use graphjoin::{CatalogQuery, Database, Engine, FirstK, Graph};
//!
//! let graph = Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
//! let mut db = Database::new();
//! db.add_graph(graph);
//!
//! let prepared = db.prepare(&CatalogQuery::ThreeClique.query(), &Engine::Lftj).unwrap();
//! let mut first = FirstK::new(1);
//! prepared.run(&mut first).unwrap();
//! assert_eq!(first.into_rows(), vec![vec![0, 1, 2]]);
//! ```

pub use gj_runtime::sink::{CollectSink, CountSink, ExistsSink, FirstK, Sink};
