//! Disk persistence for [`Database`]: open, persist, durable commits,
//! checkpoints.
//!
//! The division of labour with `gj-store`: the store knows pages, extents, the
//! WAL and recovery; this module knows the `Database` shape — which relations
//! exist, how the graph and its derived `"edge"` relation relate, and how to
//! install *lazy* catalog slots so that [`Database::open`] is cheap no matter
//! how large the image is. A relation's bytes are only read (through the
//! store's buffer pool, checksum-verified) the first time a query binds it.
//!
//! ## Failure surfacing
//!
//! Opening, persisting and committing return typed [`StoreError`]s. Lazy
//! hydration happens *inside* `prepare`, which already runs under a
//! `catch_unwind` boundary: if the store reports an error at hydration time
//! (bit rot caught by an extent checksum, a vanished file), the loader panics
//! with the rendered error and `prepare` surfaces it as
//! `EngineError::Exec(ExecError::WorkerPanicked)` — queries fail cleanly, the
//! database object stays usable.

use crate::database::{Database, EngineError};
use gj_query::RelationLoader;
use gj_storage::fault::FailpointRegistry;
use gj_storage::{Graph, Relation, Val};
use gj_store::{Store, StoreError};
use std::path::Path;
use std::sync::Arc;

impl Database {
    /// Opens the disk store at `path` and returns a database over it.
    ///
    /// Every persisted relation is installed as a lazy slot (hydrated through
    /// the store's buffer pool on first use); the graph, if persisted, is
    /// rebuilt eagerly (its CSR adjacency is needed by the graph engine and is
    /// cheap relative to relation extents). WAL recovery runs inside
    /// [`Store::open`]: committed-but-not-checkpointed mutations are replayed,
    /// a torn tail from a crash is discarded.
    ///
    /// ```no_run
    /// use graphjoin::{CatalogQuery, Database, Engine, Graph};
    ///
    /// let mut db = Database::new();
    /// db.add_graph(Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]));
    /// db.persist("/tmp/my-store")?;
    ///
    /// let reopened = Database::open("/tmp/my-store")?;
    /// let prepared = reopened.prepare(&CatalogQuery::ThreeClique.query(), &Engine::Lftj).unwrap();
    /// assert_eq!(prepared.count().unwrap(), 1);
    /// # Ok::<(), graphjoin::StoreError>(())
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Database, StoreError> {
        Self::open_with_failpoints(path, None)
    }

    /// [`open`](Self::open) with a fault-injection registry threaded into the
    /// store (arms `wal_append` / `page_flush` / `recovery_replay` sites).
    pub fn open_with_failpoints(
        path: impl AsRef<Path>,
        failpoints: Option<Arc<FailpointRegistry>>,
    ) -> Result<Database, StoreError> {
        let store = Arc::new(Store::open(path.as_ref(), failpoints)?);
        let mut db = Database::new();
        for name in store.relation_names() {
            db.instance_mut().add_lazy_relation(name.clone(), lazy_loader(&store, name));
        }
        if let Some(graph) = store.load_graph()? {
            db.set_graph_raw(Arc::new(graph));
        }
        db.set_store(store);
        Ok(db)
    }

    /// Writes a complete checkpoint image of this database to `path`
    /// (creating or replacing the store directory) with an empty WAL. The
    /// database itself is *not* attached to the new store; use
    /// [`Database::open`] to serve from it.
    ///
    /// Persisting hydrates every lazy slot (the image must contain full data).
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.persist_with_failpoints(path, None)
    }

    /// [`persist`](Self::persist) with a fault-injection registry threaded into
    /// the store (every page write passes the `page_flush` site).
    pub fn persist_with_failpoints(
        &self,
        path: impl AsRef<Path>,
        failpoints: Option<Arc<FailpointRegistry>>,
    ) -> Result<(), StoreError> {
        let store = Store::create(path.as_ref(), failpoints)?;
        checkpoint_into(self, &store)
    }

    /// Durably replaces relation `name`: the mutation is appended to the
    /// attached store's WAL *before* the in-memory apply, so a crash between
    /// the two replays it on the next open. Errors with
    /// [`StoreError::NotAttached`] when the database has no store.
    pub fn commit_relation(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
    ) -> Result<&mut Self, StoreError> {
        let name = name.into();
        let store = self.store().ok_or(StoreError::NotAttached)?;
        store.log_add_relation(&name, &relation)?;
        self.add_relation(name, relation);
        Ok(self)
    }

    /// Durably replaces the graph (and its derived `"edge"` relation), WAL
    /// first — the durable counterpart of [`Database::add_graph`].
    pub fn commit_graph(&mut self, graph: impl Into<Arc<Graph>>) -> Result<&mut Self, StoreError> {
        let graph = graph.into();
        let store = self.store().ok_or(StoreError::NotAttached)?;
        store.log_add_graph(&graph)?;
        self.add_graph(graph);
        Ok(self)
    }

    /// Durably applies one incremental edit batch to relation `name`, WAL
    /// first: the *effective* delta (inserts not already present, deletes that
    /// exist) is appended to the attached store's WAL as a delta-sized edit
    /// record, then applied in memory through the same incremental path as
    /// [`Database::edit_rows`] — cached trie indexes absorb the edit in their
    /// delta layers without a rebuild. A crash before the next checkpoint
    /// replays the edit against the image base on reopen.
    ///
    /// A batch that changes nothing returns `Ok(0)` without touching the WAL.
    /// Returns [`EngineError::Store`]\([`StoreError::NotAttached`]) when the
    /// database has no store, [`EngineError::Edit`] on a malformed batch (the
    /// WAL is untouched in both cases).
    ///
    /// [`EngineError::Store`]: crate::EngineError::Store
    /// [`EngineError::Edit`]: crate::EngineError::Edit
    pub fn commit_edits(
        &mut self,
        name: &str,
        ins: &[Vec<Val>],
        del: &[Vec<Val>],
    ) -> Result<usize, EngineError> {
        let (eff_ins, eff_del) = self.stage_edits(name, ins, del)?;
        if eff_ins.is_empty() && eff_del.is_empty() {
            return Ok(0);
        }
        let store = self.store().ok_or(StoreError::NotAttached)?;
        store.log_edit(name, &eff_ins, &eff_del)?;
        self.apply_effective_edits(name, &eff_ins, &eff_del)
    }

    /// Folds the WAL into a fresh checkpoint image of the attached store:
    /// hydrates everything, writes the new image, atomically renames it over
    /// the old one, truncates the WAL. Reopening afterwards replays nothing.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let store = self.store().ok_or(StoreError::NotAttached)?;
        checkpoint_into(self, store)
    }
}

/// A loader that reads `name` from `store` on first access. Store errors
/// surface as a panic with the rendered error, caught by the prepare path's
/// panic-isolation boundary (see the module docs).
fn lazy_loader(store: &Arc<Store>, name: String) -> RelationLoader {
    let store = Arc::clone(store);
    Arc::new(move || match store.load_relation(&name) {
        Ok(relation) => relation,
        Err(err) => panic!("lazy hydration of relation '{name}' failed: {err}"),
    })
}

/// Hydrates the database's full image and checkpoints it into `store`.
fn checkpoint_into(db: &Database, store: &Store) -> Result<(), StoreError> {
    let names: Vec<String> = db.instance().relation_names().map(str::to_string).collect();
    let mut image: Vec<(&str, &Relation)> = Vec::with_capacity(names.len());
    for name in &names {
        let relation = db
            .instance()
            .relation(name)
            .ok_or_else(|| StoreError::MissingRelation(name.clone()))?;
        image.push((name.as_str(), relation));
    }
    store.checkpoint(&image, db.graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Engine;
    use gj_query::CatalogQuery;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gj-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_db() -> Database {
        let graph = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut db = Database::new();
        db.add_graph(graph);
        db.add_relation("v1", Relation::from_values(vec![0, 1, 3]));
        db.add_relation("v2", Relation::from_values(vec![2, 3, 4]));
        db
    }

    #[test]
    fn persist_open_roundtrip_is_query_identical_and_lazy() {
        let dir = scratch("roundtrip");
        let db = sample_db();
        db.persist(&dir).unwrap();

        let reopened = Database::open(&dir).unwrap();
        assert!(!reopened.instance().is_resident("edge"), "open must not hydrate relation extents");
        let q = CatalogQuery::ThreeClique.query();
        assert_eq!(
            reopened.count(&q, &Engine::Lftj).unwrap(),
            db.count(&q, &Engine::Lftj).unwrap()
        );
        assert!(reopened.instance().is_resident("edge"), "first query hydrates");
        // The graph engine sees the persisted graph too.
        assert_eq!(
            reopened.count(&q, &Engine::GraphEngine).unwrap(),
            db.count(&q, &Engine::GraphEngine).unwrap()
        );
        assert_eq!(reopened.instance().total_tuples(), db.instance().total_tuples());
    }

    #[test]
    fn commits_survive_reopen_without_checkpoint() {
        let dir = scratch("commits");
        sample_db().persist(&dir).unwrap();
        let mut db = Database::open(&dir).unwrap();
        db.commit_relation("v1", Relation::from_values(vec![7, 8, 9])).unwrap();
        let g2 = Graph::new_undirected(3, vec![(0, 1), (1, 2), (0, 2)]);
        db.commit_graph(g2).unwrap();
        drop(db);

        let reopened = Database::open(&dir).unwrap();
        assert_eq!(
            reopened.instance().relation("v1").unwrap().flat_values(),
            &[7, 8, 9],
            "committed relation replayed from the WAL"
        );
        let q = CatalogQuery::ThreeClique.query();
        assert_eq!(reopened.count(&q, &Engine::Lftj).unwrap(), 1, "committed graph replayed");
    }

    #[test]
    fn checkpoint_folds_the_wal_and_preserves_state() {
        let dir = scratch("checkpoint");
        sample_db().persist(&dir).unwrap();
        let mut db = Database::open(&dir).unwrap();
        db.commit_relation("v9", Relation::from_values(vec![4, 2])).unwrap();
        db.checkpoint().unwrap();
        assert_eq!(
            std::fs::metadata(dir.join("wal.gj")).unwrap().len(),
            0,
            "checkpoint truncates the WAL"
        );
        drop(db);
        let reopened = Database::open(&dir).unwrap();
        // Relations canonicalize (sort) on construction: [4, 2] stores as [2, 4].
        assert_eq!(reopened.instance().relation("v9").unwrap().flat_values(), &[2, 4]);
    }

    #[test]
    fn committed_edits_replay_incrementally_from_the_wal() {
        let dir = scratch("edit-commits");
        sample_db().persist(&dir).unwrap();
        let mut db = Database::open(&dir).unwrap();
        // v1 starts as [0, 1, 3]; the edit inserts 5 and deletes 0.
        let changed = db.commit_edits("v1", &[vec![5]], &[vec![0]]).unwrap();
        assert_eq!(changed, 2);
        assert_eq!(db.instance().relation("v1").unwrap().flat_values(), &[1, 3, 5]);
        // A no-op batch (5 already present, 9 absent) leaves the WAL alone.
        let wal_len = std::fs::metadata(dir.join("wal.gj")).unwrap().len();
        assert!(wal_len > 0, "effective edit appended a WAL record");
        assert_eq!(db.commit_edits("v1", &[vec![5]], &[vec![9]]).unwrap(), 0);
        assert_eq!(std::fs::metadata(dir.join("wal.gj")).unwrap().len(), wal_len);
        // Malformed batches fail before the WAL too.
        let err = db.commit_edits("v1", &[vec![1, 2]], &[]).unwrap_err();
        assert!(matches!(err, EngineError::Edit(_)));
        assert_eq!(std::fs::metadata(dir.join("wal.gj")).unwrap().len(), wal_len);
        drop(db);

        let reopened = Database::open(&dir).unwrap();
        assert_eq!(
            reopened.instance().relation("v1").unwrap().flat_values(),
            &[1, 3, 5],
            "edit record replayed against the image base"
        );
    }

    #[test]
    fn commit_without_a_store_is_a_typed_error() {
        let mut db = sample_db();
        let err = db.commit_relation("x", Relation::from_values(vec![1])).unwrap_err();
        assert_eq!(err, StoreError::NotAttached);
        assert_eq!(db.checkpoint().unwrap_err(), StoreError::NotAttached);
        assert_eq!(
            db.commit_edits("v1", &[vec![9]], &[]).unwrap_err(),
            EngineError::Store(StoreError::NotAttached)
        );
    }

    #[test]
    fn memory_only_mutations_on_an_attached_db_are_not_durable() {
        let dir = scratch("volatile");
        sample_db().persist(&dir).unwrap();
        let mut db = Database::open(&dir).unwrap();
        db.add_relation("scratchpad", Relation::from_values(vec![1, 2]));
        assert!(db.instance().relation("scratchpad").is_some());
        drop(db);
        let reopened = Database::open(&dir).unwrap();
        assert!(
            reopened.instance().relation("scratchpad").is_none(),
            "plain add_relation is memory-only; use commit_relation for durability"
        );
    }

    #[test]
    fn hydration_failure_is_a_typed_exec_error_not_an_unwind() {
        let dir = scratch("hydration-fail");
        sample_db().persist(&dir).unwrap();
        let reopened = Database::open(&dir).unwrap();
        // Destroy the data file after open: the catalog is read, but extents
        // now hit bad bytes at first hydration.
        let data = dir.join("data.gj");
        let len = std::fs::metadata(&data).unwrap().len();
        let bytes = vec![0u8; len as usize];
        std::fs::write(&data, bytes).unwrap();
        // NOTE: the open store's pager holds the *old* inode on unix only if
        // the file were renamed; overwriting in place changes what reads see.
        let q = CatalogQuery::ThreeClique.query();
        let err = reopened.prepare(&q, &Engine::Lftj).unwrap_err();
        match err {
            crate::database::EngineError::Exec(e) => {
                assert_eq!(e.kind(), "panic", "hydration failure surfaces as a caught panic");
            }
            other => panic!("expected Exec error, got {other:?}"),
        }
    }
}
