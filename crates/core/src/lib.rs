//! # graphjoin
//!
//! A graph-pattern join engine with worst-case optimal and beyond-worst-case join
//! algorithms behind one API — the Rust reproduction of *"Join Processing for Graph
//! Patterns: An Old Dog with New Tricks"*.
//!
//! The library evaluates natural join queries (graph patterns) over in-memory
//! relations with a choice of engines:
//!
//! * [`Engine::Lftj`] — LeapFrog TrieJoin, worst-case optimal (`gj-lftj`);
//! * [`Engine::Minesweeper`] — the beyond-worst-case Minesweeper algorithm with the
//!   paper's Ideas 1–8 (`gj-minesweeper`);
//! * [`Engine::Hybrid`] — Minesweeper on the path part and LFTJ on the clique part of
//!   a lollipop-style query (Section 4.12);
//! * [`Engine::HashJoin`] / [`Engine::SortMergeJoin`] — Selinger-style pairwise
//!   baselines standing in for PostgreSQL / MonetDB (`gj-baselines`);
//! * [`Engine::GraphEngine`] — a hand-specialised clique counter standing in for
//!   GraphLab (`gj-baselines`).
//!
//! # Quick start
//!
//! ```
//! use graphjoin::{CatalogQuery, Database, Engine};
//! use gj_storage::Graph;
//!
//! // Two triangles sharing the edge (1, 2).
//! let graph = Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
//! let mut db = Database::new();
//! db.add_graph(&graph);
//!
//! let triangles = db.count(&CatalogQuery::ThreeClique.query(), &Engine::Lftj).unwrap();
//! assert_eq!(triangles, 2);
//! let again = db.count(&CatalogQuery::ThreeClique.query(), &Engine::minesweeper()).unwrap();
//! assert_eq!(again, 2);
//! ```

pub mod database;
pub mod workload;

pub use database::{Database, Engine, EngineError, QueryOutput};
pub use workload::{workload_database, Workload};

// Re-export the pieces users of the façade routinely need.
pub use gj_baselines::{ExecLimits, JoinAlgo};
pub use gj_datagen::{Dataset, DatasetSpec};
pub use gj_minesweeper::MsConfig;
pub use gj_query::{
    agm_bound, BoundQuery, CatalogQuery, Hypergraph, Instance, Query, QueryBuilder, VarId,
};
pub use gj_storage::{Graph, Relation, TrieIndex, Val};
