//! # graphjoin
//!
//! A graph-pattern join engine with worst-case optimal and beyond-worst-case join
//! algorithms behind one API — the Rust reproduction of *"Join Processing for Graph
//! Patterns: An Old Dog with New Tricks"*.
//!
//! The library evaluates natural join queries (graph patterns) over in-memory
//! relations with a choice of engines:
//!
//! * [`Engine::Lftj`] — LeapFrog TrieJoin, worst-case optimal (`gj-lftj`);
//! * [`Engine::Minesweeper`] — the beyond-worst-case Minesweeper algorithm with the
//!   paper's Ideas 1–8 (`gj-minesweeper`);
//! * [`Engine::Hybrid`] — Minesweeper on the path part and LFTJ on the clique part of
//!   a lollipop-style query (Section 4.12);
//! * [`Engine::HashJoin`] / [`Engine::SortMergeJoin`] — Selinger-style pairwise
//!   baselines standing in for PostgreSQL / MonetDB (`gj-baselines`);
//! * [`Engine::GraphEngine`] — a hand-specialised clique counter standing in for
//!   GraphLab (`gj-baselines`).
//!
//! The repository-level `ARCHITECTURE.md` maps the whole workspace (crate
//! dependency graph, the prepare/execute split, the `Sink` protocol, the
//! parallel ordering guarantee, per-engine feature matrix); `README.md` has the
//! quickstart and benchmark instructions.
//!
//! # Quick start
//!
//! The primary API is the prepare/execute split: [`Database::prepare`] pays for
//! binding, GAO selection and trie-index construction once (against a shared,
//! database-level index cache), and the returned [`PreparedQuery`] executes any
//! number of times through the unified [`Sink`] protocol.
//!
//! ```
//! use graphjoin::{CatalogQuery, Database, Engine};
//! use gj_storage::Graph;
//!
//! // Two triangles sharing the edge (1, 2).
//! let graph = Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
//! let mut db = Database::new();
//! db.add_graph(graph);
//!
//! let q = CatalogQuery::ThreeClique.query();
//! // Prepare once: indexes are built now and cached at the database level ...
//! let prepared = db.prepare(&q, &Engine::Lftj).unwrap();
//! // ... then execute as often as needed — serially or on a worker pool (the
//! // morsel-driven runtime partitions the first GAO attribute across threads).
//! assert_eq!(prepared.count().unwrap(), 2);
//! assert_eq!(prepared.par_count(4).unwrap(), 2);
//! assert_eq!(prepared.first_k(1).unwrap(), vec![vec![0, 1, 2]]);
//! assert_eq!(prepared.par_collect(4).unwrap(), prepared.collect().unwrap());
//! assert!(prepared.exists().unwrap());
//!
//! // A second preparation — here with another engine — reuses the cached indexes.
//! let warm = db.prepare(&q, &Engine::minesweeper()).unwrap();
//! assert_eq!(warm.indexes_built(), 0);
//! assert_eq!(warm.count().unwrap(), 2);
//!
//! // One-shot shims remain for convenience.
//! assert_eq!(db.count(&q, &Engine::Lftj).unwrap(), 2);
//! ```

/// The [`Database`] façade: load relations, pick an [`Engine`], run queries.
pub mod database;
/// Disk persistence: [`Database::open`], [`Database::persist`], durable commits.
pub mod persist;
/// Prepared queries: bind once, run many, inspect [`RunStats`]/[`RunOutcome`].
pub mod prepare;
/// Result sinks: collect, count, existence probe, first-k.
pub mod sink;
/// The paper's workload: canned queries and the generator-backed instances.
pub mod workload;

pub use database::{Database, Engine, EngineError, QueryOutput};
pub use prepare::{PreparedQuery, RunOutcome, RunStats};
pub use sink::{CollectSink, CountSink, ExistsSink, FirstK, Sink};
pub use workload::{workload_database, Workload};

// The morsel-driven parallel runtime (`gj-runtime`): the sink shard layer for
// `PreparedQuery::run_parallel`, the building blocks for custom drivers, and the
// error-model types (typed aborts, cancellation, budgets) of the `try_*` API.
pub use gj_runtime::{
    drive, partition_first_attribute, try_drive, CancelToken, DriveReport, ExecCtx, ExecError,
    ExecMonitor, ExecWatch, JobQueue, Morsel, MorselSource, Ordered, ParallelSink, QueryBudget,
    ShardSink, CHECK_STRIDE,
};

// Re-export the pieces users of the façade routinely need.
pub use gj_baselines::{ExecLimits, JoinAlgo};
pub use gj_datagen::{Dataset, DatasetSpec};
pub use gj_minesweeper::MsConfig;
pub use gj_query::{
    agm_bound, naive_count, naive_join, BoundQuery, CatalogQuery, Hypergraph, IndexCache, Instance,
    LdbcQuery, Query, QueryBuilder, VarId,
};
// The fault-injection harness (`gj-storage::fault`): named failpoint sites the
// tests arm through `QueryBudget::with_failpoints` / `IndexCache::set_failpoints`.
pub use gj_storage::{fault, FailAction, FailpointHit, FailpointRegistry};
pub use gj_storage::{Graph, Relation, TrieIndex, Val};
// The paged disk store (`gj-store`) behind `Database::open` / `persist`:
// buffer-pool statistics and the typed store error surface.
pub use gj_store::{PoolStats, Store, StoreError, PAGE_SIZE};
