//! Prepared queries: the prepare/execute split.
//!
//! [`Database::prepare`] does everything that can be amortised — query validation,
//! GAO selection, sub-query splitting, and trie-index construction against the
//! database's shared [`IndexCache`](gj_query::IndexCache) — once, and hands back a
//! [`PreparedQuery`] that can be executed any number of times. This mirrors the
//! setting of the paper's experiments (data and query fixed, algorithms swapped) and
//! the classic prepared-statement runtime of the LogicBlox system the paper
//! benchmarks: under repeated traffic, index builds amortise across millions of
//! executions instead of being paid per call.
//!
//! Executions go through the unified [`Sink`] protocol ([`PreparedQuery::run`]),
//! which gives every supporting engine [`count`](PreparedQuery::count),
//! [`collect`](PreparedQuery::collect), [`first_k`](PreparedQuery::first_k) and
//! [`exists`](PreparedQuery::exists) for free, and every execution reports one
//! cross-engine [`RunStats`].
//!
//! # Warm-cache reuse
//!
//! ```
//! use graphjoin::{CatalogQuery, Database, Engine, Graph};
//!
//! let graph = Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
//! let mut db = Database::new();
//! db.add_graph(graph);
//! let q = CatalogQuery::ThreeClique.query();
//!
//! // First preparation builds the trie indexes ...
//! let cold = db.prepare(&q, &Engine::Lftj).unwrap();
//! assert!(cold.indexes_built() > 0);
//! // ... and every execution of it reuses them.
//! for _ in 0..3 {
//!     assert_eq!(cold.count().unwrap(), 2);
//! }
//! // Preparing again — even for a different engine — hits the shared cache.
//! let warm = db.prepare(&q, &Engine::minesweeper()).unwrap();
//! assert_eq!(warm.indexes_built(), 0);
//! assert_eq!(warm.count().unwrap(), 2);
//! ```

use crate::database::{same_shape, Database, Engine, EngineError, QueryOutput};
use crate::sink::{CollectSink, CountSink, ExistsSink, FirstK, Sink};
use gj_baselines::{BaselineError, GraphEngine, JoinAlgo, PairwiseMorsels, PairwisePlan};
use gj_lftj::{LftjExecutor, LftjMorsels};
use gj_minesweeper::{HybridPlan, MinesweeperExecutor, MsConfig, MsMorsels};
use gj_query::{BindReport, BoundQuery, CatalogQuery, Query, VarId};
use gj_runtime::{
    panic_payload, partition_first_attribute, try_drive, DriveReport, ExecCtx, ExecError,
    ExecMonitor, ParallelSink, QueryBudget, ShardSink,
};
use gj_storage::Val;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Morsels per thread for parallel LFTJ (Minesweeper takes the factor from
/// [`MsConfig::granularity`]). The paper's Table 5 uses `f = 8` for cyclic queries;
/// over-splitting also lets the job pool work-steal around skewed partitions.
const LFTJ_GRANULARITY: usize = 8;

/// Morsels per thread for the parallel pairwise baselines. Each morsel re-runs the
/// whole left-deep chain on a base slice, so the per-morsel overhead (a key sort of
/// the restricted left side per merge join) is higher than the trie engines' —
/// a moderate over-split still lets the pool work-steal around skew.
const PAIRWISE_GRANULARITY: usize = 4;

/// Cross-engine execution statistics: one shape for every engine, replacing the
/// per-engine stats types at the API boundary. Engine-specific counters (probe
/// counts, CDS sizes, materialised rows, …) are reported as named `extras`.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// One-time preparation cost of the [`PreparedQuery`] that produced this
    /// execution: validation, GAO selection and trie-index construction. Amortised
    /// across executions — near zero when the index cache was warm.
    pub prepare: Duration,
    /// Per-execution setup before the main loop (executor and iterator
    /// construction).
    pub bind: Duration,
    /// The execution main loop.
    pub run: Duration,
    /// Number of output rows delivered (to the sink, or counted).
    pub rows: u64,
    /// Worker threads used (index builds during prepare, or parallel execution).
    pub threads: usize,
    /// Morsels the output space was partitioned into (0 for serial executions).
    pub morsels: usize,
    /// Trie indexes built during prepare (0 when the shared cache was warm).
    pub indexes_built: usize,
    /// Engine-specific counters, e.g. `("probes", …)` for Minesweeper or
    /// `("peak_intermediate", …)` for the pairwise baselines.
    pub extras: Vec<(&'static str, u64)>,
    /// How the execution ended: ran to completion, or aborted early with a typed
    /// reason. Always [`RunOutcome::Completed`] for the infallible API (which has
    /// no budget to trip); the `try_*` executions and
    /// [`count_outcome`](PreparedQuery::count_outcome) report aborts here.
    pub outcome: RunOutcome,
}

impl RunStats {
    /// Looks up an engine-specific counter by name.
    pub fn extra(&self, name: &str) -> Option<u64> {
        self.extras.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

/// How an execution ended — the [`RunStats`] field benchmark harnesses consume to
/// record timeout/abort cells without losing the rest of the statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum RunOutcome {
    /// The run delivered its complete answer.
    #[default]
    Completed,
    /// The run was aborted early but cleanly.
    Aborted {
        /// The typed abort reason.
        reason: ExecError,
        /// The fault-injection site that fired during the run, when a
        /// [`FailpointRegistry`](gj_storage::FailpointRegistry) was attached to the
        /// budget (fault-injection harness only; `None` in production).
        failpoint: Option<String>,
    },
}

impl RunOutcome {
    /// Whether the run delivered its complete answer.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Short machine-readable label for benchmark cells: `"completed"`, or the
    /// abort reason's [`kind`](ExecError::kind) (`"budget"`, `"deadline"`,
    /// `"cancelled"`, `"panic"`).
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Aborted { reason, .. } => reason.kind(),
        }
    }
}

/// Which specialised graph-engine program a prepared query maps to.
#[derive(Debug, Clone, Copy)]
enum GraphOp {
    Triangles,
    FourCliques,
}

/// The engine-specific half of a prepared query.
#[derive(Debug, Clone)]
enum Plan {
    /// LFTJ / Minesweeper: a bound query (GAO + cache-shared trie indexes).
    Bound(BoundQuery),
    /// The hybrid: both sub-queries bound.
    Hybrid(HybridPlan),
    /// Pairwise baselines: the prepared left-deep plan — join order chosen, every
    /// atom's rows copied into columnar intermediates, right-side probe structures
    /// (hash tables / sort permutations) prebuilt and shared by every execution.
    Pairwise(Box<PairwisePlan>),
    /// The specialised graph engine: CSR adjacency loaded.
    Graph { engine: Box<GraphEngine>, op: GraphOp },
}

/// A query prepared against a [`Database`] for one [`Engine`]: binding, GAO
/// selection and index construction already paid. Executions borrow the database
/// immutably, so any number of prepared queries can serve traffic concurrently.
///
/// See the [module docs](self) for the warm-cache reuse pattern.
#[derive(Debug, Clone)]
pub struct PreparedQuery<'db> {
    db: &'db Database,
    query: Query,
    engine: Engine,
    plan: Plan,
    prepare: Duration,
    report: BindReport,
}

/// A drive report plus the engine-specific stat extras its retired workers
/// aggregated (what [`PreparedQuery::drive_bound`] hands back).
type DrivenBound = (DriveReport, Vec<(&'static str, u64)>);

impl<'db> PreparedQuery<'db> {
    /// Prepares `query` for `engine` over `db` (called by [`Database::prepare`]).
    pub(crate) fn new(
        db: &'db Database,
        query: &Query,
        engine: &Engine,
        gao: Option<Vec<VarId>>,
    ) -> Result<Self, EngineError> {
        let start = Instant::now();
        let threads = db.prepare_threads();
        let cache = db.cache();
        let mut report = BindReport::default();
        let plan = match engine {
            Engine::Lftj | Engine::Minesweeper(_) => {
                let (bq, bind_report) =
                    BoundQuery::with_cache(db.instance(), query, gao, cache, threads)
                        .map_err(EngineError::Bind)?;
                report = bind_report;
                Plan::Bound(bq)
            }
            Engine::Hybrid { split, .. } => {
                let (plan, bind_report) =
                    HybridPlan::with_cache(db.instance(), query, *split, cache, threads)
                        .map_err(EngineError::Unsupported)?;
                report = bind_report;
                Plan::Hybrid(plan)
            }
            Engine::HashJoin(limits) => {
                db.instance().validate_query(query).map_err(EngineError::Bind)?;
                let plan = PairwisePlan::new(db.instance(), query, JoinAlgo::Hash, *limits)
                    .map_err(EngineError::Baseline)?;
                Plan::Pairwise(Box::new(plan))
            }
            Engine::SortMergeJoin(limits) => {
                db.instance().validate_query(query).map_err(EngineError::Bind)?;
                let plan = PairwisePlan::new(db.instance(), query, JoinAlgo::SortMerge, *limits)
                    .map_err(EngineError::Baseline)?;
                Plan::Pairwise(Box::new(plan))
            }
            Engine::GraphEngine => {
                let Some(graph) = db.graph() else {
                    return Err(EngineError::Unsupported(
                        "the graph engine needs a graph loaded with add_graph".to_string(),
                    ));
                };
                let op = if same_shape(query, &CatalogQuery::ThreeClique.query()) {
                    GraphOp::Triangles
                } else if same_shape(query, &CatalogQuery::FourClique.query()) {
                    GraphOp::FourCliques
                } else {
                    return Err(EngineError::Unsupported(format!(
                        "the graph engine only supports 3-clique and 4-clique, not {}",
                        query.name
                    )));
                };
                Plan::Graph { engine: Box::new(GraphEngine::load(graph)), op }
            }
        };
        Ok(PreparedQuery {
            db,
            query: query.clone(),
            engine: engine.clone(),
            plan,
            prepare: start.elapsed(),
            report,
        })
    }

    /// The database this query was prepared against. The borrow is the point:
    /// holding a `PreparedQuery` keeps the database immutable, so cached plans and
    /// `Arc`-shared indexes can never go stale mid-execution.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// The prepared query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The engine this query was prepared for.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Wall-clock time the preparation took (validation, GAO selection, index
    /// builds).
    pub fn prepare_time(&self) -> Duration {
        self.prepare
    }

    /// Number of trie indexes the preparation had to build — 0 when the database's
    /// shared index cache was already warm.
    pub fn indexes_built(&self) -> usize {
        self.report.indexes_built
    }

    /// Worker threads the index builds were sharded across.
    pub fn build_threads(&self) -> usize {
        self.report.build_threads.max(1)
    }

    /// A [`RunStats`] seeded with this preparation's amortised costs.
    fn base_stats(&self) -> RunStats {
        RunStats {
            prepare: self.prepare,
            threads: self.build_threads(),
            indexes_built: self.report.indexes_built,
            ..RunStats::default()
        }
    }

    /// Whether [`run`](Self::run) (and therefore `collect`/`first_k`) is supported:
    /// the hybrid and the specialised graph engine only produce counts.
    pub fn supports_enumeration(&self) -> bool {
        matches!(self.plan, Plan::Bound(_) | Plan::Pairwise { .. })
    }

    /// Executes the query, pushing every output row (in **variable-id order**) into
    /// `sink` until the sink breaks or the output is exhausted.
    ///
    /// Rows arrive in a deterministic per-engine emission order: LFTJ and
    /// Minesweeper emit in lexicographic GAO order, the pairwise baselines in the
    /// order of their streamed final join. The count-only engines (hybrid, graph
    /// engine) return [`EngineError::Unsupported`]; use [`count`](Self::count) for
    /// those.
    pub fn run(&self, sink: &mut impl Sink) -> Result<RunStats, EngineError> {
        self.run_ctx(sink, &ExecCtx::none())
    }

    /// [`run`](Self::run) under an execution context: the engine inner loops poll
    /// `ctx` at the coarse check stride, and every delivered row is accounted
    /// against the context's monitor (row budget). With [`ExecCtx::none()`] this
    /// *is* the infallible serial execution.
    fn run_ctx(&self, sink: &mut impl Sink, ctx: &ExecCtx<'_>) -> Result<RunStats, EngineError> {
        let mut stats = self.base_stats();
        let monitor = ctx.monitor();
        match &self.plan {
            Plan::Bound(bq) => {
                let bind_start = Instant::now();
                let gao = &bq.gao;
                let mut scratch: Vec<Val> = vec![0; bq.num_vars()];
                let mut rows = 0u64;
                match &self.engine {
                    Engine::Lftj => {
                        let exec = LftjExecutor::new(bq);
                        stats.bind = bind_start.elapsed();
                        let run_start = Instant::now();
                        let lftj = exec.try_run_ctx(ctx, &mut |binding| {
                            for (pos, &v) in gao.iter().enumerate() {
                                scratch[v] = binding[pos];
                            }
                            if monitor.is_some_and(|m| m.note_rows(1)) {
                                return ControlFlow::Break(());
                            }
                            rows += 1;
                            sink.push(&scratch)
                        });
                        stats.run = run_start.elapsed();
                        stats.extras = vec![("bindings_explored", lftj.bindings_explored)];
                    }
                    Engine::Minesweeper(config) => {
                        // One row per output: batch counting (Idea 8) is a
                        // counting-only optimisation, so it is disabled under a sink.
                        let config = MsConfig { idea8_batch_counting: false, ..config.clone() };
                        let mut exec = MinesweeperExecutor::new(bq, config);
                        stats.bind = bind_start.elapsed();
                        let run_start = Instant::now();
                        let ms = exec.try_run_ctx(ctx, &mut |binding, _| {
                            for (pos, &v) in gao.iter().enumerate() {
                                scratch[v] = binding[pos];
                            }
                            if monitor.is_some_and(|m| m.note_rows(1)) {
                                return ControlFlow::Break(());
                            }
                            rows += 1;
                            sink.push(&scratch)
                        });
                        stats.run = run_start.elapsed();
                        stats.extras = ms_extras(&ms);
                    }
                    _ => unreachable!("Plan::Bound only serves LFTJ and Minesweeper"),
                }
                stats.rows = rows;
                Ok(stats)
            }
            Plan::Pairwise(plan) => {
                let run_start = Instant::now();
                let (rows, pairwise) = plan
                    .run_ctx(ctx, &mut |row| {
                        if monitor.is_some_and(|m| m.note_rows(1)) {
                            return ControlFlow::Break(());
                        }
                        sink.push(row)
                    })
                    .map_err(EngineError::Baseline)?;
                stats.run = run_start.elapsed();
                stats.rows = rows;
                stats.extras = vec![
                    ("materialized_rows", pairwise.materialized_rows),
                    ("peak_intermediate", pairwise.peak_intermediate),
                ];
                Ok(stats)
            }
            Plan::Hybrid(_) | Plan::Graph { .. } => Err(EngineError::Unsupported(format!(
                "{} only supports counting",
                self.engine.label()
            ))),
        }
    }

    /// Executes the query on `threads` worker threads through the morsel-driven
    /// runtime (`gj-runtime`): the first GAO attribute is partitioned into
    /// `threads × granularity` morsels, workers claim morsels from a shared
    /// work-stealing pool, and per-morsel output shards are merged into `sink` **in
    /// morsel order** — so the sink observes exactly the serial emission stream of
    /// [`run`](Self::run), and `first_k`-style early termination stops all workers.
    ///
    /// Supported by LFTJ, Minesweeper (which takes the granularity factor from
    /// [`MsConfig::granularity`]) and the pairwise baselines (whose plan's base
    /// relation is partitioned on its first column; the left-order join emission
    /// makes the merged stream identical to the serial one, and the
    /// [`ExecLimits`](gj_baselines::ExecLimits) budget aggregates across workers).
    /// With one thread or a degenerate partition this falls back to the serial
    /// [`run`](Self::run); the count-only engines return
    /// [`EngineError::Unsupported`] as usual.
    ///
    /// Engine state is reused across the morsels each worker claims (and, for the
    /// pairwise baselines, across repeated executions of the same prepared
    /// query): Minesweeper carries its learned CDS constraints from morsel to
    /// morsel, the pairwise engines pool their buffers and merge-join sort
    /// permutations. The per-engine statistics workers accumulate are folded into
    /// [`RunStats::extras`].
    ///
    /// ```
    /// use graphjoin::{CatalogQuery, CountSink, Database, Engine, Graph};
    ///
    /// let graph = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
    /// let mut db = Database::new();
    /// db.add_graph(graph);
    /// let prepared = db.prepare(&CatalogQuery::ThreeClique.query(), &Engine::Lftj)?;
    ///
    /// // Same rows, same order as the serial run — the morsel-ordered merge
    /// // makes parallel output identical to serial emission.
    /// let serial = prepared.collect()?;
    /// assert_eq!(prepared.par_collect(4)?, serial);
    ///
    /// // Any ParallelSink works; CountSink takes the zero-materialisation path.
    /// let mut sink = CountSink::new();
    /// let stats = prepared.run_parallel(&mut sink, 4)?;
    /// assert_eq!(sink.rows(), serial.len() as u64);
    /// assert_eq!(stats.rows, 2);
    /// # Ok::<(), graphjoin::EngineError>(())
    /// ```
    pub fn run_parallel<K: ParallelSink>(
        &self,
        sink: &mut K,
        threads: usize,
    ) -> Result<RunStats, EngineError> {
        let monitor = ExecMonitor::unlimited();
        match self.run_parallel_ctx(sink, threads, &monitor) {
            // Without a budget the only possible ExecError is a worker panic;
            // re-raise it like the scoped join used to (the `try_*` API returns
            // it as a typed error instead).
            Err(EngineError::Exec(err)) => panic!("{err}"),
            other => other,
        }
    }

    /// [`run_parallel`](Self::run_parallel) under a shared [`ExecMonitor`]: workers
    /// run under `catch_unwind`, poll the monitor at morsel boundaries and inside
    /// morsels, and the first tripped abort reason surfaces as
    /// [`EngineError::Exec`].
    fn run_parallel_ctx<K: ParallelSink>(
        &self,
        sink: &mut K,
        threads: usize,
        monitor: &ExecMonitor,
    ) -> Result<RunStats, EngineError> {
        let threads = threads.max(1);
        let ctx = ExecCtx::with_monitor(monitor);
        match &self.plan {
            Plan::Bound(_) | Plan::Pairwise(_) if threads == 1 => self.serial_fallback(sink, &ctx),
            Plan::Bound(bq) => {
                let mut stats = self.base_stats();
                let bind_start = Instant::now();
                let granularity = match &self.engine {
                    Engine::Minesweeper(config) => config.granularity.max(1),
                    _ => LFTJ_GRANULARITY,
                };
                let morsels = partition_first_attribute(bq, threads * granularity);
                if morsels.len() <= 1 {
                    return self.serial_fallback(sink, &ctx);
                }
                stats.bind = bind_start.elapsed();
                let run_start = Instant::now();
                let (report, extras) = self.drive_bound(bq, &morsels, threads, sink, monitor)?;
                stats.run = run_start.elapsed();
                stats.rows = report.rows;
                stats.threads = stats.threads.max(report.threads);
                stats.morsels = report.morsels;
                stats.extras = extras;
                Ok(stats)
            }
            Plan::Pairwise(plan) => {
                let mut stats = self.base_stats();
                let bind_start = Instant::now();
                let morsels = plan.partition(threads * PAIRWISE_GRANULARITY);
                if morsels.len() <= 1 {
                    return self.serial_fallback(sink, &ctx);
                }
                stats.bind = bind_start.elapsed();
                let run_start = Instant::now();
                let source = PairwiseMorsels::new(plan);
                let driven = try_drive(&source, &morsels, threads, sink, monitor);
                // Reclaim the workers (and collect the aggregated budget state)
                // before surfacing any error: a monitor trip outranks the
                // pairwise materialisation budget, which in turn fails the run
                // exactly like the serial abort (the sink may have received a
                // partial prefix, as it would under a serial abort too).
                let pairwise = source.finish();
                let report = driven.map_err(EngineError::Exec)?;
                let pairwise = pairwise.map_err(EngineError::Baseline)?;
                stats.run = run_start.elapsed();
                stats.rows = report.rows;
                stats.threads = stats.threads.max(report.threads);
                stats.morsels = report.morsels;
                stats.extras = vec![
                    ("materialized_rows", pairwise.materialized_rows),
                    ("peak_intermediate", pairwise.peak_intermediate),
                ];
                Ok(stats)
            }
            Plan::Hybrid(_) | Plan::Graph { .. } => self.run_ctx(sink, &ctx),
        }
    }

    /// The serial half of [`run_parallel`](Self::run_parallel): counting sinks take
    /// the engine's counting fast path (preserving e.g. Minesweeper's Idea 8 batch
    /// counting, which the row-wise sink protocol disables); everything else runs
    /// through the plain sink execution.
    fn serial_fallback<K: ParallelSink>(
        &self,
        sink: &mut K,
        ctx: &ExecCtx<'_>,
    ) -> Result<RunStats, EngineError> {
        if K::COUNT_ONLY {
            let (count, stats) = self.count_with_stats_ctx(ctx)?;
            let mut shard = sink.shard();
            shard.push_count(count);
            let _ = sink.absorb(shard);
            return Ok(stats);
        }
        self.run_ctx(sink, ctx)
    }

    /// Runs the morsels of a bound plan through the engine's [`MorselSource`]
    /// (`gj_runtime::MorselSource`) adapter. Besides the drive report it returns
    /// the engine-specific statistics the sources aggregated across their retired
    /// workers (the runtime's `retire_worker` lifecycle hook), so parallel
    /// executions report the same extras serial ones do.
    fn drive_bound<K: ParallelSink>(
        &self,
        bq: &BoundQuery,
        morsels: &[gj_runtime::Morsel],
        threads: usize,
        sink: &mut K,
        monitor: &ExecMonitor,
    ) -> Result<DrivenBound, ExecError> {
        match &self.engine {
            Engine::Lftj => {
                let source = LftjMorsels::new(bq);
                let report = try_drive(&source, morsels, threads, sink, monitor)?;
                Ok((report, vec![("bindings_explored", source.total_bindings_explored())]))
            }
            Engine::Minesweeper(config) => {
                // CDS carry-over only pays when workers claim several morsels
                // each; with at most one morsel per worker (granularity 1, the
                // acyclic default) there is no later range to re-seed, so the
                // constraint recording would be pure overhead. It is also a
                // wash on β-cyclic queries: there the CDS holds only the
                // skeletonised (Idea 7) constraints, and re-seeding those
                // into a disjoint first-attribute range almost never prunes —
                // at granularity 8 (Table 5's cyclic setting) the recording
                // cost exceeds the savings, so carry-over stays off unless
                // the query is β-acyclic.
                let mut config = config.clone();
                config.cds_carryover = config.cds_carryover
                    && morsels.len() > threads
                    && gj_query::Hypergraph::of_query(&bq.query).is_beta_acyclic();
                let source = MsMorsels::new(bq, config);
                let report = try_drive(&source, morsels, threads, sink, monitor)?;
                let extras = ms_extras(&source.totals());
                Ok((report, extras))
            }
            _ => unreachable!("Plan::Bound only serves LFTJ and Minesweeper"),
        }
    }

    /// Counts the output rows on `threads` worker threads — the parallel
    /// counterpart of [`count`](Self::count), using the engine's per-morsel
    /// counting fast path (no row is materialised). Engines without a parallel
    /// driver fall back to the serial count.
    pub fn par_count(&self, threads: usize) -> Result<u64, EngineError> {
        if threads <= 1 || !matches!(self.plan, Plan::Bound(_) | Plan::Pairwise(_)) {
            return self.count();
        }
        let mut sink = CountSink::new();
        self.run_parallel(&mut sink, threads)?;
        Ok(sink.rows())
    }

    /// Materialises every output row on `threads` worker threads. The ordered
    /// shard merge makes the result identical to [`collect`](Self::collect) —
    /// same rows, same order.
    pub fn par_collect(&self, threads: usize) -> Result<QueryOutput, EngineError> {
        let mut sink = CollectSink::new();
        self.run_parallel(&mut sink, threads)?;
        Ok(sink.into_rows())
    }

    /// The first `limit` output rows, computed on `threads` worker threads —
    /// still exactly the serial emission prefix of [`collect`](Self::collect):
    /// morsels are merged in order and the cross-worker stop flag retires the
    /// remaining morsels once the prefix is full.
    pub fn par_first_k(&self, limit: usize, threads: usize) -> Result<QueryOutput, EngineError> {
        let mut sink = FirstK::new(limit);
        self.run_parallel(&mut sink, threads)?;
        Ok(sink.into_rows())
    }

    /// Whether the query has at least one output row, checked on `threads` worker
    /// threads: the first row found by *any* worker stops all of them. Count-only
    /// engines fall back to a full (serial) count.
    pub fn par_exists(&self, threads: usize) -> Result<bool, EngineError> {
        if self.supports_enumeration() {
            let mut sink = ExistsSink::new();
            self.run_parallel(&mut sink, threads)?;
            Ok(sink.found())
        } else {
            Ok(self.count()? > 0)
        }
    }

    /// Counts the output rows. Supported by every engine; uses the engine's
    /// counting fast path (e.g. Minesweeper's batch counting and multi-threaded
    /// driver) rather than the sink protocol.
    pub fn count(&self) -> Result<u64, EngineError> {
        self.count_with_stats().map(|(count, _)| count)
    }

    /// Counts the output rows and reports the execution statistics.
    pub fn count_with_stats(&self) -> Result<(u64, RunStats), EngineError> {
        self.count_with_stats_ctx(&ExecCtx::none())
    }

    /// [`count_with_stats`](Self::count_with_stats) under an execution context:
    /// every engine's counting loop polls `ctx` at the coarse check stride. With
    /// [`ExecCtx::none()`] this *is* the infallible serial count.
    fn count_with_stats_ctx(&self, ctx: &ExecCtx<'_>) -> Result<(u64, RunStats), EngineError> {
        let mut stats = self.base_stats();
        let monitor = ctx.monitor();
        let count = match &self.plan {
            Plan::Bound(bq) => match &self.engine {
                Engine::Lftj => {
                    let bind_start = Instant::now();
                    let exec = LftjExecutor::new(bq);
                    stats.bind = bind_start.elapsed();
                    let run_start = Instant::now();
                    let lftj = exec.try_run_ctx(ctx, &mut |_| {
                        if monitor.is_some_and(|m| m.note_rows(1)) {
                            return ControlFlow::Break(());
                        }
                        ControlFlow::Continue(())
                    });
                    stats.run = run_start.elapsed();
                    stats.extras = vec![("bindings_explored", lftj.bindings_explored)];
                    lftj.results
                }
                Engine::Minesweeper(config) if config.threads > 1 => {
                    // The historical `MsConfig::threads > 1` contract, now served by
                    // the shared morsel runtime instead of the deprecated
                    // engine-local `par_count`.
                    let run_start = Instant::now();
                    let morsels =
                        partition_first_attribute(bq, config.threads * config.granularity.max(1));
                    let count = if morsels.len() <= 1 {
                        // Too few distinct values to split: sequential fallback.
                        let mut exec = MinesweeperExecutor::new(bq, config.clone());
                        let ms = exec.try_run_ctx(ctx, &mut |_, mult| {
                            if monitor.is_some_and(|m| m.note_rows(mult)) {
                                return ControlFlow::Break(());
                            }
                            ControlFlow::Continue(())
                        });
                        stats.extras = ms_extras(&ms);
                        ms.results
                    } else {
                        let mut sink = CountSink::new();
                        let unlimited;
                        let monitor = match monitor {
                            Some(m) => m,
                            None => {
                                unlimited = ExecMonitor::unlimited();
                                &unlimited
                            }
                        };
                        let (report, extras) = self
                            .drive_bound(bq, &morsels, config.threads, &mut sink, monitor)
                            .map_err(|err| {
                                if ctx.monitor().is_none() {
                                    // Infallible path: re-raise the worker panic
                                    // like the scoped join used to.
                                    panic!("{err}");
                                }
                                EngineError::Exec(err)
                            })?;
                        stats.threads = stats.threads.max(report.threads);
                        stats.morsels = report.morsels;
                        stats.extras = extras;
                        sink.rows()
                    };
                    stats.run = run_start.elapsed();
                    count
                }
                Engine::Minesweeper(config) => {
                    let bind_start = Instant::now();
                    let mut exec = MinesweeperExecutor::new(bq, config.clone());
                    stats.bind = bind_start.elapsed();
                    let run_start = Instant::now();
                    let ms = exec.try_run_ctx(ctx, &mut |_, mult| {
                        if monitor.is_some_and(|m| m.note_rows(mult)) {
                            return ControlFlow::Break(());
                        }
                        ControlFlow::Continue(())
                    });
                    stats.run = run_start.elapsed();
                    stats.extras = ms_extras(&ms);
                    ms.results
                }
                _ => unreachable!("Plan::Bound only serves LFTJ and Minesweeper"),
            },
            Plan::Hybrid(plan) => {
                let Engine::Hybrid { config, .. } = &self.engine else {
                    unreachable!("Plan::Hybrid only serves the hybrid engine");
                };
                let run_start = Instant::now();
                let count = plan.count_ctx(config, ctx);
                stats.run = run_start.elapsed();
                count
            }
            Plan::Pairwise(plan) => {
                let run_start = Instant::now();
                let (count, pairwise) = plan
                    .run_ctx(ctx, &mut |_| {
                        if monitor.is_some_and(|m| m.note_rows(1)) {
                            return ControlFlow::Break(());
                        }
                        ControlFlow::Continue(())
                    })
                    .map_err(EngineError::Baseline)?;
                stats.run = run_start.elapsed();
                stats.extras = vec![
                    ("materialized_rows", pairwise.materialized_rows),
                    ("peak_intermediate", pairwise.peak_intermediate),
                ];
                count
            }
            Plan::Graph { engine, op } => {
                let run_start = Instant::now();
                let count = match (op, monitor.is_some()) {
                    // The watch-free CSR loop is the hot benchmarked path; keep it
                    // for unmonitored counts.
                    (GraphOp::Triangles, false) => engine.triangle_count(),
                    (GraphOp::Triangles, true) => engine.triangle_count_ctx(ctx),
                    (GraphOp::FourCliques, false) => engine.four_clique_count(),
                    (GraphOp::FourCliques, true) => engine.four_clique_count_ctx(ctx),
                };
                stats.run = run_start.elapsed();
                count
            }
        };
        stats.rows = count;
        Ok((count, stats))
    }

    /// Materialises every output row, in the engine's deterministic emission order
    /// (see [`run`](Self::run)). Count-only engines return
    /// [`EngineError::Unsupported`].
    pub fn collect(&self) -> Result<QueryOutput, EngineError> {
        let mut sink = CollectSink::new();
        self.run(&mut sink)?;
        Ok(sink.into_rows())
    }

    /// The first `limit` output rows in the engine's emission order — always a
    /// prefix of what [`collect`](Self::collect) returns. The engine stops as soon
    /// as the limit is reached.
    pub fn first_k(&self, limit: usize) -> Result<QueryOutput, EngineError> {
        let mut sink = FirstK::new(limit);
        self.run(&mut sink)?;
        Ok(sink.into_rows())
    }

    /// Whether the query has at least one output row. Enumeration-capable engines
    /// stop at the first row; count-only engines fall back to a full count.
    pub fn exists(&self) -> Result<bool, EngineError> {
        if self.supports_enumeration() {
            let mut sink = ExistsSink::new();
            self.run(&mut sink)?;
            Ok(sink.found())
        } else {
            Ok(self.count()? > 0)
        }
    }

    /// Runs `f` under `monitor` with panic isolation: a panic anywhere in engine
    /// code is caught, recorded as [`ExecError::WorkerPanicked`], and shared state
    /// (index cache, worker pools) stays reusable. The monitor's recorded abort
    /// reason outranks whatever `f` returned — an engine that stopped early on a
    /// trip returns a meaningless partial result, which must not leak out as `Ok`.
    fn guard<T>(
        &self,
        monitor: &ExecMonitor,
        f: impl FnOnce(&ExecCtx<'_>) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let ctx = ExecCtx::with_monitor(monitor);
        // Poll once before the run: a budget that is already violated (cancelled
        // token, zero deadline) aborts deterministically even when the query is so
        // small the engine would finish before its first stride poll.
        monitor.check();
        let result = match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
            Ok(result) => result,
            Err(payload) => {
                monitor.trip(ExecError::WorkerPanicked { payload: panic_payload(payload) });
                Err(EngineError::Exec(ExecError::WorkerPanicked {
                    payload: "worker panicked".to_string(),
                }))
            }
        };
        match monitor.take_reason() {
            Some(reason) => Err(EngineError::Exec(reason)),
            None => result,
        }
    }

    /// Counts the output rows under `budget` — the fallible counterpart of
    /// [`count`](Self::count): the engine polls the budget cooperatively (bounded
    /// by one check stride, [`CHECK_STRIDE`](gj_runtime::CHECK_STRIDE) inner-loop
    /// steps) and an abort surfaces as a typed [`EngineError::Exec`] instead of a
    /// panic or a silently truncated answer.
    ///
    /// ```
    /// use graphjoin::{
    ///     CancelToken, CatalogQuery, Database, Engine, EngineError, ExecError, Graph, QueryBudget,
    /// };
    /// use std::time::Duration;
    ///
    /// let graph = Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
    /// let mut db = Database::new();
    /// db.add_graph(graph);
    /// let prepared = db.prepare(&CatalogQuery::ThreeClique.query(), &Engine::Lftj)?;
    ///
    /// // An unlimited budget behaves exactly like `count`.
    /// assert_eq!(prepared.try_count(&QueryBudget::new())?, 2);
    ///
    /// // A cancel token aborts the run cleanly from any thread ...
    /// let token = CancelToken::new();
    /// token.cancel();
    /// let budget = QueryBudget::new().with_cancel_token(token);
    /// assert_eq!(prepared.try_count(&budget), Err(EngineError::Exec(ExecError::Cancelled)));
    ///
    /// // ... and so does a wall-clock deadline. The prepared query survives the
    /// // abort: re-running it gives the exact answer again.
    /// let budget = QueryBudget::new().with_timeout(Duration::ZERO);
    /// assert_eq!(
    ///     prepared.try_count(&budget),
    ///     Err(EngineError::Exec(ExecError::DeadlineExceeded))
    /// );
    /// assert_eq!(prepared.try_count(&QueryBudget::new())?, 2);
    /// # Ok::<(), graphjoin::EngineError>(())
    /// ```
    pub fn try_count(&self, budget: &QueryBudget) -> Result<u64, EngineError> {
        self.try_count_with_stats(budget).map(|(count, _)| count)
    }

    /// [`count_with_stats`](Self::count_with_stats) under `budget`.
    pub fn try_count_with_stats(
        &self,
        budget: &QueryBudget,
    ) -> Result<(u64, RunStats), EngineError> {
        let monitor = ExecMonitor::new(budget);
        self.guard(&monitor, |ctx| self.count_with_stats_ctx(ctx))
    }

    /// [`run`](Self::run) under `budget`: the serial sink execution with
    /// cooperative budget checks and panic isolation. On `Err` the sink holds a
    /// meaningless prefix and must be discarded.
    pub fn try_run(
        &self,
        sink: &mut impl Sink,
        budget: &QueryBudget,
    ) -> Result<RunStats, EngineError> {
        let monitor = ExecMonitor::new(budget);
        self.guard(&monitor, |ctx| self.run_ctx(sink, ctx))
    }

    /// [`run_parallel`](Self::run_parallel) under `budget`: every worker runs under
    /// `catch_unwind`, the budget is polled at morsel boundaries and inside each
    /// morsel, and the first abort reason tripped by any worker surfaces as
    /// [`EngineError::Exec`]. On `Err` the sink holds a meaningless prefix and must
    /// be discarded.
    pub fn try_run_parallel<K: ParallelSink>(
        &self,
        sink: &mut K,
        threads: usize,
        budget: &QueryBudget,
    ) -> Result<RunStats, EngineError> {
        let monitor = ExecMonitor::new(budget);
        self.guard(&monitor, |_| self.run_parallel_ctx(sink, threads, &monitor))
    }

    /// [`par_count`](Self::par_count) under `budget`.
    pub fn try_par_count(&self, threads: usize, budget: &QueryBudget) -> Result<u64, EngineError> {
        if threads <= 1 || !matches!(self.plan, Plan::Bound(_) | Plan::Pairwise(_)) {
            return self.try_count(budget);
        }
        let mut sink = CountSink::new();
        self.try_run_parallel(&mut sink, threads, budget)?;
        Ok(sink.rows())
    }

    /// [`collect`](Self::collect) under `budget`.
    pub fn try_collect(&self, budget: &QueryBudget) -> Result<QueryOutput, EngineError> {
        let mut sink = CollectSink::new();
        self.try_run(&mut sink, budget)?;
        Ok(sink.into_rows())
    }

    /// [`first_k`](Self::first_k) under `budget`.
    pub fn try_first_k(
        &self,
        limit: usize,
        budget: &QueryBudget,
    ) -> Result<QueryOutput, EngineError> {
        let mut sink = FirstK::new(limit);
        self.try_run(&mut sink, budget)?;
        Ok(sink.into_rows())
    }

    /// [`exists`](Self::exists) under `budget`.
    pub fn try_exists(&self, budget: &QueryBudget) -> Result<bool, EngineError> {
        if self.supports_enumeration() {
            let mut sink = ExistsSink::new();
            self.try_run(&mut sink, budget)?;
            Ok(sink.found())
        } else {
            Ok(self.try_count(budget)? > 0)
        }
    }

    /// Counts under `budget` on `threads` workers and **never fails**: an abort is
    /// folded into [`RunStats::outcome`] instead of an `Err`, so benchmark
    /// harnesses can record timeout/abort cells uniformly. A pairwise
    /// materialisation-budget abort is reported as
    /// [`ExecError::BudgetExceeded`]; any other engine error is reported as a
    /// [`WorkerPanicked`](ExecError::WorkerPanicked) outcome carrying the error
    /// text. When the budget carries a fault-injection registry, the outcome also
    /// names the failpoint that fired.
    pub fn count_outcome(&self, threads: usize, budget: &QueryBudget) -> RunStats {
        let result = if threads > 1 {
            let mut sink = CountSink::new();
            self.try_run_parallel(&mut sink, threads, budget)
        } else {
            self.try_count_with_stats(budget).map(|(_, stats)| stats)
        };
        match result {
            Ok(stats) => stats,
            Err(err) => {
                let reason = match err {
                    EngineError::Exec(reason) => reason,
                    EngineError::Baseline(BaselineError::IntermediateBudgetExceeded {
                        rows,
                        budget,
                    }) => ExecError::BudgetExceeded { rows: rows as u64, budget: budget as u64 },
                    other => ExecError::WorkerPanicked { payload: other.to_string() },
                };
                let failpoint = budget.failpoints().and_then(|fp| fp.fired());
                let mut stats = self.base_stats();
                stats.threads = stats.threads.max(threads);
                stats.outcome = RunOutcome::Aborted { reason, failpoint };
                stats
            }
        }
    }
}

/// Minesweeper's statistics as unified extras.
fn ms_extras(ms: &gj_minesweeper::MsStats) -> Vec<(&'static str, u64)> {
    vec![
        ("iterations", ms.iterations),
        ("probes", ms.probes),
        ("probes_skipped", ms.probes_skipped),
        ("constraints_inserted", ms.constraints_inserted),
        ("cached_intervals", ms.cached_intervals),
        ("truncations", ms.truncations),
        ("complete_node_hits", ms.complete_node_hits),
        ("cds_nodes", ms.cds_nodes),
        ("carried_constraints", ms.carried_constraints),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;
    use gj_baselines::ExecLimits;
    use gj_storage::{Graph, Relation};

    fn two_triangle_db() -> Database {
        let graph = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut db = Database::new();
        db.add_graph(graph);
        db.add_relation("v1", Relation::from_values(vec![0, 1, 3]));
        db.add_relation("v2", Relation::from_values(vec![2, 3, 4]));
        db.add_relation("v3", Relation::from_values(vec![0, 2]));
        db.add_relation("v4", Relation::from_values(vec![1, 4]));
        db
    }

    #[test]
    fn prepare_once_execute_many() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let prepared = db.prepare(&q, &Engine::Lftj).unwrap();
        assert!(prepared.indexes_built() > 0);
        for _ in 0..3 {
            assert_eq!(prepared.count().unwrap(), 2);
        }
        // Re-preparing hits the shared cache, for any engine over the same indexes.
        for engine in [Engine::Lftj, Engine::minesweeper()] {
            let warm = db.prepare(&q, &engine).unwrap();
            assert_eq!(warm.indexes_built(), 0, "{}", engine.label());
            assert_eq!(warm.count().unwrap(), 2);
        }
    }

    #[test]
    fn sinks_agree_with_counts_across_engines() {
        let db = two_triangle_db();
        let q = CatalogQuery::FourCycle.query();
        for engine in [
            Engine::Lftj,
            Engine::minesweeper(),
            Engine::HashJoin(ExecLimits::default()),
            Engine::SortMergeJoin(ExecLimits::default()),
        ] {
            let prepared = db.prepare(&q, &engine).unwrap();
            let count = prepared.count().unwrap();
            let mut count_sink = CountSink::new();
            prepared.run(&mut count_sink).unwrap();
            assert_eq!(count_sink.rows(), count, "{}", engine.label());
            let rows = prepared.collect().unwrap();
            assert_eq!(rows.len() as u64, count, "{}", engine.label());
            assert_eq!(prepared.exists().unwrap(), count > 0, "{}", engine.label());
            // first_k is a prefix of collect, for every k.
            for k in [0, 1, rows.len(), rows.len() + 3] {
                let prefix = prepared.first_k(k).unwrap();
                assert_eq!(prefix, rows[..k.min(rows.len())].to_vec(), "{}", engine.label());
            }
        }
    }

    #[test]
    fn run_stats_report_rows_and_extras() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let prepared = db.prepare(&q, &Engine::minesweeper()).unwrap();
        let (count, stats) = prepared.count_with_stats().unwrap();
        assert_eq!(count, 2);
        assert_eq!(stats.rows, 2);
        assert!(stats.extra("probes").unwrap() > 0);
        assert!(stats.threads >= 1);
        let lftj = db.prepare(&q, &Engine::Lftj).unwrap();
        let (_, stats) = lftj.count_with_stats().unwrap();
        assert!(stats.extra("bindings_explored").unwrap() >= 2);
        assert_eq!(stats.indexes_built, 0, "second prepare over the same db is warm");
    }

    #[test]
    fn count_only_engines_reject_sinks_but_count_and_exist() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let prepared = db.prepare(&q, &Engine::GraphEngine).unwrap();
        assert!(!prepared.supports_enumeration());
        assert_eq!(prepared.count().unwrap(), 2);
        assert!(prepared.exists().unwrap());
        assert!(matches!(prepared.collect(), Err(EngineError::Unsupported(_))));
        let q = CatalogQuery::TwoLollipop.query();
        let hybrid = Engine::hybrid_for(CatalogQuery::TwoLollipop).unwrap();
        let prepared = db.prepare(&q, &hybrid).unwrap();
        assert!(matches!(prepared.first_k(1), Err(EngineError::Unsupported(_))));
        assert_eq!(prepared.count().unwrap(), db.count(&q, &Engine::Lftj).unwrap());
    }

    #[test]
    fn run_parallel_matches_serial_for_every_sink() {
        let db = two_triangle_db();
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
            let q = cq.query();
            for engine in [Engine::Lftj, Engine::minesweeper()] {
                let prepared = db.prepare(&q, &engine).unwrap();
                let count = prepared.count().unwrap();
                let rows = prepared.collect().unwrap();
                for threads in [1, 2, 4] {
                    let label = format!("{} {} t={threads}", q.name, engine.label());
                    assert_eq!(prepared.par_count(threads).unwrap(), count, "{label}");
                    assert_eq!(prepared.par_collect(threads).unwrap(), rows, "{label}");
                    assert_eq!(prepared.par_exists(threads).unwrap(), count > 0, "{label}");
                    for k in [0, 1, rows.len() / 2, rows.len() + 1] {
                        assert_eq!(
                            prepared.par_first_k(k, threads).unwrap(),
                            rows[..k.min(rows.len())].to_vec(),
                            "{label} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn run_parallel_reports_morsels_and_threads() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let prepared = db.prepare(&q, &Engine::Lftj).unwrap();
        let mut sink = CountSink::new();
        let stats = prepared.run_parallel(&mut sink, 2).unwrap();
        assert_eq!(stats.rows, 2);
        assert_eq!(sink.rows(), 2);
        assert!(stats.morsels > 1, "the parallel run must actually partition");
        assert!(stats.threads >= 1 && stats.threads <= 2);
        // Serial executions report no morsels.
        let (_, serial) = prepared.count_with_stats().unwrap();
        assert_eq!(serial.morsels, 0);
    }

    #[test]
    fn run_parallel_reports_engine_extras_from_retired_workers() {
        // The worker lifecycle hooks fold per-worker statistics into the run
        // totals, so parallel executions report the same engine extras serial
        // ones do (they used to report none).
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let prepared = db.prepare(&q, &Engine::minesweeper()).unwrap();
        let mut sink = CountSink::new();
        let stats = prepared.run_parallel(&mut sink, 2).unwrap();
        assert!(stats.morsels > 1, "the run must actually partition");
        assert!(stats.extra("probes").unwrap() > 0);
        assert_eq!(stats.extra("carried_constraints").map(|_| ()), Some(()));
        let serial_results = prepared.count().unwrap();
        assert_eq!(stats.rows, serial_results);
        let lftj = db.prepare(&q, &Engine::Lftj).unwrap();
        let mut sink = CountSink::new();
        let stats = lftj.run_parallel(&mut sink, 2).unwrap();
        assert!(stats.extra("bindings_explored").unwrap() >= stats.rows);
    }

    /// Ablation for the carry-over auto-disable: a β-cyclic query at the
    /// paper's cyclic granularity (`f = 8`) would arm the CDS constraint
    /// carry-over (many morsels per worker) but re-seeding skeletonised
    /// constraints across first-attribute ranges is a wash, so the default
    /// config turns it off there — while a β-acyclic query at the same
    /// granularity keeps carrying constraints forward.
    #[test]
    fn cds_carryover_auto_disables_on_cyclic_queries() {
        let mut db = Database::new();
        db.add_graph(gj_datagen::erdos_renyi(60, 220, 19));
        db.add_relation("v1", Relation::from_values((0..60_i64).step_by(3).collect::<Vec<_>>()));
        db.add_relation("v2", Relation::from_values((0..60_i64).step_by(2).collect::<Vec<_>>()));
        let engine = Engine::Minesweeper(MsConfig { granularity: 8, ..MsConfig::default() });
        assert!(MsConfig::default().cds_carryover, "carry-over is on by default");

        let cyclic = CatalogQuery::ThreeClique.query();
        let prepared = db.prepare(&cyclic, &engine).unwrap();
        let mut sink = CountSink::new();
        let stats = prepared.run_parallel(&mut sink, 2).unwrap();
        assert!(stats.morsels > 2, "granularity 8 over-splits, so carry-over *would* arm");
        assert_eq!(
            stats.extra("carried_constraints"),
            Some(0),
            "cyclic GAO: carry-over auto-disabled"
        );
        assert_eq!(stats.rows, prepared.count().unwrap());

        let acyclic = CatalogQuery::ThreePath.query();
        let prepared = db.prepare(&acyclic, &engine).unwrap();
        let mut sink = CountSink::new();
        let stats = prepared.run_parallel(&mut sink, 2).unwrap();
        assert!(
            stats.extra("carried_constraints").unwrap() > 0,
            "acyclic GAO at the same granularity still re-seeds later morsels"
        );
        assert_eq!(stats.rows, prepared.count().unwrap());
    }

    #[test]
    fn run_parallel_drives_the_pairwise_engines_through_morsels() {
        let db = two_triangle_db();
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
            let q = cq.query();
            for engine in [
                Engine::HashJoin(ExecLimits::default()),
                Engine::SortMergeJoin(ExecLimits::default()),
            ] {
                let prepared = db.prepare(&q, &engine).unwrap();
                let serial = prepared.collect().unwrap();
                for threads in [2, 4] {
                    let label = format!("{} {} t={threads}", q.name, engine.label());
                    assert_eq!(prepared.par_collect(threads).unwrap(), serial, "{label}");
                    assert_eq!(prepared.par_count(threads).unwrap(), serial.len() as u64);
                    assert_eq!(prepared.par_exists(threads).unwrap(), !serial.is_empty());
                    let k = serial.len() / 2 + 1;
                    assert_eq!(
                        prepared.par_first_k(k, threads).unwrap(),
                        serial[..k.min(serial.len())].to_vec(),
                        "{label}"
                    );
                }
            }
        }
        // A genuinely partitioned pairwise run reports its morsels and extras.
        let q = CatalogQuery::ThreePath.query();
        let prepared = db.prepare(&q, &Engine::HashJoin(ExecLimits::default())).unwrap();
        let mut sink = CountSink::new();
        let stats = prepared.run_parallel(&mut sink, 2).unwrap();
        assert!(stats.morsels > 1, "the pairwise parallel run must actually partition");
        assert!(stats.extra("materialized_rows").is_some());
        // Count-only engines keep rejecting row sinks and keep counting.
        let hybrid = Engine::hybrid_for(CatalogQuery::TwoLollipop).unwrap();
        let prepared = db.prepare(&CatalogQuery::TwoLollipop.query(), &hybrid).unwrap();
        assert!(matches!(prepared.par_collect(4), Err(EngineError::Unsupported(_))));
        assert_eq!(
            prepared.par_count(4).unwrap(),
            db.count(&CatalogQuery::TwoLollipop.query(), &Engine::Lftj).unwrap()
        );
        assert!(prepared.par_exists(4).unwrap());
    }

    #[test]
    fn parallel_pairwise_budget_errors_propagate() {
        let db = two_triangle_db();
        let q = CatalogQuery::FourClique.query();
        let tiny = ExecLimits { max_intermediate_rows: 1 };
        let prepared = db.prepare(&q, &Engine::HashJoin(tiny)).unwrap();
        assert!(matches!(prepared.count(), Err(EngineError::Baseline(_))));
        assert!(matches!(prepared.par_count(4), Err(EngineError::Baseline(_))));
        let mut sink = CountSink::new();
        assert!(matches!(prepared.run_parallel(&mut sink, 4), Err(EngineError::Baseline(_))));
    }

    #[test]
    fn threaded_minesweeper_engine_counts_through_the_runtime() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let engine =
            Engine::Minesweeper(MsConfig { threads: 3, granularity: 2, ..MsConfig::default() });
        let prepared = db.prepare(&q, &engine).unwrap();
        let (count, stats) = prepared.count_with_stats().unwrap();
        assert_eq!(count, 2);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn pairwise_prepare_validates_relations() {
        let mut db = Database::new();
        db.add_relation("edge", Relation::from_values(vec![1, 2, 3])); // arity 1
        let q = CatalogQuery::ThreeClique.query();
        for engine in
            [Engine::HashJoin(ExecLimits::default()), Engine::SortMergeJoin(ExecLimits::default())]
        {
            assert!(matches!(db.prepare(&q, &engine), Err(EngineError::Bind(_))));
        }
        let empty = Database::new();
        assert!(matches!(
            empty.prepare(&q, &Engine::HashJoin(ExecLimits::default())),
            Err(EngineError::Bind(_))
        ));
    }

    #[test]
    fn replacing_a_relation_invalidates_cached_indexes() {
        let mut db = Database::new();
        let small = Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2)]);
        db.add_graph(small);
        let q = CatalogQuery::ThreeClique.query();
        assert_eq!(db.prepare(&q, &Engine::Lftj).unwrap().count().unwrap(), 1);
        // Replace the edge relation: the cache must not serve the stale index.
        let k4 = Graph::new_undirected(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        db.add_graph(k4);
        let prepared = db.prepare(&q, &Engine::Lftj).unwrap();
        assert!(prepared.indexes_built() > 0, "replacement must invalidate the cache");
        assert_eq!(prepared.count().unwrap(), 4);
    }

    #[test]
    fn explicit_gao_is_honoured_by_prepare() {
        let db = two_triangle_db();
        let q = CatalogQuery::FourPath.query();
        let v = |s: &str| q.var(s).unwrap();
        let gao = vec![v("c"), v("b"), v("a"), v("d"), v("e")];
        let expected = db.prepare(&q, &Engine::Lftj).unwrap().count().unwrap();
        let prepared = db.prepare_with_gao(&q, &Engine::Lftj, Some(gao)).unwrap();
        assert_eq!(prepared.count().unwrap(), expected);
    }

    #[test]
    fn prepared_queries_share_one_instance_of_each_index() {
        let db = two_triangle_db();
        let q = CatalogQuery::FourClique.query();
        let a = db.prepare(&q, &Engine::Lftj).unwrap();
        let b = db.prepare(&q, &Engine::Lftj).unwrap();
        let (Plan::Bound(ba), Plan::Bound(bb)) = (&a.plan, &b.plan) else {
            panic!("LFTJ plans are bound queries");
        };
        for (x, y) in ba.atoms.iter().zip(&bb.atoms) {
            assert!(std::sync::Arc::ptr_eq(&x.index, &y.index));
        }
    }
}
