//! Workload assembly: dataset + query + selectivity → ready-to-run [`Database`].
//!
//! The paper's experiments are always "run query Q over dataset D, with node samples
//! of selectivity s" (Section 5.1). [`Workload`] captures that triple and
//! [`workload_database`] materialises it: it generates (or accepts) the graph, draws
//! the `v1 … vk` samples the query needs, and loads everything into a [`Database`].

use crate::database::Database;
use gj_datagen::{sample_relations, Dataset};
use gj_query::CatalogQuery;
use gj_storage::Graph;
use std::sync::Arc;

/// One experimental cell: a dataset, a query and a sample selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// The dataset (synthetic SNAP stand-in).
    pub dataset: Dataset,
    /// The benchmark query.
    pub query: CatalogQuery,
    /// Selectivity of the node samples (`1/selectivity` keep probability); ignored by
    /// queries without sample predicates.
    pub selectivity: u32,
    /// Seed for the sample draws (the paper redraws samples across runs).
    pub seed: u64,
}

impl Workload {
    /// Creates a workload with the default seed.
    pub fn new(dataset: Dataset, query: CatalogQuery, selectivity: u32) -> Self {
        Workload { dataset, query, selectivity, seed: 0x5eed }
    }

    /// Materialises the workload at the dataset's default scale.
    pub fn database(&self) -> Database {
        let graph = self.dataset.generate();
        self.database_over(graph)
    }

    /// Materialises the workload over an explicitly provided graph (used by the
    /// scaling experiments, which reuse one generated graph across many subsets —
    /// pass an `Arc<Graph>` clone to share it without copying).
    pub fn database_over(&self, graph: impl Into<Arc<Graph>>) -> Database {
        workload_database(graph, self.query, self.selectivity, self.seed)
    }
}

/// Builds a [`Database`] holding `graph`'s edge relation plus the node samples the
/// query requires, drawn with the given selectivity and seed. Accepts an owned
/// [`Graph`] or an [`Arc<Graph>`]; the graph is shared with the database, not
/// deep-copied.
pub fn workload_database(
    graph: impl Into<Arc<Graph>>,
    query: CatalogQuery,
    selectivity: u32,
    seed: u64,
) -> Database {
    let graph: Arc<Graph> = graph.into();
    let mut db = Database::new();
    let num_nodes = graph.num_nodes();
    db.add_graph(graph);
    let needed = query.sample_relations().len();
    for (name, relation) in sample_relations(num_nodes, selectivity, needed, seed) {
        db.add_relation(name, relation);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Engine;

    #[test]
    fn workload_database_has_every_relation_the_query_needs() {
        let graph = Arc::new(Graph::new_undirected(100, (0..99).map(|i| (i, i + 1)).collect()));
        for cq in CatalogQuery::all() {
            let db = workload_database(Arc::clone(&graph), cq, 4, 7);
            let q = cq.query();
            for name in q.relation_names() {
                assert!(db.instance().relation(name).is_some(), "{} missing {name}", q.name);
            }
            // Binding (and therefore every engine) must work.
            assert!(db.bind(&q, None).is_ok(), "{}", q.name);
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let graph = Graph::new_undirected(200, (0..199).map(|i| (i, i + 1)).collect());
        let w = Workload {
            dataset: Dataset::CaGrQc,
            query: CatalogQuery::ThreePath,
            selectivity: 10,
            seed: 3,
        };
        let graph = Arc::new(graph);
        let a = w.database_over(Arc::clone(&graph));
        let b = w.database_over(graph);
        let q = CatalogQuery::ThreePath.query();
        assert_eq!(a.count(&q, &Engine::Lftj).unwrap(), b.count(&q, &Engine::Lftj).unwrap());
    }

    #[test]
    fn selectivity_changes_the_result_size() {
        // A denser sample can only produce at least as many paths.
        let graph = Arc::new(Graph::new_undirected(300, (0..299).map(|i| (i, i + 1)).collect()));
        let q = CatalogQuery::ThreePath.query();
        let dense = workload_database(Arc::clone(&graph), CatalogQuery::ThreePath, 2, 11)
            .count(&q, &Engine::Lftj)
            .unwrap();
        let sparse = workload_database(graph, CatalogQuery::ThreePath, 50, 11)
            .count(&q, &Engine::Lftj)
            .unwrap();
        assert!(dense >= sparse, "dense {dense} sparse {sparse}");
    }

    #[test]
    fn small_workload_end_to_end() {
        let w = Workload::new(Dataset::CaGrQc, CatalogQuery::OneTree, 8);
        // Use a small explicit graph rather than the full dataset to keep the test fast.
        let graph = Graph::new_undirected(60, (0..59).map(|i| (i, (i * 7 + 1) % 60)).collect());
        let db = w.database_over(graph);
        let q = CatalogQuery::OneTree.query();
        let lftj = db.count(&q, &Engine::Lftj).unwrap();
        let ms = db.count(&q, &Engine::minesweeper()).unwrap();
        assert_eq!(lftj, ms);
    }
}
