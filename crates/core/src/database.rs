//! The [`Database`] façade and engine dispatch.
//!
//! A [`Database`] owns a set of named relations (and optionally the graph they came
//! from), a shared [`IndexCache`] of trie indexes, and prepares [`Query`]s for
//! whichever [`Engine`] the caller selects. This mirrors how the paper's experiments
//! drive one system with many algorithms: the data and the query stay fixed, only
//! the join algorithm changes — and under the prepare/execute split, the indexes are
//! built once and amortised across every execution and every engine.
//!
//! The primary API is [`Database::prepare`] →
//! [`PreparedQuery`]; [`Database::count`] /
//! [`Database::enumerate`] remain as thin one-shot shims (deprecated in spirit: they
//! prepare and execute in one call, but still benefit from the shared index cache).

use crate::prepare::PreparedQuery;
use gj_baselines::{BaselineError, ExecLimits};
use gj_minesweeper::MsConfig;
use gj_query::{BoundQuery, CatalogQuery, IndexCache, Instance, Query, VarId};
use gj_runtime::{panic_payload, ExecError};
use gj_storage::{Graph, Relation, Val};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Which join engine evaluates a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// LeapFrog TrieJoin (worst-case optimal).
    Lftj,
    /// Minesweeper with the given configuration (beyond worst-case).
    Minesweeper(MsConfig),
    /// The Minesweeper + LFTJ hybrid of Section 4.12. `split` is the number of
    /// leading variables forming the path part (see [`CatalogQuery::hybrid_split`]).
    Hybrid { split: usize, config: MsConfig },
    /// Selinger-style pairwise plans executed with hash joins (PostgreSQL stand-in).
    HashJoin(ExecLimits),
    /// Selinger-style pairwise plans executed with sort-merge joins (MonetDB
    /// stand-in).
    SortMergeJoin(ExecLimits),
    /// Hand-specialised clique counting over adjacency lists (GraphLab stand-in).
    /// Only supports the 3-clique and 4-clique catalog queries.
    GraphEngine,
}

impl Engine {
    /// Minesweeper with the default configuration (all ideas enabled, single thread).
    pub fn minesweeper() -> Engine {
        Engine::Minesweeper(MsConfig::default())
    }

    /// The hybrid engine for a catalog query that supports it.
    pub fn hybrid_for(query: CatalogQuery) -> Option<Engine> {
        query.hybrid_split().map(|split| Engine::Hybrid { split, config: MsConfig::default() })
    }

    /// Short name used in the benchmark tables (mirrors the paper's row labels).
    pub fn label(&self) -> &'static str {
        match self {
            Engine::Lftj => "lb/lftj",
            Engine::Minesweeper(_) => "lb/ms",
            Engine::Hybrid { .. } => "lb/hybrid",
            Engine::HashJoin(_) => "psql",
            Engine::SortMergeJoin(_) => "monetdb",
            Engine::GraphEngine => "graphlab",
        }
    }
}

/// Errors surfaced by [`Database::prepare`] and the executions of a
/// [`PreparedQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query could not be bound against the stored relations.
    Bind(String),
    /// A pairwise baseline exceeded its materialisation budget or hit another error.
    Baseline(BaselineError),
    /// The selected engine does not support this query (e.g. the graph engine on a
    /// path query, or the hybrid on a query that cannot be split).
    Unsupported(String),
    /// The execution was aborted early but cleanly: budget, deadline, cancellation,
    /// or a panic caught at a worker boundary (see [`ExecError`]). Surfaced by the
    /// `try_*` executions of a [`PreparedQuery`] and by panic-safe preparation.
    Exec(ExecError),
    /// An incremental edit batch was rejected: unknown relation, arity mismatch, or
    /// sentinel/out-of-domain values (see [`Database::insert_rows`]).
    Edit(String),
    /// The attached disk store failed during a durable mutation (see
    /// `Database::commit_edits` in the persistence module).
    Store(gj_store::StoreError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Bind(msg) => write!(f, "binding failed: {msg}"),
            EngineError::Baseline(err) => write!(f, "baseline execution failed: {err}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EngineError::Exec(err) => write!(f, "execution aborted: {err}"),
            EngineError::Edit(msg) => write!(f, "edit rejected: {msg}"),
            EngineError::Store(err) => write!(f, "store error: {err}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<gj_store::StoreError> for EngineError {
    fn from(err: gj_store::StoreError) -> Self {
        EngineError::Store(err)
    }
}

impl From<BaselineError> for EngineError {
    fn from(err: BaselineError) -> Self {
        EngineError::Baseline(err)
    }
}

impl From<ExecError> for EngineError {
    fn from(err: ExecError) -> Self {
        EngineError::Exec(err)
    }
}

/// Runs a preparation under `catch_unwind`: a panic anywhere in binding or index
/// construction (including an armed `trie_build` failpoint) surfaces as
/// [`EngineError::Exec`]\([`ExecError::WorkerPanicked`]\) instead of unwinding
/// through the caller. The shared index cache recovers from the poisoned locks a
/// mid-build panic leaves behind, so the database stays usable.
fn catch_prepare<'db>(
    f: impl FnOnce() -> Result<PreparedQuery<'db>, EngineError>,
) -> Result<PreparedQuery<'db>, EngineError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            Err(EngineError::Exec(ExecError::WorkerPanicked { payload: panic_payload(payload) }))
        }
    }
}

/// The result of an enumeration: bindings in variable-id order.
pub type QueryOutput = Vec<Vec<Val>>;

/// An in-memory database of named relations plus an optional source graph, with a
/// shared trie-index cache that amortises index builds across prepared queries.
///
/// A database can additionally be *disk-backed* (see [`Database::open`] and
/// [`Database::persist`] in the persistence module): relations then hydrate
/// lazily from a [`gj_store::Store`] on first query, and mutations can be made
/// durable through the store's write-ahead log. Cloning a disk-backed database
/// shares the attached store (both clones commit to the same WAL).
#[derive(Debug, Clone)]
pub struct Database {
    instance: Instance,
    graph: Option<Arc<Graph>>,
    cache: IndexCache,
    prepare_threads: usize,
    store: Option<Arc<gj_store::Store>>,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            instance: Instance::default(),
            graph: None,
            cache: IndexCache::new(),
            prepare_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            store: None,
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds (or replaces) a relation, dropping any cached indexes built over a
    /// previous relation of the same name.
    pub fn add_relation(&mut self, name: impl Into<String>, relation: Relation) -> &mut Self {
        let name = name.into();
        self.cache.invalidate(&name);
        self.instance.add_relation(name, relation);
        self
    }

    /// Loads a graph: stores its symmetric `edge(a, b)` relation and keeps the graph
    /// itself (shared, not deep-copied) so the specialised graph engine can run on
    /// it. Accepts an owned [`Graph`] or an [`Arc<Graph>`]; wrap the graph in an
    /// `Arc` up front to share it between the database and other consumers without
    /// any copy.
    pub fn add_graph(&mut self, graph: impl Into<Arc<Graph>>) -> &mut Self {
        let graph = graph.into();
        self.cache.invalidate("edge");
        self.instance.add_relation("edge", graph.edge_relation());
        self.graph = Some(graph);
        self
    }

    /// Inserts `rows` into relation `name` incrementally: the stored relation is
    /// merged in O(n + k), and every cached trie index gains the rows through its
    /// delta layer in O(k × permutations) — no index is rebuilt (see
    /// [`IndexCache::apply_edits`]). Rows already present are ignored. Returns the
    /// number of rows actually inserted.
    ///
    /// Like `add_relation`, the edit is memory-only even on a disk-backed
    /// database; use `commit_edits` (persistence module) for a WAL-durable edit.
    pub fn insert_rows(&mut self, name: &str, rows: &[Vec<Val>]) -> Result<usize, EngineError> {
        self.edit_rows(name, rows, &[])
    }

    /// Deletes `rows` from relation `name` incrementally (tombstones in the cached
    /// indexes' delta layers; the base tries are untouched). Rows not present are
    /// ignored. Returns the number of rows actually deleted.
    pub fn delete_rows(&mut self, name: &str, rows: &[Vec<Val>]) -> Result<usize, EngineError> {
        self.edit_rows(name, &[], rows)
    }

    /// Applies one edit batch to relation `name`: `del` rows leave, `ins` rows
    /// enter, and a row named in both is deleted (the same convention as
    /// [`Relation::with_edits`]). Returns `inserted + deleted` effective rows.
    ///
    /// If the relation is the `"edge"` view of an attached [`Graph`], the graph is
    /// re-derived from the edited relation (growing `num_nodes` to fit new
    /// endpoints) so the specialised graph engine keeps serving.
    pub fn edit_rows(
        &mut self,
        name: &str,
        ins: &[Vec<Val>],
        del: &[Vec<Val>],
    ) -> Result<usize, EngineError> {
        let (eff_ins, eff_del) = self.stage_edits(name, ins, del)?;
        self.apply_effective_edits(name, &eff_ins, &eff_del)
    }

    /// Validates an edit batch against relation `name` and reduces it to its
    /// *effective* deltas: inserts that are new (and not simultaneously
    /// deleted), deletes that currently exist — exactly what the cache's delta
    /// invariants require, and what makes the edit count meaningful. Shared by
    /// [`edit_rows`](Self::edit_rows) and the durable `commit_edits` path,
    /// which must validate *before* touching the WAL.
    pub(crate) fn stage_edits(
        &self,
        name: &str,
        ins: &[Vec<Val>],
        del: &[Vec<Val>],
    ) -> Result<(Relation, Relation), EngineError> {
        let current = self
            .instance
            .relation(name)
            .ok_or_else(|| EngineError::Edit(format!("unknown relation {name:?}")))?;
        let arity = current.arity();
        for row in ins.iter().chain(del) {
            if row.len() != arity {
                return Err(EngineError::Edit(format!(
                    "row {row:?} has arity {}, relation {name:?} has arity {arity}",
                    row.len()
                )));
            }
            if !row.iter().all(|&v| gj_storage::is_finite(v)) {
                return Err(EngineError::Edit(format!("row {row:?} contains a sentinel value")));
            }
        }
        let del_batch = Relation::from_rows(arity, del.to_vec());
        let eff_ins = Relation::from_rows(
            arity,
            ins.iter()
                .filter(|r| !current.contains(r) && !del_batch.contains(r))
                .cloned()
                .collect::<Vec<_>>(),
        );
        let eff_del = Relation::from_rows(
            arity,
            del.iter().filter(|r| current.contains(r)).cloned().collect::<Vec<_>>(),
        );
        Ok((eff_ins, eff_del))
    }

    /// Applies pre-staged effective deltas (see [`stage_edits`](Self::stage_edits))
    /// to the in-memory state: relation, graph view, and cached indexes.
    pub(crate) fn apply_effective_edits(
        &mut self,
        name: &str,
        eff_ins: &Relation,
        eff_del: &Relation,
    ) -> Result<usize, EngineError> {
        if eff_ins.is_empty() && eff_del.is_empty() {
            return Ok(0);
        }
        let current = self
            .instance
            .relation(name)
            .ok_or_else(|| EngineError::Edit(format!("unknown relation {name:?}")))?;
        let updated = current.with_edits(eff_ins, eff_del);
        let changed = eff_ins.len() + eff_del.len();
        if name == "edge" && self.graph.is_some() {
            self.graph = Some(Arc::new(graph_from_edge_relation(&updated, self.graph())?));
        }
        self.cache.apply_edits(name, eff_ins, eff_del, &updated);
        self.instance.add_relation(name, updated);
        Ok(changed)
    }

    /// Inserts undirected edges incrementally: both orientations enter the
    /// `"edge"` relation (self-loops are ignored, matching [`Graph::new`]), every
    /// cached index is delta-updated, and the attached graph — if any — grows to
    /// fit new endpoints. Returns the number of directed rows actually inserted.
    pub fn insert_edges(&mut self, edges: &[(u32, u32)]) -> Result<usize, EngineError> {
        self.edit_rows("edge", &symmetrize(edges), &[])
    }

    /// Deletes undirected edges incrementally (both orientations leave the
    /// `"edge"` relation). Returns the number of directed rows actually deleted.
    pub fn delete_edges(&mut self, edges: &[(u32, u32)]) -> Result<usize, EngineError> {
        self.edit_rows("edge", &[], &symmetrize(edges))
    }

    /// The underlying instance (relation catalog).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The attached disk store, if this database was opened from (or persisted
    /// and re-attached to) one.
    pub fn store(&self) -> Option<&Arc<gj_store::Store>> {
        self.store.as_ref()
    }

    /// Mutable catalog access for the persistence module (lazy-slot installs).
    pub(crate) fn instance_mut(&mut self) -> &mut Instance {
        &mut self.instance
    }

    /// Sets the graph *without* re-deriving the `"edge"` relation — used when
    /// reopening a store, where the persisted `"edge"` relation is already the
    /// authoritative one (it may have been overwritten after `add_graph`).
    pub(crate) fn set_graph_raw(&mut self, graph: Arc<Graph>) {
        self.graph = Some(graph);
    }

    /// Attaches the disk store that backs this database.
    pub(crate) fn set_store(&mut self, store: Arc<gj_store::Store>) {
        self.store = Some(store);
    }

    /// The stored graph, if any.
    pub fn graph(&self) -> Option<&Graph> {
        self.graph.as_deref()
    }

    /// The database-level trie-index cache shared by every preparation. Exposed so
    /// benchmarks can [`clear`](IndexCache::clear) it to measure cold preparations.
    pub fn cache(&self) -> &IndexCache {
        &self.cache
    }

    /// Number of worker threads [`prepare`](Self::prepare) shards index builds
    /// across (defaults to the machine's available parallelism).
    pub fn prepare_threads(&self) -> usize {
        self.prepare_threads
    }

    /// Sets the number of worker threads for index builds during preparation
    /// (clamped to at least 1).
    pub fn set_prepare_threads(&mut self, threads: usize) -> &mut Self {
        self.prepare_threads = threads.max(1);
        self
    }

    /// Prepares `query` for repeated execution with `engine`: validation, GAO
    /// selection and trie-index construction happen now (against the shared index
    /// cache); every execution of the returned [`PreparedQuery`] only pays the run
    /// itself.
    ///
    /// ```
    /// use graphjoin::{CatalogQuery, Database, Engine, Graph};
    ///
    /// // Two triangles sharing the edge (1, 2).
    /// let graph = Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
    /// let mut db = Database::new();
    /// db.add_graph(graph);
    ///
    /// // Prepare once (builds the trie indexes) ...
    /// let prepared = db.prepare(&CatalogQuery::ThreeClique.query(), &Engine::Lftj)?;
    /// assert!(prepared.indexes_built() > 0);
    /// // ... execute many times: count, collect, first_k, exists.
    /// assert_eq!(prepared.count()?, 2);
    /// assert_eq!(prepared.collect()?.len(), 2);
    /// assert!(prepared.exists()?);
    ///
    /// // A second prepare — same query, different engine — finds the shared
    /// // index cache warm and builds nothing.
    /// let warm = db.prepare(&CatalogQuery::ThreeClique.query(), &Engine::minesweeper())?;
    /// assert_eq!(warm.indexes_built(), 0);
    /// assert_eq!(warm.count()?, 2);
    /// # Ok::<(), graphjoin::EngineError>(())
    /// ```
    pub fn prepare(
        &self,
        query: &Query,
        engine: &Engine,
    ) -> Result<PreparedQuery<'_>, EngineError> {
        catch_prepare(|| PreparedQuery::new(self, query, engine, None))
    }

    /// Like [`prepare`](Self::prepare), with an explicit GAO (LFTJ and Minesweeper
    /// only; the other engines ignore it).
    pub fn prepare_with_gao(
        &self,
        query: &Query,
        engine: &Engine,
        gao: Option<Vec<VarId>>,
    ) -> Result<PreparedQuery<'_>, EngineError> {
        catch_prepare(|| PreparedQuery::new(self, query, engine, gao))
    }

    /// Binds a query against the stored relations under an optional explicit GAO,
    /// taking indexes from the shared cache.
    pub fn bind(&self, query: &Query, gao: Option<Vec<VarId>>) -> Result<BoundQuery, EngineError> {
        BoundQuery::with_cache(&self.instance, query, gao, &self.cache, self.prepare_threads)
            .map(|(bq, _)| bq)
            .map_err(EngineError::Bind)
    }

    /// Counts the query's output with the selected engine.
    ///
    /// One-shot shim over [`prepare`](Self::prepare) +
    /// [`count`](crate::PreparedQuery::count), kept for convenience and backwards
    /// compatibility; under repeated traffic, prepare once and execute many times.
    pub fn count(&self, query: &Query, engine: &Engine) -> Result<u64, EngineError> {
        self.count_with_gao(query, engine, None)
    }

    /// Counts the query's output with the selected engine under an explicit GAO
    /// (LFTJ and Minesweeper only; the other engines ignore the GAO).
    ///
    /// One-shot shim over [`prepare_with_gao`](Self::prepare_with_gao) +
    /// [`count`](crate::PreparedQuery::count).
    pub fn count_with_gao(
        &self,
        query: &Query,
        engine: &Engine,
        gao: Option<Vec<VarId>>,
    ) -> Result<u64, EngineError> {
        self.prepare_with_gao(query, engine, gao)?.count()
    }

    /// Enumerates the query's output (bindings in variable-id order, sorted) with
    /// the selected engine. The graph engine and the hybrid only produce counts.
    ///
    /// One-shot shim over [`prepare`](Self::prepare) +
    /// [`collect`](crate::PreparedQuery::collect) (plus a sort, for a deterministic
    /// cross-engine order).
    pub fn enumerate(&self, query: &Query, engine: &Engine) -> Result<QueryOutput, EngineError> {
        let mut rows = self.prepare(query, engine)?.collect()?;
        rows.sort_unstable();
        Ok(rows)
    }
}

/// Both orientations of each undirected edge as relation rows, self-loops dropped.
fn symmetrize(edges: &[(u32, u32)]) -> Vec<Vec<Val>> {
    let mut rows = Vec::with_capacity(edges.len() * 2);
    for &(a, b) in edges {
        if a != b {
            rows.push(vec![Val::from(a), Val::from(b)]);
            rows.push(vec![Val::from(b), Val::from(a)]);
        }
    }
    rows
}

/// Re-derives the graph view from an edited (symmetric) `"edge"` relation. The node
/// count never shrinks — ids are stable — and grows to fit the largest endpoint.
fn graph_from_edge_relation(rel: &Relation, old: Option<&Graph>) -> Result<Graph, EngineError> {
    let mut edges = Vec::with_capacity(rel.len());
    let mut max_endpoint: i64 = -1;
    for row in rel.iter() {
        let (a, b) = (row[0], row[1]);
        let (Ok(a), Ok(b)) = (u32::try_from(a), u32::try_from(b)) else {
            return Err(EngineError::Edit(format!(
                "edge ({a}, {b}) has endpoints outside the graph node domain"
            )));
        };
        max_endpoint = max_endpoint.max(i64::from(a)).max(i64::from(b));
        edges.push((a, b));
    }
    let num_nodes = (max_endpoint + 1) as usize;
    Ok(Graph::new(num_nodes.max(old.map_or(0, Graph::num_nodes)), edges))
}

/// Structural equality of two queries up to variable names: same atoms (relation name
/// + variable indices) and same filters.
pub(crate) fn same_shape(a: &Query, b: &Query) -> bool {
    a.num_vars() == b.num_vars()
        && a.atoms.len() == b.atoms.len()
        && a.atoms.iter().zip(&b.atoms).all(|(x, y)| x.relation == y.relation && x.vars == y.vars)
        && a.filters == b.filters
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::naive_count;

    fn two_triangle_db() -> Database {
        let graph = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut db = Database::new();
        db.add_graph(graph);
        db.add_relation("v1", Relation::from_values(vec![0, 1, 3]));
        db.add_relation("v2", Relation::from_values(vec![2, 3, 4]));
        db.add_relation("v3", Relation::from_values(vec![0, 2]));
        db.add_relation("v4", Relation::from_values(vec![1, 4]));
        db
    }

    #[test]
    fn every_engine_counts_triangles_identically() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let engines = [
            Engine::Lftj,
            Engine::minesweeper(),
            Engine::HashJoin(ExecLimits::default()),
            Engine::SortMergeJoin(ExecLimits::default()),
            Engine::GraphEngine,
        ];
        for engine in engines {
            assert_eq!(db.count(&q, &engine).unwrap(), 2, "{}", engine.label());
        }
    }

    #[test]
    fn all_catalog_queries_agree_across_general_purpose_engines() {
        let db = two_triangle_db();
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let expected = naive_count(db.instance(), &q);
            for engine in [
                Engine::Lftj,
                Engine::minesweeper(),
                Engine::HashJoin(ExecLimits::default()),
                Engine::SortMergeJoin(ExecLimits::default()),
            ] {
                assert_eq!(
                    db.count(&q, &engine).unwrap(),
                    expected,
                    "{} {}",
                    q.name,
                    engine.label()
                );
            }
            if let Some(hybrid) = Engine::hybrid_for(cq) {
                assert_eq!(db.count(&q, &hybrid).unwrap(), expected, "{} hybrid", q.name);
            }
        }
    }

    #[test]
    fn enumerate_returns_sorted_bindings() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        let rows = db.enumerate(&q, &Engine::Lftj).unwrap();
        assert_eq!(rows, vec![vec![0, 1, 2], vec![1, 2, 3]]);
        assert_eq!(db.enumerate(&q, &Engine::minesweeper()).unwrap(), rows);
        // The pairwise baselines now enumerate natively through the sink protocol.
        assert_eq!(db.enumerate(&q, &Engine::HashJoin(ExecLimits::default())).unwrap(), rows);
    }

    #[test]
    fn graph_engine_rejects_non_clique_queries() {
        let db = two_triangle_db();
        let err = db.count(&CatalogQuery::ThreePath.query(), &Engine::GraphEngine).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn graph_engine_requires_a_loaded_graph() {
        let mut db = Database::new();
        db.add_relation("edge", Relation::from_pairs(vec![(0, 1)]));
        let err = db.count(&CatalogQuery::ThreeClique.query(), &Engine::GraphEngine).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn missing_relation_is_a_bind_error() {
        let db = Database::new();
        let err = db.count(&CatalogQuery::ThreeClique.query(), &Engine::Lftj).unwrap_err();
        assert!(matches!(err, EngineError::Bind(_)));
    }

    #[test]
    fn baseline_budget_errors_are_propagated() {
        let db = two_triangle_db();
        let q = CatalogQuery::FourClique.query();
        let tiny = ExecLimits { max_intermediate_rows: 1 };
        let err = db.count(&q, &Engine::HashJoin(tiny)).unwrap_err();
        assert!(matches!(err, EngineError::Baseline(_)));
    }

    #[test]
    fn explicit_gao_is_honoured() {
        let db = two_triangle_db();
        let q = CatalogQuery::FourPath.query();
        let v = |s: &str| q.var(s).unwrap();
        let gao = vec![v("c"), v("b"), v("a"), v("d"), v("e")];
        let expected = db.count(&q, &Engine::Lftj).unwrap();
        assert_eq!(db.count_with_gao(&q, &Engine::Lftj, Some(gao.clone())).unwrap(), expected);
        assert_eq!(db.count_with_gao(&q, &Engine::minesweeper(), Some(gao)).unwrap(), expected);
    }

    #[test]
    fn engine_labels_match_the_paper_rows() {
        assert_eq!(Engine::Lftj.label(), "lb/lftj");
        assert_eq!(Engine::minesweeper().label(), "lb/ms");
        assert_eq!(Engine::hybrid_for(CatalogQuery::TwoLollipop).unwrap().label(), "lb/hybrid");
        assert_eq!(Engine::HashJoin(ExecLimits::default()).label(), "psql");
        assert_eq!(Engine::SortMergeJoin(ExecLimits::default()).label(), "monetdb");
        assert_eq!(Engine::GraphEngine.label(), "graphlab");
    }

    #[test]
    fn add_graph_accepts_owned_and_shared_graphs() {
        let graph = Arc::new(Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2)]));
        let mut db = Database::new();
        // Sharing an Arc does not deep-copy the graph.
        db.add_graph(Arc::clone(&graph));
        assert_eq!(db.count(&CatalogQuery::ThreeClique.query(), &Engine::GraphEngine).unwrap(), 1);
        assert_eq!(Arc::strong_count(&graph), 2);
        // The one-shot `count` shims still warm the shared cache (for the engines
        // that consume trie indexes).
        assert_eq!(db.count(&CatalogQuery::ThreeClique.query(), &Engine::Lftj).unwrap(), 1);
        assert!(!db.cache().is_empty());
    }

    #[test]
    fn incremental_edits_keep_every_engine_correct_without_rebuilds() {
        let mut db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        // Warm the cache for the trie-consuming engines.
        assert_eq!(db.count(&q, &Engine::Lftj).unwrap(), 2);
        // Close the triangle (0, 3): edges (0,1),(1,3) and (0,2),(2,3) exist.
        assert_eq!(db.insert_edges(&[(0, 3)]).unwrap(), 2);
        // Delete edge (0, 1): kills triangles {0,1,2} and {0,1,3}.
        assert_eq!(db.delete_edges(&[(0, 1)]).unwrap(), 2);
        let expected = naive_count(db.instance(), &q);
        for engine in [
            Engine::Lftj,
            Engine::minesweeper(),
            Engine::HashJoin(ExecLimits::default()),
            Engine::SortMergeJoin(ExecLimits::default()),
            Engine::GraphEngine,
        ] {
            let prepared = db.prepare(&q, &engine).unwrap();
            assert_eq!(
                prepared.indexes_built(),
                0,
                "{}: edits must not rebuild cached indexes",
                engine.label()
            );
            assert_eq!(prepared.count().unwrap(), expected, "{}", engine.label());
        }
    }

    #[test]
    fn edits_are_idempotent_and_report_effective_rows() {
        let mut db = two_triangle_db();
        assert_eq!(db.insert_edges(&[(0, 1)]).unwrap(), 0, "edge already present");
        assert_eq!(db.delete_edges(&[(0, 4)]).unwrap(), 0, "edge never existed");
        assert_eq!(db.insert_edges(&[(2, 2)]).unwrap(), 0, "self-loops are dropped");
        assert_eq!(db.insert_rows("v1", &[vec![1], vec![9]]).unwrap(), 1);
        assert_eq!(db.delete_rows("v1", &[vec![9], vec![7]]).unwrap(), 1);
        // A row named in both halves of one batch is deleted (delete wins).
        assert_eq!(db.edit_rows("v1", &[vec![0]], &[vec![0]]).unwrap(), 1);
        assert!(!db.instance().relation("v1").unwrap().contains(&[0]));
    }

    #[test]
    fn malformed_edit_batches_are_rejected() {
        let mut db = two_triangle_db();
        assert!(matches!(db.insert_rows("nope", &[vec![1]]), Err(EngineError::Edit(_))));
        assert!(matches!(db.insert_rows("v1", &[vec![1, 2]]), Err(EngineError::Edit(_))));
        assert!(matches!(
            db.insert_rows("v1", &[vec![gj_storage::POS_INF]]),
            Err(EngineError::Edit(_))
        ));
        // A failed batch leaves the relation untouched.
        assert_eq!(db.instance().relation("v1").unwrap().len(), 3);
    }

    #[test]
    fn edge_edits_grow_the_graph_view() {
        let mut db = two_triangle_db();
        assert_eq!(db.graph().unwrap().num_nodes(), 5);
        // Endpoint 7 is outside the current node range; the graph must grow.
        db.insert_edges(&[(4, 7), (3, 7)]).unwrap();
        assert_eq!(db.graph().unwrap().num_nodes(), 8);
        db.insert_edges(&[(0, 7)]).unwrap();
        // Deleting never shrinks the id space.
        db.delete_edges(&[(0, 7)]).unwrap();
        assert_eq!(db.graph().unwrap().num_nodes(), 8);
        let q = CatalogQuery::ThreeClique.query();
        assert_eq!(db.count(&q, &Engine::GraphEngine).unwrap(), naive_count(db.instance(), &q));
    }

    #[test]
    fn cloned_databases_start_warm_but_diverge() {
        let db = two_triangle_db();
        let q = CatalogQuery::ThreeClique.query();
        db.count(&q, &Engine::Lftj).unwrap();
        assert!(!db.cache().is_empty());
        let clone = db.clone();
        assert_eq!(clone.prepare(&q, &Engine::Lftj).unwrap().indexes_built(), 0);
        clone.cache().clear();
        assert!(!db.cache().is_empty(), "clearing the clone must not touch the original");
    }
}
