//! #Minesweeper-style batch counting (Idea 8 of the paper).
//!
//! When a query is only executed as a count, enumerating each output tuple through a
//! separate outer-loop iteration wastes a full CDS walk per tuple. The paper's
//! #Minesweeper propagates per-point counts through the CDS instead; this module
//! implements the workhorse special case of that idea: once a free tuple has been
//! verified as an output, the whole *run* of outputs sharing its first `n-1`
//! attributes is counted in one pass by intersecting the extension lists of the atoms
//! that contain the last GAO attribute, and the frontier jumps past the entire block.

use crate::gaps::AtomProber;
use gj_query::BoundQuery;
use gj_storage::{Val, POS_INF};

/// Counts the outputs that share `t`'s first `n-1` attributes and whose last
/// attribute is `>= t[n-1]` (subject to the query's order filters), and returns the
/// frontier that skips past the whole block (`None` when the query has a single
/// variable, in which case everything has been counted).
///
/// Precondition: `t` itself has been verified to be an output.
pub fn count_last_level_run(
    bq: &BoundQuery,
    probers: &[AtomProber],
    filters: &[Vec<(usize, bool)>],
    t: &[Val],
) -> (u64, Option<Vec<Val>>) {
    let n = bq.num_vars();
    let last = n - 1;

    // Bounds induced by the order filters on the last attribute.
    let mut lower = t[last];
    let mut upper = POS_INF;
    for &(other, other_is_smaller) in &filters[last] {
        if other_is_smaller {
            lower = lower.max(t[other] + 1);
        } else {
            upper = upper.min(t[other]);
        }
    }
    // Filters whose *later-in-GAO* variable is not the last attribute can still
    // mention it as the earlier side; varying the last value must keep them true.
    for (pos, checks) in filters.iter().enumerate().take(last) {
        for &(other, other_is_smaller) in checks {
            if other == last {
                if other_is_smaller {
                    // t[pos] must stay greater than the last attribute.
                    upper = upper.min(t[pos]);
                } else {
                    lower = lower.max(t[pos] + 1);
                }
            }
        }
    }

    // Extension lists of every atom containing the last attribute (owned when the
    // atom's index merges a delta layer, borrowed otherwise).
    let mut lists: Vec<std::borrow::Cow<'_, [Val]>> = Vec::new();
    for prober in probers {
        if prober.positions().last() != Some(&last) {
            continue;
        }
        let prefix: Vec<Val> =
            prober.positions()[..prober.positions().len() - 1].iter().map(|&p| t[p]).collect();
        match prober.extensions(&prefix) {
            Some(list) => lists.push(list),
            // `t` was verified as an output, so the prefix must exist; be defensive
            // anyway and fall back to counting just `t`.
            None => return (1, bump_prefix(t)),
        }
    }
    let slices: Vec<&[Val]> = lists.iter().map(|l| &**l).collect();
    if slices.is_empty() {
        // Every variable of a valid query occurs in some atom, so this cannot happen;
        // count just the verified tuple to stay safe.
        return (1, bump_prefix(t));
    }

    let count = intersect_count(&slices, lower, upper);
    (count.max(1), bump_prefix(t))
}

/// Counts the values present in every sorted slice within `[lower, upper)`.
fn intersect_count(slices: &[&[Val]], lower: Val, upper: Val) -> u64 {
    let mut cursors = vec![0usize; slices.len()];
    // Position every cursor at the first value >= lower.
    for (c, s) in cursors.iter_mut().zip(slices) {
        *c = s.partition_point(|&v| v < lower);
    }
    let mut count = 0u64;
    'outer: loop {
        // Current maximum across cursors.
        let mut target = Val::MIN;
        for (c, s) in cursors.iter().zip(slices) {
            if *c >= s.len() {
                break 'outer;
            }
            target = target.max(s[*c]);
        }
        if target >= upper {
            break;
        }
        // Advance every cursor to >= target.
        let mut all_match = true;
        for (c, s) in cursors.iter_mut().zip(slices) {
            *c += s[*c..].partition_point(|&v| v < target);
            if *c >= s.len() {
                break 'outer;
            }
            if s[*c] != target {
                all_match = false;
            }
        }
        if all_match {
            count += 1;
            for c in cursors.iter_mut() {
                *c += 1;
            }
        }
    }
    count
}

/// The frontier that skips every remaining tuple sharing `t`'s first `n-1`
/// attributes: position `n-2` is incremented and the last position resets.
fn bump_prefix(t: &[Val]) -> Option<Vec<Val>> {
    if t.len() < 2 {
        return None;
    }
    let mut f = t.to_vec();
    let n = f.len();
    f[n - 1] = -1;
    f[n - 2] += 1;
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_count_basic() {
        assert_eq!(intersect_count(&[&[1, 3, 5, 7], &[3, 5, 9]], 0, POS_INF), 2);
        assert_eq!(intersect_count(&[&[1, 3, 5, 7], &[3, 5, 9]], 4, POS_INF), 1);
        assert_eq!(intersect_count(&[&[1, 3, 5, 7], &[3, 5, 9]], 0, 5), 1);
        assert_eq!(intersect_count(&[&[1, 2, 3]], 2, 4), 2);
        assert_eq!(intersect_count(&[&[1, 2], &[3, 4]], 0, POS_INF), 0);
        assert_eq!(intersect_count(&[&[], &[1]], 0, POS_INF), 0);
    }

    #[test]
    fn bump_prefix_increments_the_second_to_last() {
        assert_eq!(bump_prefix(&[4, 7, 9]), Some(vec![4, 8, -1]));
        assert_eq!(bump_prefix(&[4]), None);
    }
}
