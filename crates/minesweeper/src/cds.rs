//! The constraint data structure (CDS) — Sections 4.3, 4.4 and 4.7 of the paper.
//!
//! The CDS is a tree with one level per GAO attribute. A node is identified by the
//! labels on the path from the root (its *pattern*: equality values or wildcards) and
//! stores the open intervals of the constraints whose pattern is that path, plus the
//! bookkeeping of Ideas 5, 6 and 8 (cached intervals, discovered free values,
//! completeness, counts).
//!
//! Its two operations are exactly the paper's:
//!
//! * [`Cds::insert_constraint`] — add a gap box;
//! * [`Cds::compute_free_tuple`] — find the lexicographically smallest tuple `≥` the
//!   current frontier that is not covered by any stored gap box, walking the levels
//!   with `getFreeValue` (Algorithm 5), backtracking and truncating (Algorithm 6) as
//!   needed.
//!
//! One deliberate deviation from the pseudocode is documented inline: whenever the
//! frontier value at a level is bumped during backtracking, the deeper frontier
//! components are reset to `-1` immediately (the paper resets them lazily at the next
//! descent, which as written can leave a stale suffix and skip tuples; resetting
//! eagerly is always sound because it only lowers the frontier tail).

use crate::constraint::{Constraint, PatternComp};
use crate::node::{Node, NodeId};
use gj_storage::{Val, POS_INF};

/// Statistics the CDS keeps about its own operation (for the ablation tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdsStats {
    /// Number of constraints inserted (gap boxes from relations).
    pub constraints_inserted: u64,
    /// Number of intervals cached by `getFreeValue` (Idea 5).
    pub cached_intervals: u64,
    /// Number of branch truncations (Algorithm 6).
    pub truncations: u64,
    /// Number of free tuples handed out.
    pub free_tuples: u64,
    /// Number of times a complete node answered a `getFreeValue` call (Idea 6).
    pub complete_node_hits: u64,
}

/// The constraint data structure.
#[derive(Debug, Clone)]
pub struct Cds {
    /// Number of GAO attributes (tree depth).
    n: usize,
    /// Node arena; index 0 is the root. Only the first `live` entries are part of
    /// the current tree — [`Cds::reset`] rewinds `live` instead of deallocating, so
    /// a reused CDS recycles node storage across runs.
    nodes: Vec<Node>,
    /// Number of arena entries in use by the current tree.
    live: usize,
    /// Parent link and incoming edge label of each node (`None` label = wildcard
    /// edge). The root's entry is unused.
    parents: Vec<(NodeId, Option<Val>)>,
    /// The moving frontier (Idea 2).
    frontier: Vec<Val>,
    /// Whether `getFreeValue` may cache intervals into the bottom node (Idea 5).
    /// Sound only when the constraint-inserting atoms form a β-acyclic skeleton and
    /// the GAO is one of its nested elimination orders — the engine decides.
    caching: bool,
    /// Whether complete nodes short-circuit the chain walk (Idea 6; requires caching).
    complete_nodes: bool,
    /// Largest value that can appear in any output tuple (the maximum data value).
    /// Free values beyond it are treated as exhausted, which keeps every level's
    /// search bounded even when no constraint caps it yet.
    domain_max: Val,
    /// Statistics.
    pub stats: CdsStats,
}

/// Result of a `getFreeValue` call.
struct FreeValue {
    /// The value found (may be `POS_INF` when backtracking).
    value: Val,
    /// Whether the caller must backtrack.
    backtracked: bool,
    /// The depth to continue at (only meaningful when `backtracked`); `-1` means the
    /// whole output space is exhausted.
    resume_depth: isize,
}

impl Cds {
    /// Creates an empty CDS over `n` GAO attributes, with the frontier at
    /// `(-1, …, -1)`.
    pub fn new(n: usize, caching: bool, complete_nodes: bool) -> Self {
        assert!(n > 0, "a query needs at least one variable");
        Cds {
            n,
            nodes: vec![Node::new()],
            live: 1,
            parents: vec![(0, None)],
            frontier: vec![-1; n],
            caching,
            complete_nodes: complete_nodes && caching,
            domain_max: POS_INF,
            stats: CdsStats::default(),
        }
    }

    /// Bounds the search to values `<= domain_max` (the largest data value): anything
    /// beyond it cannot belong to an output tuple, so a level whose next free value
    /// exceeds the bound is treated as exhausted. The engine always sets this; the
    /// default is unbounded.
    pub fn with_domain_max(mut self, domain_max: Val) -> Self {
        self.domain_max = domain_max;
        self
    }

    /// Number of GAO attributes.
    pub fn num_attrs(&self) -> usize {
        self.n
    }

    /// The current frontier.
    pub fn frontier(&self) -> &[Val] {
        &self.frontier
    }

    /// Replaces the frontier. The new frontier must be lexicographically `>=` the old
    /// one (the CDS never moves backwards).
    pub fn set_frontier(&mut self, frontier: Vec<Val>) {
        debug_assert_eq!(frontier.len(), self.n);
        debug_assert!(
            frontier.as_slice() >= self.frontier.as_slice(),
            "frontier may only move forward: {:?} -> {frontier:?}",
            self.frontier
        );
        self.frontier = frontier;
    }

    /// Read access to a node (for tests and diagnostics).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes in the current tree (including pruned/detached ones).
    pub fn num_nodes(&self) -> usize {
        self.live
    }

    /// Rewinds the CDS to its initial state — frontier at `(-1, …, -1)`, no
    /// constraints, zeroed statistics — while keeping the node arena allocated.
    /// `domain_max` and the caching/completeness configuration are preserved. This
    /// is what lets one executor serve every morsel a worker claims without paying
    /// a fresh CDS allocation per job.
    pub fn reset(&mut self) {
        self.nodes[0].clear();
        self.live = 1;
        self.frontier.iter_mut().for_each(|v| *v = -1);
        self.stats = CdsStats::default();
    }

    /// Finds the node with exactly this pattern, if it exists.
    pub fn find_node(&self, pattern: &[PatternComp]) -> Option<NodeId> {
        let mut cur = 0;
        for comp in pattern {
            cur = match comp {
                PatternComp::Wildcard => self.nodes[cur].wildcard_child()?,
                PatternComp::Eq(v) => self.nodes[cur].child(*v)?,
            };
        }
        Some(cur)
    }

    fn new_node(&mut self, parent: NodeId, label: Option<Val>) -> NodeId {
        let id = self.live;
        if id < self.nodes.len() {
            // Recycle an arena slot left over from before the last reset.
            self.nodes[id].clear();
            self.parents[id] = (parent, label);
        } else {
            self.nodes.push(Node::new());
            self.parents.push((parent, label));
        }
        self.live = id + 1;
        id
    }

    /// `InsConstraint(c)`: walks (creating as needed) the node with the constraint's
    /// pattern and inserts the interval there.
    pub fn insert_constraint(&mut self, c: &Constraint) {
        debug_assert!(c.interval_pos() < self.n, "constraint interval beyond the last attribute");
        let mut cur = 0;
        for comp in &c.pattern {
            cur = match comp {
                PatternComp::Wildcard => match self.nodes[cur].wildcard_child() {
                    Some(w) => w,
                    None => {
                        let id = self.new_node(cur, None);
                        self.nodes[cur].set_wildcard_child(id);
                        id
                    }
                },
                PatternComp::Eq(v) => match self.nodes[cur].child(*v) {
                    Some(ch) => ch,
                    None => {
                        let id = self.new_node(cur, Some(*v));
                        self.nodes[cur].set_child(*v, id);
                        id
                    }
                },
            };
        }
        self.nodes[cur].insert_interval(c.interval.0, c.interval.1);
        self.stats.constraints_inserted += 1;
    }

    /// `computeFreeTuple()`: advances the frontier to the lexicographically smallest
    /// tuple `≥` the current frontier that is not covered by any stored constraint,
    /// returning `false` when no such tuple exists (the space is exhausted).
    ///
    /// Following Algorithm 4, the walk may return early as soon as no CDS node
    /// generalises the current prefix at the next level (in which case no deeper
    /// constraint can apply either); the returned tuple is then still a sound
    /// candidate because every value skipped so far was inside a stored
    /// (output-free) gap box.
    pub fn compute_free_tuple(&mut self) -> bool {
        // Active sets: for each depth, the CDS nodes whose pattern generalises the
        // current prefix, with their specificity (number of equality edges), sorted
        // most-specific first.
        let mut active: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); self.n];
        active[0] = vec![(0, 0)];
        let mut depth: isize = 0;

        loop {
            if depth < 0 {
                return false;
            }
            let d = depth as usize;
            let x = self.frontier[d];
            let fv = self.get_free_value(x, &active[d], d);
            if fv.backtracked {
                depth = fv.resume_depth;
                continue;
            }
            self.frontier[d] = fv.value;
            if fv.value > x {
                for i in d + 1..self.n {
                    self.frontier[i] = -1;
                }
            }
            if d + 1 == self.n {
                self.stats.free_tuples += 1;
                return true;
            }

            // Compute the next active set: children reached by the chosen label or by
            // a wildcard edge.
            let label = fv.value;
            let mut next: Vec<(NodeId, u32)> = Vec::new();
            for &(id, spec) in &active[d] {
                if let Some(c) = self.nodes[id].child(label) {
                    next.push((c, spec + 1));
                }
                if let Some(w) = self.nodes[id].wildcard_child() {
                    next.push((w, spec));
                }
            }
            next.sort_by_key(|&(_, spec)| std::cmp::Reverse(spec));
            let empty = next.is_empty();
            active[d + 1] = next;
            if empty {
                // Algorithm 4, line 13–16: no CDS node generalises the prefix at the
                // next level, hence none exists at any deeper level either (paths are
                // connected), so the current frontier completion is already free.
                // The deeper frontier components are left untouched: resetting them
                // here could move the frontier backwards past an already-reported
                // output, whereas keeping them is always sound.
                self.stats.free_tuples += 1;
                return true;
            }
            depth += 1;
        }
    }

    /// `getFreeValue(x, G)` (Algorithm 5): the smallest value `>= x` not covered by
    /// any interval of the nodes in the chain for depth `d`, caching the scan into
    /// the bottom node (Idea 5), answering from complete nodes (Idea 6), and
    /// triggering backtracking / truncation when the level is exhausted.
    fn get_free_value(&mut self, x: Val, active_d: &[(NodeId, u32)], d: usize) -> FreeValue {
        let chain: Vec<NodeId> = active_d
            .iter()
            .filter(|&&(id, _)| self.nodes[id].has_intervals() || self.nodes[id].is_complete())
            .map(|&(id, _)| id)
            .collect();
        if chain.is_empty() {
            if x > self.domain_max {
                return self.backtrack_bump(d);
            }
            return FreeValue { value: x, backtracked: false, resume_depth: d as isize };
        }
        let bottom = chain[0];

        // Idea 6: a complete bottom node already knows every value that can be free.
        if self.complete_nodes && self.nodes[bottom].is_complete() {
            self.stats.complete_node_hits += 1;
            let mut y = self.nodes[bottom].next_free_point(x);
            if y > self.domain_max {
                y = POS_INF;
            }
            if y == POS_INF {
                return self.backtrack_bump(d);
            }
            return FreeValue { value: y, backtracked: false, resume_depth: d as isize };
        }

        // Ping-pong to a fixpoint across the chain.
        let mut y = x;
        loop {
            let mut y2 = y;
            for &id in &chain {
                y2 = self.nodes[id].next(y2);
            }
            if y2 == y || y2 == POS_INF {
                y = y2;
                break;
            }
            y = y2;
        }
        // Values beyond the largest data value cannot be outputs: treat them as
        // exhausted so unconstrained levels still terminate.
        if y > self.domain_max {
            y = POS_INF;
        }

        if self.caching {
            if y > x {
                self.nodes[bottom].insert_interval(x - 1, y);
                self.stats.cached_intervals += 1;
            }
            if y < POS_INF {
                self.nodes[bottom].add_free_point(y, 1);
            }
            if self.nodes[bottom].has_no_free_value() {
                let resume_depth = self.truncate(bottom, d);
                return FreeValue { value: y, backtracked: true, resume_depth };
            }
        }

        if y == POS_INF {
            if self.complete_nodes {
                self.nodes[bottom].record_wrap();
            }
            return self.backtrack_bump(d);
        }
        FreeValue { value: y, backtracked: false, resume_depth: d as isize }
    }

    /// Backtracking when a level has no free value `>=` its frontier value: move to
    /// the previous attribute, bump its frontier value, and reset the deeper ones.
    fn backtrack_bump(&mut self, d: usize) -> FreeValue {
        if d >= 1 {
            self.frontier[d - 1] += 1;
            for i in d..self.n {
                self.frontier[i] = -1;
            }
        }
        FreeValue { value: POS_INF, backtracked: true, resume_depth: d as isize - 1 }
    }

    /// `truncate(u)` (Algorithm 6): walks from `u` towards the root; at the first
    /// equality edge it rules that single value out at the parent and stops.
    /// Returns the depth at which the walk stopped (`-1` means the root was passed,
    /// i.e. the whole space is exhausted).
    fn truncate(&mut self, u: NodeId, d: usize) -> isize {
        self.stats.truncations += 1;
        let mut depth = d as isize;
        let mut cur = u;
        loop {
            depth -= 1;
            if depth < 0 {
                return depth;
            }
            let (parent, label) = self.parents[cur];
            match label {
                Some(x) => {
                    self.nodes[parent].insert_interval(x - 1, x + 1);
                    return depth;
                }
                None => cur = parent,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::PatternComp::{Eq, Wildcard};
    use gj_storage::NEG_INF;

    fn c(pattern: Vec<PatternComp>, interval: (Val, Val)) -> Constraint {
        Constraint::new(pattern, interval)
    }

    #[test]
    fn reset_recycles_the_arena_and_restarts_the_search() {
        let mut cds = Cds::new(4, true, true).with_domain_max(50);
        cds.insert_constraint(&c(vec![Wildcard, Eq(1)], (1, 3)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1), Eq(2)], (10, 19)));
        assert!(cds.compute_free_tuple());
        let first = cds.frontier().to_vec();
        let nodes_before = cds.num_nodes();
        assert!(nodes_before > 1);

        cds.reset();
        assert_eq!(cds.num_nodes(), 1, "reset rewinds to the root");
        assert_eq!(cds.frontier(), &[-1, -1, -1, -1]);
        assert_eq!(cds.stats, CdsStats::default());

        // Re-inserting the same constraints reuses the arena slots and reproduces
        // the same first free tuple.
        cds.insert_constraint(&c(vec![Wildcard, Eq(1)], (1, 3)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1), Eq(2)], (10, 19)));
        assert_eq!(cds.num_nodes(), nodes_before);
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), first.as_slice());
    }

    /// Builds the CDS of Figure 2 in the paper (n = 5) and checks its shape.
    #[test]
    fn figure2_example() {
        let mut cds = Cds::new(5, true, true);
        cds.insert_constraint(&c(vec![Wildcard, Wildcard], (5, 7)));
        cds.insert_constraint(&c(vec![Wildcard, Wildcard, Eq(7), Wildcard], (4, 9)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1)], (1, 3)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1)], (9, 10)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1), Eq(2)], (10, 19)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1), Eq(3), Eq(5)], (3, 9)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1), Eq(3), Eq(5)], (1, 3)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1), Eq(3), Eq(5)], (10, 14)));
        cds.insert_constraint(&c(vec![Wildcard, Eq(1), Eq(3), Wildcard], (5, 10)));

        // <*, *> holds (5,7) on A2.
        let ww = cds.find_node(&[Wildcard, Wildcard]).unwrap();
        assert_eq!(cds.node(ww).intervals(), &[(5, 7)]);
        // <*, *, 7, *> holds (4,9) on A4.
        let w7w = cds.find_node(&[Wildcard, Wildcard, Eq(7), Wildcard]).unwrap();
        assert_eq!(cds.node(w7w).intervals(), &[(4, 9)]);
        // <*, 1> holds (1,3) and (9,10).
        let u1 = cds.find_node(&[Wildcard, Eq(1)]).unwrap();
        assert_eq!(cds.node(u1).intervals(), &[(1, 3), (9, 10)]);
        // <*, 1, 2> holds (10,19).
        let u12 = cds.find_node(&[Wildcard, Eq(1), Eq(2)]).unwrap();
        assert_eq!(cds.node(u12).intervals(), &[(10, 19)]);
        // v = <*, 1, 3, 5> holds (1,3), (3,9), (10,14) — (1,3) and (3,9) are NOT merged
        // because 3 itself is free.
        let v = cds.find_node(&[Wildcard, Eq(1), Eq(3), Eq(5)]).unwrap();
        assert_eq!(cds.node(v).intervals(), &[(1, 3), (3, 9), (10, 14)]);
        // w = <*, 1, 3, *> holds (5,10).
        let w = cds.find_node(&[Wildcard, Eq(1), Eq(3), Wildcard]).unwrap();
        assert_eq!(cds.node(w).intervals(), &[(5, 10)]);
        // u = <*, 1, 3> has child 5 -> v and wildcard child -> w (Figure 2, bottom).
        let u = cds.find_node(&[Wildcard, Eq(1), Eq(3)]).unwrap();
        assert_eq!(cds.node(u).child(5), Some(v));
        assert_eq!(cds.node(u).wildcard_child(), Some(w));
        assert_eq!(cds.stats.constraints_inserted, 9);
    }

    #[test]
    fn free_tuple_on_empty_cds_is_the_frontier() {
        let mut cds = Cds::new(3, true, true);
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[-1, -1, -1]);
        cds.set_frontier(vec![4, 2, 7]);
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[4, 2, 7]);
    }

    #[test]
    fn free_tuple_skips_root_level_gaps() {
        let mut cds = Cds::new(2, true, true);
        cds.insert_constraint(&c(vec![], (NEG_INF, 5)));
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[5, -1]);
        // A second gap pushes it further.
        cds.insert_constraint(&c(vec![], (4, 9)));
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[9, -1]);
    }

    #[test]
    fn free_tuple_descends_into_pattern_specific_gaps() {
        let mut cds = Cds::new(2, true, true);
        // Under first attribute = 3, the second attribute is blocked below 8.
        cds.insert_constraint(&c(vec![Eq(3)], (NEG_INF, 8)));
        cds.set_frontier(vec![3, -1]);
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[3, 8]);
        // Under a different first value the constraint does not apply.
        cds.set_frontier(vec![4, -1]);
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[4, -1]);
    }

    #[test]
    fn wildcard_gaps_apply_to_every_prefix() {
        let mut cds = Cds::new(3, true, true);
        cds.insert_constraint(&c(vec![Wildcard, Wildcard], (NEG_INF, 4)));
        cds.set_frontier(vec![7, 2, -1]);
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[7, 2, 4]);
    }

    #[test]
    fn exhausted_space_returns_false() {
        let mut cds = Cds::new(2, true, true);
        // Everything is covered at the root level.
        cds.insert_constraint(&c(vec![], (NEG_INF, POS_INF)));
        assert!(!cds.compute_free_tuple());
    }

    #[test]
    fn backtracking_bumps_the_parent_value() {
        let mut cds = Cds::new(2, true, true);
        // Under first attribute = 2 the second attribute is fully covered.
        cds.insert_constraint(&c(vec![Eq(2)], (NEG_INF, POS_INF)));
        cds.set_frontier(vec![2, -1]);
        assert!(cds.compute_free_tuple());
        // The CDS must move past first attribute 2 entirely.
        assert!(cds.frontier()[0] >= 3, "frontier {:?}", cds.frontier());
    }

    #[test]
    fn truncation_rules_out_the_branch_at_the_parent() {
        let mut cds = Cds::new(3, true, true);
        // Under (1, 5) the third attribute is fully covered.
        cds.insert_constraint(&c(vec![Eq(1), Eq(5)], (NEG_INF, POS_INF)));
        cds.set_frontier(vec![1, 5, -1]);
        assert!(cds.compute_free_tuple());
        let f = cds.frontier().to_vec();
        assert!(f.as_slice() > [1, 5, POS_INF - 1].as_slice() || f[1] != 5, "frontier {f:?}");
        // The parent node <1> must have an interval around 5 after the truncation.
        let p = cds.find_node(&[Eq(1)]).unwrap();
        assert!(cds.node(p).intervals().iter().any(|&(l, h)| l < 5 && 5 < h));
        assert!(cds.stats.truncations >= 1);
    }

    #[test]
    fn frontier_never_moves_backwards() {
        let mut cds = Cds::new(2, true, true);
        cds.set_frontier(vec![5, 5]);
        assert!(cds.compute_free_tuple());
        assert!(cds.frontier() >= &[5, 5][..]);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn set_frontier_rejects_backward_moves() {
        let mut cds = Cds::new(2, true, true);
        cds.set_frontier(vec![5, 5]);
        cds.set_frontier(vec![4, 0]);
    }

    #[test]
    fn caching_inserts_intervals_into_the_bottom_node() {
        let mut cds = Cds::new(2, true, true);
        // Two constraints at different nodes of the chain for attribute 1.
        cds.insert_constraint(&c(vec![Wildcard], (2, 6)));
        cds.insert_constraint(&c(vec![Eq(1)], (5, 9)));
        cds.set_frontier(vec![1, 3]);
        assert!(cds.compute_free_tuple());
        // 3..8 are covered by the union of the two gaps; the first free value is 9.
        assert_eq!(cds.frontier(), &[1, 9]);
        // The bottom node <1> must have cached the combined interval (Idea 5).
        let bottom = cds.find_node(&[Eq(1)]).unwrap();
        assert!(cds.node(bottom).next(3) >= 9, "cached: {:?}", cds.node(bottom).intervals());
        assert!(cds.stats.cached_intervals >= 1);
    }

    #[test]
    fn no_caching_still_computes_correct_free_values() {
        let mut cds = Cds::new(2, false, false);
        cds.insert_constraint(&c(vec![Wildcard], (2, 6)));
        cds.insert_constraint(&c(vec![Eq(1)], (5, 9)));
        cds.set_frontier(vec![1, 3]);
        assert!(cds.compute_free_tuple());
        assert_eq!(cds.frontier(), &[1, 9]);
        assert_eq!(cds.stats.cached_intervals, 0);
    }
}
