//! Gap-box constraints and patterns (Definition 4.1 of the paper).
//!
//! A constraint is an `n`-dimensional tuple `⟨c₀, …, c_{n-1}⟩` whose components are
//! equality values, wildcards, or exactly one open interval, after which every
//! component is a wildcard. The components before the interval form the constraint's
//! *pattern*. Geometrically a constraint is an axis-aligned box of the output space
//! that is known to contain no output tuple (a *gap box*).

use gj_storage::Val;

/// One pattern component: either "any value" or "exactly this value".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternComp {
    /// `˚` — matches every value of the attribute.
    Wildcard,
    /// Matches exactly this value.
    Eq(Val),
}

impl PatternComp {
    /// Whether the component matches `v`.
    #[inline]
    pub fn matches(&self, v: Val) -> bool {
        match self {
            PatternComp::Wildcard => true,
            PatternComp::Eq(x) => *x == v,
        }
    }
}

/// A gap-box constraint: equality/wildcard pattern, one open interval, implicit
/// wildcard suffix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The components before the interval (GAO positions `0 .. pattern.len()`).
    pub pattern: Vec<PatternComp>,
    /// The open interval `(low, high)` at GAO position `pattern.len()`. The ends may
    /// be `NEG_INF` / `POS_INF`.
    pub interval: (Val, Val),
}

impl Constraint {
    /// Creates a constraint; `interval` must be a non-empty open interval.
    pub fn new(pattern: Vec<PatternComp>, interval: (Val, Val)) -> Self {
        debug_assert!(interval.0 < interval.1, "interval must be non-empty: {interval:?}");
        Constraint { pattern, interval }
    }

    /// The GAO position carrying the interval.
    pub fn interval_pos(&self) -> usize {
        self.pattern.len()
    }

    /// Whether the constraint's gap box contains the full tuple `t` (in GAO order).
    /// Components after the interval are wildcards, so only the pattern and the
    /// interval position are inspected.
    pub fn covers(&self, t: &[Val]) -> bool {
        debug_assert!(t.len() > self.pattern.len());
        self.pattern.iter().zip(t).all(|(c, &v)| c.matches(v)) && {
            let v = t[self.pattern.len()];
            self.interval.0 < v && v < self.interval.1
        }
    }

    /// Whether the pattern (only) matches the prefix of `t`.
    pub fn pattern_matches(&self, t: &[Val]) -> bool {
        self.pattern.iter().zip(t).all(|(c, &v)| c.matches(v))
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = self
            .pattern
            .iter()
            .map(|c| match c {
                PatternComp::Wildcard => "*".to_string(),
                PatternComp::Eq(v) => v.to_string(),
            })
            .collect();
        parts.push(format!("({}, {})", self.interval.0, self.interval.1));
        write!(f, "<{}, *...>", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_storage::{NEG_INF, POS_INF};

    #[test]
    fn covers_checks_pattern_and_interval() {
        // The paper's example (1): <*, *, (5,7), *, *, *, *>.
        let c = Constraint::new(vec![PatternComp::Wildcard, PatternComp::Wildcard], (5, 7));
        assert!(c.covers(&[2, 6, 6, 1, 3, 7, 9]));
        assert!(!c.covers(&[2, 6, 7, 1, 3, 7, 9])); // 7 is not strictly inside (5,7)
        assert!(!c.covers(&[2, 6, 5, 1, 3, 7, 9]));
    }

    #[test]
    fn covers_with_equality_components() {
        // The paper's example (2): <*, *, 7, *, (4,9), *, *>.
        let c = Constraint::new(
            vec![
                PatternComp::Wildcard,
                PatternComp::Wildcard,
                PatternComp::Eq(7),
                PatternComp::Wildcard,
            ],
            (4, 9),
        );
        assert!(c.covers(&[2, 6, 7, 1, 5, 8, 9]));
        assert!(!c.covers(&[2, 6, 8, 1, 5, 8, 9])); // pattern mismatch on position 2
        assert!(!c.covers(&[2, 6, 7, 1, 9, 8, 9])); // 9 not strictly inside
    }

    #[test]
    fn infinite_ends_cover_everything_on_that_side() {
        let c = Constraint::new(vec![], (NEG_INF, 5));
        assert!(c.covers(&[-1, 0, 0]));
        assert!(c.covers(&[4, 0, 0]));
        assert!(!c.covers(&[5, 0, 0]));
        let c = Constraint::new(vec![], (10, POS_INF));
        assert!(c.covers(&[11, 0, 0]));
        assert!(!c.covers(&[10, 0, 0]));
    }

    #[test]
    fn interval_pos_is_pattern_length() {
        let c = Constraint::new(vec![PatternComp::Eq(3)], (1, 9));
        assert_eq!(c.interval_pos(), 1);
    }

    #[test]
    fn display_is_compact() {
        let c = Constraint::new(vec![PatternComp::Wildcard, PatternComp::Eq(7)], (4, 9));
        assert_eq!(c.to_string(), "<*, 7, (4, 9), *...>");
    }
}
