//! Multi-threaded Minesweeper (Section 4.10 of the paper), on the shared runtime.
//!
//! The output space is partitioned into `p = threads × granularity` morsels by
//! splitting the value range of the first GAO attribute at quantiles of the values
//! actually present in the data (`gj_runtime::partition_first_attribute` — lifted
//! from this module into the runtime so LFTJ shares it). Morsels go into a shared
//! queue; worker threads repeatedly grab the next unclaimed one (a simple form of
//! work stealing — exactly the behaviour the paper gets from the LogicBlox job
//! pool). The granularity factor `f` trades the work-stealing benefit on skewed
//! partitions against per-job overhead; the paper uses `f = 1` for acyclic and
//! `f = 8` for cyclic queries (Table 5).
//!
//! [`MsMorsels`] is Minesweeper's [`MorselSource`]: each worker thread builds **one**
//! [`MinesweeperExecutor`] and carries it across every morsel it claims —
//! [`run_range`](MinesweeperExecutor::run_range) recycles the CDS node arena and
//! keeps the probers' Idea 4 gap memos warm, instead of paying a fresh executor
//! (and a fresh CDS) per job.
//!
//! On top of that reuse sit the runtime's worker lifecycle hooks:
//!
//! * after each morsel, `morsel_done` **harvests the CDS carry-over**
//!   ([`MinesweeperExecutor::harvest_carryover`]): the value-independent skeleton
//!   gap constraints the morsel discovered enter the executor's ledger, and every
//!   later morsel re-seeds its reset CDS with them instead of starting cold — the
//!   constraints learned during search keep paying for themselves across ranges
//!   (the paper's core bet, extended across the morsel boundary). The ablation
//!   test below quantifies the probes saved.
//! * when the worker loop ends, `retire_worker` folds the worker's accumulated
//!   [`MsStats`] into run totals ([`MsMorsels::totals`]), so parallel executions
//!   report the same engine statistics serial ones do.
//!
//! The historical `par_count` free function (deprecated since the runtime landed)
//! is gone; use `PreparedQuery::par_count` in `gj-core`, or drive [`MsMorsels`]
//! through `gj_runtime::drive` directly.

use crate::engine::{MinesweeperExecutor, MsConfig, MsStats};
use gj_query::BoundQuery;
use gj_runtime::{ExecCtx, Morsel, MorselSource};
use gj_storage::Val;
use std::ops::ControlFlow;
use std::sync::{Mutex, PoisonError};

/// Minesweeper as a [`MorselSource`] for the `gj-runtime` morsel driver.
///
/// Row emission re-orders bindings into **variable-id order** (the sink protocol's
/// row shape) and disables Idea 8 batch counting (a counting-only optimisation);
/// the counting fast path ([`MorselSource::count_morsel`]) keeps the configuration
/// exactly as given, multiplicities included.
#[derive(Debug)]
pub struct MsMorsels<'a> {
    bq: &'a BoundQuery,
    config: MsConfig,
    /// Run totals folded from retired workers (the `retire_worker` hook).
    totals: Mutex<MsStats>,
}

/// Per-worker state of [`MsMorsels`]: the executor reused across claimed morsels
/// (tagged with the configuration it was built for, so a worker that switches
/// between the counting and the row path rebuilds instead of serving rows from a
/// batch-counting executor), the variable-order scratch row, and the worker's
/// accumulated statistics.
pub struct MsWorker<'a> {
    exec: Option<(MinesweeperExecutor<'a>, bool)>,
    scratch: Vec<Val>,
    totals: MsStats,
}

impl MsWorker<'_> {
    /// The statistics accumulated over every morsel this worker ran.
    pub fn totals(&self) -> MsStats {
        self.totals
    }

    /// Number of constraints in the reused executor's carry-over ledger (0 until
    /// the first `morsel_done` harvest, or when no executor was built yet).
    pub fn carryover_len(&self) -> usize {
        self.exec.as_ref().map_or(0, |(exec, _)| exec.carryover_len())
    }
}

impl<'a> MsMorsels<'a> {
    /// Wraps a bound query for morsel-driven execution under `config`.
    pub fn new(bq: &'a BoundQuery, config: MsConfig) -> Self {
        MsMorsels { bq, config, totals: Mutex::new(MsStats::default()) }
    }

    /// The engine statistics summed over every retired worker — available once
    /// `gj_runtime::drive` returned (all workers are retired by then).
    pub fn totals(&self) -> MsStats {
        *self.totals.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The worker's executor for the counting (`counting = true`, configuration as
    /// given) or row (`counting = false`, Idea 8 batch counting disabled — a
    /// counting-only optimisation whose multiplicities a row sink cannot express)
    /// path, creating or rebuilding it when the cached one served the other path.
    fn executor<'w>(
        &self,
        worker: &'w mut MsWorker<'a>,
        counting: bool,
    ) -> &'w mut MinesweeperExecutor<'a> {
        if worker.exec.as_ref().is_none_or(|&(_, kind)| kind != counting) {
            worker.exec = None;
        }
        let (exec, _) = worker.exec.get_or_insert_with(|| {
            let config = if counting {
                self.config.clone()
            } else {
                MsConfig { idea8_batch_counting: false, ..self.config.clone() }
            };
            let mut exec = MinesweeperExecutor::new(self.bq, config);
            // The morsel lifecycle harvests after every morsel, so recording the
            // carryable constraints pays off here (one-shot executors stay
            // unarmed and skip the recording cost).
            exec.arm_carryover();
            (exec, counting)
        });
        exec
    }
}

impl<'a> MorselSource for MsMorsels<'a> {
    type Worker = MsWorker<'a>;

    fn worker(&self) -> MsWorker<'a> {
        MsWorker { exec: None, scratch: vec![0; self.bq.num_vars()], totals: MsStats::default() }
    }

    fn run_morsel(
        &self,
        worker: &mut MsWorker<'a>,
        morsel: Morsel,
        ctx: &ExecCtx<'_>,
        emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
    ) {
        let gao = &self.bq.gao;
        if worker.exec.as_ref().is_none_or(|&(_, kind)| kind) {
            self.executor(worker, false);
        }
        let MsWorker { exec, scratch, totals } = worker;
        let Some((exec, _)) = exec.as_mut() else { return };
        let stats = exec.run_range_ctx(morsel.lo, morsel.hi, ctx, &mut |binding, _| {
            for (pos, &v) in gao.iter().enumerate() {
                scratch[v] = binding[pos];
            }
            emit(scratch)
        });
        totals.merge(&stats);
    }

    fn count_morsel(&self, worker: &mut MsWorker<'a>, morsel: Morsel, ctx: &ExecCtx<'_>) -> u64 {
        let exec = self.executor(worker, true);
        let mut rows = 0;
        let stats = exec.run_range_ctx(morsel.lo, morsel.hi, ctx, &mut |_, multiplicity| {
            rows += multiplicity;
            ControlFlow::Continue(())
        });
        worker.totals.merge(&stats);
        rows
    }

    /// The CDS carry-over harvest: the value-independent gap constraints this
    /// morsel discovered enter the executor's ledger, so the next morsel's reset
    /// CDS starts from everything the worker has already learned.
    fn morsel_done(&self, worker: &mut MsWorker<'a>, _morsel: Morsel) {
        if let Some((exec, _)) = worker.exec.as_mut() {
            exec.harvest_carryover();
        }
    }

    /// Folds the worker's accumulated statistics into the run totals.
    fn retire_worker(&self, worker: MsWorker<'a>) {
        self.totals.lock().unwrap_or_else(PoisonError::into_inner).merge(&worker.totals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{CatalogQuery, Instance};
    use gj_runtime::{drive, partition_first_attribute, CollectSink, CountSink};
    use gj_storage::{Graph, Relation};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(3)));
        inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
        inst
    }

    /// Drives a full parallel count through the runtime.
    fn par_count(bq: &BoundQuery, config: &MsConfig, threads: usize, parts: usize) -> u64 {
        let morsels = partition_first_attribute(bq, parts);
        let mut sink = CountSink::new();
        drive(&MsMorsels::new(bq, config.clone()), &morsels, threads, &mut sink);
        sink.rows()
    }

    #[test]
    fn parallel_count_matches_sequential_on_cyclic_query() {
        let inst = random_instance(11, 60, 0.12);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        for (threads, granularity) in [(2, 1), (4, 2), (3, 8)] {
            assert_eq!(
                par_count(&bq, &MsConfig::default(), threads, threads * granularity),
                sequential,
                "threads={threads} f={granularity}"
            );
        }
    }

    #[test]
    fn parallel_count_matches_sequential_on_acyclic_query() {
        let inst = random_instance(12, 50, 0.1);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        assert_eq!(par_count(&bq, &MsConfig::default(), 4, 8), sequential);
    }

    #[test]
    fn batch_counting_multiplicities_survive_the_parallel_count() {
        let inst = random_instance(15, 50, 0.12);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        let cfg = MsConfig { idea8_batch_counting: true, ..MsConfig::default() };
        assert_eq!(par_count(&bq, &cfg, 4, 8), sequential);
    }

    #[test]
    fn morsel_rows_reproduce_the_serial_emission_order() {
        let inst = random_instance(16, 40, 0.15);
        let q = CatalogQuery::FourCycle.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let mut expected = Vec::new();
        crate::engine::run(&bq, &MsConfig::default(), &mut |binding, _| {
            expected.push(bq.binding_to_var_order(binding));
        });
        let morsels = partition_first_attribute(&bq, 6);
        assert!(morsels.len() > 1, "test needs a real partition");
        let mut sink = CollectSink::new();
        drive(&MsMorsels::new(&bq, MsConfig::default()), &morsels, 3, &mut sink);
        assert_eq!(sink.into_rows(), expected);
    }

    #[test]
    fn mixing_count_and_row_paths_on_one_worker_stays_correct() {
        // A worker whose executor was first built for batch counting must not serve
        // the row path with it (batch multiplicities would be collapsed to single
        // rows); the adapter rebuilds on the path switch.
        let inst = random_instance(18, 40, 0.15);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let config = MsConfig { idea8_batch_counting: true, ..MsConfig::default() };
        let source = MsMorsels::new(&bq, config);
        let morsels = partition_first_attribute(&bq, 4);
        let mut worker = source.worker();
        let counted: u64 =
            morsels.iter().map(|&m| source.count_morsel(&mut worker, m, &ExecCtx::none())).sum();
        let mut rows = 0u64;
        for &m in &morsels {
            source.run_morsel(&mut worker, m, &ExecCtx::none(), &mut |_| {
                rows += 1;
                ControlFlow::Continue(())
            });
        }
        assert_eq!(rows, counted, "row path after count path must emit every row");
        assert_eq!(counted, crate::engine::count(&bq, &MsConfig::default()));
        // And switching back to counting still batch-counts correctly.
        let recounted: u64 =
            morsels.iter().map(|&m| source.count_morsel(&mut worker, m, &ExecCtx::none())).sum();
        assert_eq!(recounted, counted);
    }

    #[test]
    fn workers_reuse_one_executor_across_morsels() {
        // Driving several morsels through a single worker must agree with the
        // sequential count — the executor reset path is exercised directly here.
        let inst = random_instance(17, 45, 0.15);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let source = MsMorsels::new(&bq, MsConfig::default());
        let morsels = partition_first_attribute(&bq, 8);
        let mut worker = source.worker();
        let total: u64 =
            morsels.iter().map(|&m| source.count_morsel(&mut worker, m, &ExecCtx::none())).sum();
        assert_eq!(total, crate::engine::count(&bq, &MsConfig::default()));
    }

    /// Runs every morsel through one worker with the full lifecycle (count,
    /// harvest, retire) and returns (total rows, per-worker totals).
    fn lifecycle_count(source: &MsMorsels<'_>, morsels: &[Morsel]) -> (u64, MsStats) {
        let mut worker = source.worker();
        let mut rows = 0;
        for &m in morsels {
            rows += source.count_morsel(&mut worker, m, &ExecCtx::none());
            source.morsel_done(&mut worker, m);
        }
        let totals = worker.totals();
        source.retire_worker(worker);
        (rows, totals)
    }

    /// Ablation for the CDS constraint carry-over: identical results, measurably
    /// fewer probes — the constraints a morsel learned keep pruning the next one.
    #[test]
    fn cds_carryover_saves_probes_across_morsels() {
        let inst = random_instance(19, 60, 0.12);
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::ThreePath, CatalogQuery::FourCycle] {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let morsels = partition_first_attribute(&bq, 8);
            assert!(morsels.len() > 1, "the ablation needs a real partition");
            let cold_cfg = MsConfig { cds_carryover: false, ..MsConfig::default() };
            let warm_cfg = MsConfig::default();
            let cold_src = MsMorsels::new(&bq, cold_cfg);
            let warm_src = MsMorsels::new(&bq, warm_cfg);
            let (cold_rows, cold) = lifecycle_count(&cold_src, &morsels);
            let (warm_rows, warm) = lifecycle_count(&warm_src, &morsels);
            assert_eq!(warm_rows, cold_rows, "{}: carry-over must not change results", q.name);
            assert_eq!(warm_rows, crate::engine::count(&bq, &MsConfig::default()), "{}", q.name);
            assert_eq!(cold.carried_constraints, 0, "{}", q.name);
            assert!(warm.carried_constraints > 0, "{}: no constraint was carried over", q.name);
            assert!(
                warm.probes < cold.probes,
                "{}: carry-over saved no probes ({} vs {})",
                q.name,
                warm.probes,
                cold.probes
            );
            // The run totals folded by retire_worker match the worker's own.
            assert_eq!(warm_src.totals().probes, warm.probes, "{}", q.name);
            assert_eq!(cold_src.totals().results, cold_rows, "{}", q.name);
        }
    }

    /// The harvest only adopts each constraint once, and the ledger survives the
    /// morsel sequence (visible through the public worker API).
    #[test]
    fn carryover_ledger_deduplicates_and_persists() {
        let inst = random_instance(20, 50, 0.15);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let source = MsMorsels::new(&bq, MsConfig::default());
        let morsels = partition_first_attribute(&bq, 6);
        assert!(morsels.len() > 2, "the test needs several morsels");
        let mut worker = source.worker();
        assert_eq!(worker.carryover_len(), 0);
        let mut sizes = Vec::new();
        for &m in &morsels {
            source.count_morsel(&mut worker, m, &ExecCtx::none());
            source.morsel_done(&mut worker, m);
            sizes.push(worker.carryover_len());
        }
        assert!(sizes[0] > 0, "the first morsel must contribute to the ledger");
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "the ledger never shrinks: {sizes:?}");
        // Re-running the same morsels discovers nothing new: every gap is already
        // in the ledger, so its size is stable.
        let stable = worker.carryover_len();
        for &m in &morsels {
            source.count_morsel(&mut worker, m, &ExecCtx::none());
            source.morsel_done(&mut worker, m);
        }
        assert_eq!(worker.carryover_len(), stable, "a repeated pass must deduplicate");
    }

    /// Carry-over through the actual multi-threaded driver: counts agree with the
    /// serial engine for every thread/granularity mix, and the folded totals see
    /// the carried constraints.
    #[test]
    fn parallel_carryover_keeps_counts_exact() {
        let inst = random_instance(21, 60, 0.12);
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::ThreePath] {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let sequential = crate::engine::count(&bq, &MsConfig::default());
            for (threads, parts) in [(2, 6), (4, 16), (3, 24)] {
                let source = MsMorsels::new(&bq, MsConfig::default());
                let morsels = partition_first_attribute(&bq, parts);
                let mut sink = CountSink::new();
                drive(&source, &morsels, threads, &mut sink);
                assert_eq!(sink.rows(), sequential, "{} t={threads} p={parts}", q.name);
                let totals = source.totals();
                assert_eq!(totals.results, sequential, "{} t={threads} p={parts}", q.name);
                if morsels.len() > 1 {
                    assert!(
                        totals.carried_constraints > 0,
                        "{} t={threads} p={parts}: nothing carried",
                        q.name
                    );
                }
            }
        }
    }
}
