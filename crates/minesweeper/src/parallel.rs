//! Multi-threaded Minesweeper (Section 4.10 of the paper).
//!
//! The output space is partitioned into `p = threads × granularity` jobs by splitting
//! the value range of the first GAO attribute at quantiles of the values actually
//! present in the data. Jobs go into a shared queue; worker threads repeatedly grab
//! the next unclaimed job (a simple form of work stealing — exactly the behaviour the
//! paper gets from the LogicBlox job pool). The granularity factor `f` trades the
//! work-stealing benefit on skewed partitions against per-job overhead; the paper
//! uses `f = 1` for acyclic and `f = 8` for cyclic queries (Table 5).

use crate::engine::{MinesweeperExecutor, MsConfig};
use gj_query::BoundQuery;
use gj_storage::{Val, POS_INF};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Counts the output of the bound query with Minesweeper using
/// `config.threads` worker threads and `config.threads * config.granularity` jobs.
///
/// Falls back to the sequential executor when one thread is requested or when the
/// first attribute has too few distinct values to split.
pub fn par_count(bq: &BoundQuery, config: &MsConfig) -> u64 {
    let threads = config.threads.max(1);
    if threads == 1 {
        return crate::engine::count(bq, config);
    }
    let ranges = partition_first_attribute(bq, threads * config.granularity.max(1));
    if ranges.len() <= 1 {
        return crate::engine::count(bq, config);
    }

    // A shared job queue: workers claim the next unclaimed range with a single
    // fetch_add, which gives the same work-stealing behaviour as a channel
    // without any external dependency.
    let total = AtomicU64::new(0);
    let jobs: Vec<(Val, Val)> = ranges;
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let total = &total;
            let next = &next;
            let jobs = &jobs;
            scope.spawn(move || {
                let mut local = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(lo, hi)) = jobs.get(i) else { break };
                    local +=
                        MinesweeperExecutor::new(bq, config.clone()).with_range0(lo, hi).count();
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

/// Splits the domain of the first GAO attribute into at most `parts` half-open ranges
/// `[lo, hi)` whose boundaries are values present in the data, covering the whole
/// axis.
fn partition_first_attribute(bq: &BoundQuery, parts: usize) -> Vec<(Val, Val)> {
    let first_var = bq.gao[0];
    // Any atom containing the first GAO variable has it as its first index level.
    let Some(atom) = bq.atoms.iter().find(|a| a.vars.first() == Some(&first_var)) else {
        return vec![(-1, POS_INF)];
    };
    let (lo, hi) = atom.index.root_range();
    let values = &atom.index.level_values(0)[lo..hi];
    if values.is_empty() || parts <= 1 {
        return vec![(-1, POS_INF)];
    }
    let parts = parts.min(values.len());
    let mut ranges = Vec::with_capacity(parts);
    let mut start = -1;
    for k in 1..parts {
        let boundary = values[k * values.len() / parts];
        if boundary > start {
            ranges.push((start, boundary));
            start = boundary;
        }
    }
    ranges.push((start, POS_INF));
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{CatalogQuery, Instance};
    use gj_storage::{Graph, Relation};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(3)));
        inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
        inst
    }

    #[test]
    fn parallel_count_matches_sequential_on_cyclic_query() {
        let inst = random_instance(11, 60, 0.12);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        for (threads, granularity) in [(2, 1), (4, 2), (3, 8)] {
            let cfg = MsConfig { threads, granularity, ..MsConfig::default() };
            assert_eq!(par_count(&bq, &cfg), sequential, "threads={threads} f={granularity}");
        }
    }

    #[test]
    fn parallel_count_matches_sequential_on_acyclic_query() {
        let inst = random_instance(12, 50, 0.1);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        let cfg = MsConfig { threads: 4, granularity: 2, ..MsConfig::default() };
        assert_eq!(par_count(&bq, &cfg), sequential);
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let inst = random_instance(13, 30, 0.15);
        let q = CatalogQuery::FourCycle.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let cfg = MsConfig { threads: 1, granularity: 8, ..MsConfig::default() };
        assert_eq!(par_count(&bq, &cfg), crate::engine::count(&bq, &MsConfig::default()));
    }

    #[test]
    fn partitions_cover_the_axis_without_overlap() {
        let inst = random_instance(14, 40, 0.2);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let ranges = partition_first_attribute(&bq, 7);
        assert!(!ranges.is_empty());
        assert_eq!(ranges[0].0, -1);
        assert_eq!(ranges.last().unwrap().1, POS_INF);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must tile the axis");
            assert!(w[0].0 < w[0].1);
        }
    }
}
