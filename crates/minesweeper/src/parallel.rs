//! Multi-threaded Minesweeper (Section 4.10 of the paper), on the shared runtime.
//!
//! The output space is partitioned into `p = threads × granularity` morsels by
//! splitting the value range of the first GAO attribute at quantiles of the values
//! actually present in the data (`gj_runtime::partition_first_attribute` — lifted
//! from this module into the runtime so LFTJ shares it). Morsels go into a shared
//! queue; worker threads repeatedly grab the next unclaimed one (a simple form of
//! work stealing — exactly the behaviour the paper gets from the LogicBlox job
//! pool). The granularity factor `f` trades the work-stealing benefit on skewed
//! partitions against per-job overhead; the paper uses `f = 1` for acyclic and
//! `f = 8` for cyclic queries (Table 5).
//!
//! [`MsMorsels`] is Minesweeper's [`MorselSource`]: each worker thread builds **one**
//! [`MinesweeperExecutor`] and carries it across every morsel it claims —
//! [`run_range`](MinesweeperExecutor::run_range) recycles the CDS node arena and
//! keeps the probers' Idea 4 gap memos warm, instead of paying a fresh executor
//! (and a fresh CDS) per job. Beyond the historical count-only driver this supports
//! full sink execution: parallel enumerate/collect/first_k through the runtime's
//! ordered shard merge.

use crate::engine::{MinesweeperExecutor, MsConfig};
use gj_query::BoundQuery;
use gj_runtime::{drive, partition_first_attribute, CountSink, Morsel, MorselSource};
use gj_storage::Val;
use std::ops::ControlFlow;

/// Minesweeper as a [`MorselSource`] for the `gj-runtime` morsel driver.
///
/// Row emission re-orders bindings into **variable-id order** (the sink protocol's
/// row shape) and disables Idea 8 batch counting (a counting-only optimisation);
/// the counting fast path ([`MorselSource::count_morsel`]) keeps the configuration
/// exactly as given, multiplicities included.
#[derive(Debug, Clone)]
pub struct MsMorsels<'a> {
    bq: &'a BoundQuery,
    config: MsConfig,
}

/// Per-worker state of [`MsMorsels`]: the executor reused across claimed morsels
/// (tagged with the configuration it was built for, so a worker that switches
/// between the counting and the row path rebuilds instead of serving rows from a
/// batch-counting executor), plus the variable-order scratch row.
pub struct MsWorker<'a> {
    exec: Option<(MinesweeperExecutor<'a>, bool)>,
    scratch: Vec<Val>,
}

impl<'a> MsMorsels<'a> {
    /// Wraps a bound query for morsel-driven execution under `config`.
    pub fn new(bq: &'a BoundQuery, config: MsConfig) -> Self {
        MsMorsels { bq, config }
    }

    /// The worker's executor for the counting (`counting = true`, configuration as
    /// given) or row (`counting = false`, Idea 8 batch counting disabled — a
    /// counting-only optimisation whose multiplicities a row sink cannot express)
    /// path, creating or rebuilding it when the cached one served the other path.
    fn executor<'w>(
        &self,
        worker: &'w mut MsWorker<'a>,
        counting: bool,
    ) -> &'w mut MinesweeperExecutor<'a> {
        if worker.exec.as_ref().is_none_or(|&(_, kind)| kind != counting) {
            let config = if counting {
                self.config.clone()
            } else {
                MsConfig { idea8_batch_counting: false, ..self.config.clone() }
            };
            worker.exec = Some((MinesweeperExecutor::new(self.bq, config), counting));
        }
        &mut worker.exec.as_mut().expect("executor just ensured").0
    }
}

impl<'a> MorselSource for MsMorsels<'a> {
    type Worker = MsWorker<'a>;

    fn worker(&self) -> MsWorker<'a> {
        MsWorker { exec: None, scratch: vec![0; self.bq.num_vars()] }
    }

    fn run_morsel(
        &self,
        worker: &mut MsWorker<'a>,
        morsel: Morsel,
        emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
    ) {
        let gao = &self.bq.gao;
        if worker.exec.as_ref().is_none_or(|&(_, kind)| kind) {
            self.executor(worker, false);
        }
        let MsWorker { exec, scratch } = worker;
        let exec = &mut exec.as_mut().expect("row executor just ensured").0;
        exec.run_range(morsel.lo, morsel.hi, &mut |binding, _| {
            for (pos, &v) in gao.iter().enumerate() {
                scratch[v] = binding[pos];
            }
            emit(scratch)
        });
    }

    fn count_morsel(&self, worker: &mut MsWorker<'a>, morsel: Morsel) -> u64 {
        let exec = self.executor(worker, true);
        let mut rows = 0;
        exec.run_range(morsel.lo, morsel.hi, &mut |_, multiplicity| {
            rows += multiplicity;
            ControlFlow::Continue(())
        });
        rows
    }
}

/// Counts the output of the bound query with Minesweeper using
/// `config.threads` worker threads and `config.threads * config.granularity`
/// morsels.
///
/// Falls back to the sequential executor when one thread is requested or when the
/// first attribute has too few distinct values to split.
#[deprecated(
    since = "0.1.0",
    note = "use `PreparedQuery::run_parallel` (or `gj_runtime::drive` over `MsMorsels`), which \
            also supports parallel enumerate/collect/first_k/exists"
)]
pub fn par_count(bq: &BoundQuery, config: &MsConfig) -> u64 {
    let threads = config.threads.max(1);
    if threads == 1 {
        return crate::engine::count(bq, config);
    }
    let morsels = partition_first_attribute(bq, threads * config.granularity.max(1));
    if morsels.len() <= 1 {
        return crate::engine::count(bq, config);
    }
    let mut sink = CountSink::new();
    drive(&MsMorsels::new(bq, config.clone()), &morsels, threads, &mut sink);
    sink.rows()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use gj_query::{CatalogQuery, Instance};
    use gj_runtime::CollectSink;
    use gj_storage::{Graph, Relation};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(3)));
        inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
        inst
    }

    #[test]
    fn parallel_count_matches_sequential_on_cyclic_query() {
        let inst = random_instance(11, 60, 0.12);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        for (threads, granularity) in [(2, 1), (4, 2), (3, 8)] {
            let cfg = MsConfig { threads, granularity, ..MsConfig::default() };
            assert_eq!(par_count(&bq, &cfg), sequential, "threads={threads} f={granularity}");
        }
    }

    #[test]
    fn parallel_count_matches_sequential_on_acyclic_query() {
        let inst = random_instance(12, 50, 0.1);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        let cfg = MsConfig { threads: 4, granularity: 2, ..MsConfig::default() };
        assert_eq!(par_count(&bq, &cfg), sequential);
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let inst = random_instance(13, 30, 0.15);
        let q = CatalogQuery::FourCycle.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let cfg = MsConfig { threads: 1, granularity: 8, ..MsConfig::default() };
        assert_eq!(par_count(&bq, &cfg), crate::engine::count(&bq, &MsConfig::default()));
    }

    #[test]
    fn batch_counting_multiplicities_survive_the_parallel_count() {
        let inst = random_instance(15, 50, 0.12);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let sequential = crate::engine::count(&bq, &MsConfig::default());
        let cfg = MsConfig {
            idea8_batch_counting: true,
            threads: 4,
            granularity: 2,
            ..MsConfig::default()
        };
        assert_eq!(par_count(&bq, &cfg), sequential);
    }

    #[test]
    fn morsel_rows_reproduce_the_serial_emission_order() {
        let inst = random_instance(16, 40, 0.15);
        let q = CatalogQuery::FourCycle.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let mut expected = Vec::new();
        crate::engine::run(&bq, &MsConfig::default(), &mut |binding, _| {
            expected.push(bq.binding_to_var_order(binding));
        });
        let morsels = partition_first_attribute(&bq, 6);
        assert!(morsels.len() > 1, "test needs a real partition");
        let mut sink = CollectSink::new();
        drive(&MsMorsels::new(&bq, MsConfig::default()), &morsels, 3, &mut sink);
        assert_eq!(sink.into_rows(), expected);
    }

    #[test]
    fn mixing_count_and_row_paths_on_one_worker_stays_correct() {
        // A worker whose executor was first built for batch counting must not serve
        // the row path with it (batch multiplicities would be collapsed to single
        // rows); the adapter rebuilds on the path switch.
        let inst = random_instance(18, 40, 0.15);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let config = MsConfig { idea8_batch_counting: true, ..MsConfig::default() };
        let source = MsMorsels::new(&bq, config);
        let morsels = partition_first_attribute(&bq, 4);
        let mut worker = source.worker();
        let counted: u64 = morsels.iter().map(|&m| source.count_morsel(&mut worker, m)).sum();
        let mut rows = 0u64;
        for &m in &morsels {
            source.run_morsel(&mut worker, m, &mut |_| {
                rows += 1;
                ControlFlow::Continue(())
            });
        }
        assert_eq!(rows, counted, "row path after count path must emit every row");
        assert_eq!(counted, crate::engine::count(&bq, &MsConfig::default()));
        // And switching back to counting still batch-counts correctly.
        let recounted: u64 = morsels.iter().map(|&m| source.count_morsel(&mut worker, m)).sum();
        assert_eq!(recounted, counted);
    }

    #[test]
    fn workers_reuse_one_executor_across_morsels() {
        // Driving several morsels through a single worker must agree with the
        // sequential count — the executor reset path is exercised directly here.
        let inst = random_instance(17, 45, 0.15);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let source = MsMorsels::new(&bq, MsConfig::default());
        let morsels = partition_first_attribute(&bq, 8);
        let mut worker = source.worker();
        let total: u64 = morsels.iter().map(|&m| source.count_morsel(&mut worker, m)).sum();
        assert_eq!(total, crate::engine::count(&bq, &MsConfig::default()));
    }
}
