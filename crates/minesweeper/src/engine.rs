//! The Minesweeper outer loop (Algorithm 3 of the paper) with Ideas 2, 4 and 7.
//!
//! Each iteration asks the CDS for a free tuple, probes every atom around it, and
//! either reports the tuple as an output (when every probe confirms membership and
//! every order filter holds) or feeds the discovered gap boxes back:
//!
//! * gaps from **skeleton** atoms are inserted into the CDS;
//! * gaps from **non-skeleton** atoms (Idea 7, cyclic queries only) and violated
//!   order filters only advance the frontier past the gap;
//! * in every case the frontier advances at least to the successor of the probed
//!   tuple (Idea 2 — outputs never insert unit gaps; and a probed non-output can
//!   always be stepped over, which also guarantees termination regardless of which
//!   optimisations are enabled).

use crate::cds::Cds;
use crate::constraint::{Constraint, PatternComp};
use crate::counting::count_last_level_run;
use crate::gaps::{build_probers, AtomProber, ProbeOutcome, ProbeStats};
use gj_query::gao::is_neo;
use gj_query::{acyclic_skeleton, BoundQuery, Hypergraph, Query};
use gj_runtime::ExecCtx;
use gj_storage::{Val, POS_INF};
use std::ops::ControlFlow;

/// Configuration of the Minesweeper executor. Every flag corresponds to one of the
/// paper's implementation ideas so the ablation tables can be regenerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsConfig {
    /// Idea 4: remember the last gap per relation and skip redundant `seekGap` calls.
    pub idea4_gap_memo: bool,
    /// Idea 5: cache ping-pong results as intervals in the bottom chain node.
    pub idea5_caching: bool,
    /// Idea 6: complete nodes short-circuit the chain walk.
    pub idea6_complete_nodes: bool,
    /// Idea 7: for β-cyclic queries, only a β-acyclic skeleton of the atoms inserts
    /// constraints; the other atoms' gaps just advance the frontier.
    pub idea7_skeleton: bool,
    /// Idea 8 (#Minesweeper-style counting): when only a count is requested, count
    /// whole runs of outputs that share the first `n-1` attributes in one step
    /// instead of enumerating them tuple by tuple.
    pub idea8_batch_counting: bool,
    /// CDS constraint carry-over between the runs of one reused executor (the
    /// morsel lifecycle): skeleton gap constraints that do not fix the first GAO
    /// attribute by equality are value-independent facts about the data, so a
    /// worker that harvests them ([`MinesweeperExecutor::harvest_carryover`],
    /// driven by the runtime's `morsel_done` hook) re-seeds its reset CDS with
    /// them instead of re-discovering every gap probe by probe. The recording is
    /// additionally gated on [`MinesweeperExecutor::arm_carryover`] — only
    /// executors whose lifecycle will actually harvest (the morsel workers) pay
    /// it; one-shot serial executors never do. Off in [`MsConfig::baseline`] so
    /// the ablation tables can quantify the probes saved.
    pub cds_carryover: bool,
    /// Number of worker threads for the morsel-driven parallel execution
    /// (`PreparedQuery::run_parallel` in `gj-core`, [`crate::parallel::MsMorsels`]
    /// underneath; 1 = sequential).
    pub threads: usize,
    /// Granularity factor `f` of Section 4.10: the output space is split into
    /// `threads * granularity` jobs.
    pub granularity: usize,
}

impl Default for MsConfig {
    fn default() -> Self {
        MsConfig {
            idea4_gap_memo: true,
            idea5_caching: true,
            idea6_complete_nodes: true,
            idea7_skeleton: true,
            idea8_batch_counting: false,
            cds_carryover: true,
            threads: 1,
            granularity: 1,
        }
    }
}

impl MsConfig {
    /// The configuration used as the "no ideas" baseline of the ablation tables.
    pub fn baseline() -> Self {
        MsConfig {
            idea4_gap_memo: false,
            idea5_caching: true,
            idea6_complete_nodes: false,
            idea7_skeleton: false,
            idea8_batch_counting: false,
            cds_carryover: false,
            threads: 1,
            granularity: 1,
        }
    }
}

/// Execution statistics reported by the executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsStats {
    /// Number of output tuples (after order filters).
    pub results: u64,
    /// Number of outer-loop iterations (free tuples probed).
    pub iterations: u64,
    /// Number of `seekGap` probes issued against the trie indexes.
    pub probes: u64,
    /// Number of probes avoided by the Idea 4 memo.
    pub probes_skipped: u64,
    /// Number of constraints inserted into the CDS.
    pub constraints_inserted: u64,
    /// Number of intervals cached by `getFreeValue` (Idea 5).
    pub cached_intervals: u64,
    /// Number of branch truncations.
    pub truncations: u64,
    /// Number of `getFreeValue` calls answered by a complete node (Idea 6).
    pub complete_node_hits: u64,
    /// Number of CDS nodes allocated.
    pub cds_nodes: u64,
    /// Number of carried-over constraints the run's CDS was re-seeded with (they
    /// are also counted by `constraints_inserted`).
    pub carried_constraints: u64,
}

impl MsStats {
    /// Folds another run's statistics into this one (counters add up; `cds_nodes`,
    /// an arena high-water mark, takes the maximum) — how a worker accumulates its
    /// per-morsel statistics into per-worker totals.
    pub fn merge(&mut self, other: &MsStats) {
        self.results += other.results;
        self.iterations += other.iterations;
        self.probes += other.probes;
        self.probes_skipped += other.probes_skipped;
        self.constraints_inserted += other.constraints_inserted;
        self.cached_intervals += other.cached_intervals;
        self.truncations += other.truncations;
        self.complete_node_hits += other.complete_node_hits;
        self.cds_nodes = self.cds_nodes.max(other.cds_nodes);
        self.carried_constraints += other.carried_constraints;
    }
}

/// The Minesweeper executor for one bound query.
pub struct MinesweeperExecutor<'a> {
    bq: &'a BoundQuery,
    config: MsConfig,
    /// Per atom: whether it inserts constraints into the CDS (Idea 7).
    skeleton: Vec<bool>,
    /// Whether the skeleton atoms form a chain-compatible (β-acyclic + NEO) structure,
    /// which is what makes interval caching into the bottom node sound.
    chain_mode: bool,
    /// Order filters indexed by the GAO position of their later variable.
    filters: Vec<Vec<(usize, bool)>>,
    /// Restriction of the first GAO attribute to `[lo, hi)` (parallel partitioning).
    range0: Option<(Val, Val)>,
    /// Per-atom probers, built once and reused across runs. Their Idea 4 memos are
    /// *facts about the data* (a gap box stays a gap box whatever range is being
    /// scanned), so they deliberately survive from one run to the next — a worker
    /// carrying one executor across morsels starts each morsel pre-warmed.
    probers: Vec<AtomProber>,
    /// The constraint store, allocated once and [`reset`](Cds::reset) per run so
    /// repeated executions (one per claimed morsel) recycle the node arena instead
    /// of re-allocating it.
    cds: Cds,
    /// Carry-over ledger: skeleton gap constraints from earlier runs that do not
    /// fix the first GAO attribute by equality. They are value-independent facts
    /// about the data, so every later run re-seeds its reset CDS with them (the
    /// generalisation of the Idea 4 memo from "last gap per relation" to "every
    /// gap a worker has learned"). Populated only through
    /// [`harvest_carryover`](Self::harvest_carryover) — the runtime's per-morsel
    /// lifecycle hook — so plain serial runs behave exactly as before.
    carry: Vec<Constraint>,
    /// Dedup set over `carry` (the same gap is re-discovered by every morsel that
    /// touches it; the ledger keeps one copy).
    carry_seen: std::collections::HashSet<Constraint>,
    /// Carryable constraints discovered by the current/most recent run, staged
    /// until (and unless) the worker lifecycle harvests them.
    fresh_carry: Vec<Constraint>,
    /// Whether gap recording is armed ([`arm_carryover`](Self::arm_carryover)).
    /// One-shot executors never arm, so plain serial runs pay no recording cost;
    /// the morsel worker lifecycle arms its executors because it will harvest.
    carry_armed: bool,
}

/// Ledger cap: beyond this many carried constraints the per-run re-seeding cost
/// outweighs the probes it saves, so harvesting stops adopting new ones.
const CARRY_CAP: usize = 1 << 16;

impl<'a> MinesweeperExecutor<'a> {
    /// Prepares an executor.
    pub fn new(bq: &'a BoundQuery, config: MsConfig) -> Self {
        let query = &bq.query;
        let beta_acyclic = Hypergraph::of_query(query).is_beta_acyclic();
        let skeleton: Vec<bool> = if beta_acyclic {
            vec![true; query.num_atoms()]
        } else if config.idea7_skeleton {
            acyclic_skeleton(query)
        } else {
            vec![true; query.num_atoms()]
        };
        let chain_mode = Self::skeleton_is_chain_compatible(query, &skeleton, &bq.gao);
        let caching = config.idea5_caching && chain_mode;
        // Idea 6 assumes that by the time a node wraps twice, every value that can
        // still be free under its pattern has been *scanned* and recorded. Frontier
        // jumps that bypass the CDS — escapes from non-skeleton gaps (Idea 7), from
        // violated order filters, or from Idea 8 batch counting — skip values without
        // scanning them, which would make a "complete" node silently drop outputs
        // reached under a different prefix. Complete nodes are therefore only enabled
        // when no such jump can occur: β-acyclic (all-skeleton), filter-free queries,
        // which is exactly the setting of the paper's Section 4.7 and Tables 1–2.
        let no_frontier_jumps =
            query.filters.is_empty() && skeleton.iter().all(|&s| s) && !config.idea8_batch_counting;
        let complete = config.idea6_complete_nodes && caching && no_frontier_jumps;
        // No output tuple can contain a value larger than the largest data value, so
        // the CDS search is bounded by it.
        let domain_max = bq.atoms.iter().filter_map(|a| a.index.max_value()).max().unwrap_or(-1);
        let probers = build_probers(bq, &skeleton);
        let cds = Cds::new(bq.num_vars(), caching, complete).with_domain_max(domain_max);
        MinesweeperExecutor {
            bq,
            config,
            skeleton,
            chain_mode,
            filters: bq.filters_by_gao_pos(),
            range0: None,
            probers,
            cds,
            carry: Vec::new(),
            carry_seen: std::collections::HashSet::new(),
            fresh_carry: Vec::new(),
            carry_armed: false,
        }
    }

    /// Arms the CDS constraint carry-over (no-op when
    /// [`MsConfig::cds_carryover`] is off): from the next run on, the executor
    /// records the carryable gap constraints it discovers so
    /// [`harvest_carryover`](Self::harvest_carryover) can adopt them. Recording
    /// is opt-in because it only pays when a later run will re-seed from the
    /// ledger — the morsel worker lifecycle arms its executors; one-shot serial
    /// executors stay unarmed and behave exactly as before.
    pub fn arm_carryover(&mut self) {
        self.carry_armed = self.config.cds_carryover;
    }

    /// Restricts the executor to free tuples whose first GAO attribute lies in
    /// `[lo, hi)` — the partitioning used by the multi-threaded driver (Section 4.10).
    pub fn with_range0(mut self, lo: Val, hi: Val) -> Self {
        self.range0 = Some((lo, hi));
        self
    }

    /// Runs the query restricted to first-GAO-attribute values in `[lo, hi)` — the
    /// morsel entry point of the parallel runtime. Unlike constructing a fresh
    /// executor per range, repeated `run_range` calls on one executor reuse the
    /// probers (with their warmed-up Idea 4 gap memos) and recycle the CDS node
    /// arena, so a worker thread pays the executor setup once for all the morsels
    /// it claims.
    pub fn run_range<F: FnMut(&[Val], u64) -> ControlFlow<()>>(
        &mut self,
        lo: Val,
        hi: Val,
        emit: &mut F,
    ) -> MsStats {
        self.run_range_ctx(lo, hi, &ExecCtx::none(), emit)
    }

    /// [`run_range`](Self::run_range) under an execution context: the outer loop
    /// additionally polls `ctx` once per iteration (at the coarse
    /// [`CHECK_STRIDE`](gj_runtime::CHECK_STRIDE)), so a stop flag, cancel token or
    /// deadline is honored inside a long morsel with bounded latency.
    pub fn run_range_ctx<F: FnMut(&[Val], u64) -> ControlFlow<()>>(
        &mut self,
        lo: Val,
        hi: Val,
        ctx: &ExecCtx<'_>,
        emit: &mut F,
    ) -> MsStats {
        // The restriction is transient: it must not leak into a later full-range
        // run on this (reusable) executor.
        let previous = self.range0.replace((lo, hi));
        let stats = self.try_run_ctx(ctx, emit);
        self.range0 = previous;
        stats
    }

    /// Whether the caching machinery (Ideas 5/6) is active for this query and GAO.
    pub fn chain_mode(&self) -> bool {
        self.chain_mode
    }

    /// Adopts the carryable constraints discovered by the most recent run into the
    /// executor's carry-over ledger, returning how many were new. The next run
    /// re-seeds its reset CDS with the whole ledger instead of starting cold.
    ///
    /// This is the engine half of the runtime's `morsel_done` lifecycle hook: a
    /// worker calls it after each morsel, so every gap learned on one range prunes
    /// the search on all later ranges. It is deliberately **not** called by the
    /// plain serial entry points — carry-over is a worker-lifecycle feature, and a
    /// one-shot run has nothing to carry anything over to.
    pub fn harvest_carryover(&mut self) -> usize {
        let mut adopted = 0;
        for c in self.fresh_carry.drain(..) {
            if self.carry.len() >= CARRY_CAP {
                break;
            }
            if self.carry_seen.insert(c.clone()) {
                self.carry.push(c);
                adopted += 1;
            }
        }
        self.fresh_carry.clear();
        adopted
    }

    /// Number of constraints currently in the carry-over ledger.
    pub fn carryover_len(&self) -> usize {
        self.carry.len()
    }

    /// Whether a skeleton gap constraint is a morsel-independent fact: morsels
    /// partition the **first** GAO attribute, so any constraint that does not pin
    /// it by equality applies identically to every range — either its interval
    /// lies on the first attribute (an empty pattern) or its pattern starts with a
    /// wildcard.
    fn carries_across_morsels(c: &Constraint) -> bool {
        !matches!(c.pattern.first(), Some(PatternComp::Eq(_)))
    }

    /// The skeleton flags in atom order (true = inserts constraints).
    pub fn skeleton(&self) -> &[bool] {
        &self.skeleton
    }

    /// The constraint-inserting atoms must form a β-acyclic (forest) subquery for
    /// which the GAO is a nested elimination order; only then is it sound to cache
    /// chain-walk results into the bottom node (Proposition 4.2).
    fn skeleton_is_chain_compatible(query: &Query, skeleton: &[bool], gao: &[usize]) -> bool {
        let sub = Query {
            name: format!("{}-skeleton", query.name),
            var_names: query.var_names.clone(),
            atoms: query
                .atoms
                .iter()
                .zip(skeleton)
                .filter(|(_, &keep)| keep)
                .map(|(a, _)| a.clone())
                .collect(),
            filters: Vec::new(),
        };
        Hypergraph::of_query(&sub).is_graph_forest() == Some(true) && is_neo(&sub, gao)
    }

    /// Runs the join, invoking `emit` with each output binding (in GAO order), and
    /// returns the execution statistics.
    pub fn run<F: FnMut(&[Val], u64)>(&mut self, emit: &mut F) -> MsStats {
        self.try_run(&mut |binding, multiplicity| {
            emit(binding, multiplicity);
            ControlFlow::Continue(())
        })
    }

    /// Runs the join with early termination: the outer loop stops as soon as `emit`
    /// returns [`ControlFlow::Break`] — no further free tuple is requested from the
    /// CDS and no further probe is issued. Returns the statistics accumulated up to
    /// the stop point.
    pub fn try_run<F: FnMut(&[Val], u64) -> ControlFlow<()>>(&mut self, emit: &mut F) -> MsStats {
        self.try_run_ctx(&ExecCtx::none(), emit)
    }

    /// [`try_run`](Self::try_run) under an execution context (see
    /// [`run_range_ctx`](Self::run_range_ctx)): the outer loop stops cleanly when
    /// the context's watch observes a trip; the caller learns the abort reason from
    /// the context's monitor.
    pub fn try_run_ctx<F: FnMut(&[Val], u64) -> ControlFlow<()>>(
        &mut self,
        ctx: &ExecCtx<'_>,
        emit: &mut F,
    ) -> MsStats {
        let n = self.bq.num_vars();
        let mut watch = ctx.watch();
        // The CDS is owned by the executor and recycled (arena and all) across runs;
        // the probers keep their Idea 4 memos, which stay valid because gap boxes
        // are range-independent facts about the relations — but each memo's first
        // hit of the new run must re-insert its constraint into the now-empty CDS.
        self.cds.reset();
        for prober in &mut self.probers {
            prober.begin_run();
        }
        let mut probe_stats = ProbeStats::default();
        let mut stats = MsStats::default();

        // Carry-over: re-seed the fresh CDS with the harvested ledger — every
        // constraint in it is a value-independent gap box (a fact about the data),
        // so inserting it is sound for any range and spares the run from
        // re-discovering the gap one probe at a time. Constraints discovered by
        // *this* run are staged into `fresh_carry` and only enter the ledger when
        // the worker lifecycle harvests them.
        self.fresh_carry.clear();
        for c in &self.carry {
            self.cds.insert_constraint(c);
        }
        stats.carried_constraints = self.carry.len() as u64;

        if let Some((lo, _)) = self.range0 {
            let mut start = vec![-1; n];
            // The moving frontier encodes "before everything" as -1 (the paper's
            // natural-number domains; NEG_INF is reserved for gap sentinels), so
            // a morsel's open lower end is clamped to that convention — the same
            // starting frontier an unrestricted run uses.
            start[0] = lo.max(-1);
            self.cds.set_frontier(start);
        }

        loop {
            if !self.cds.compute_free_tuple() {
                break;
            }
            let t = self.cds.frontier().to_vec();
            if let Some((_, hi)) = self.range0 {
                if t[0] >= hi {
                    break;
                }
            }
            stats.iterations += 1;
            if watch.tick() {
                break;
            }
            if std::env::var_os("MS_TRACE").is_some() {
                eprintln!("[ms-trace] it={} t={:?}", stats.iterations, t);
            }

            // The frontier always advances at least past `t` (Idea 2 / termination).
            let mut advance = successor(&t);
            let mut exhausted = false;
            let mut any_gap = false;

            // Violated order filters rule out a whole band of the output space
            // without touching any index; they contribute an escape to the frontier
            // advance. The relations are still probed below — their gaps are what let
            // the CDS eventually close off exhausted regions of the earlier
            // attributes, which is what guarantees termination.
            for (pos, checks) in self.filters.iter().enumerate() {
                for &(other, other_is_smaller) in checks {
                    let violated =
                        if other_is_smaller { t[pos] <= t[other] } else { t[pos] >= t[other] };
                    if violated {
                        any_gap = true;
                        let escape_to = if other_is_smaller { t[other] + 1 } else { POS_INF };
                        match escape(&t, pos, escape_to) {
                            Some(f) => {
                                if f > advance {
                                    advance = f;
                                }
                            }
                            None => exhausted = true,
                        }
                    }
                }
            }

            for prober in &mut self.probers {
                match prober.probe(&t, self.config.idea4_gap_memo, &mut probe_stats) {
                    ProbeOutcome::Member => {}
                    ProbeOutcome::Gap { constraint, newly_discovered } => {
                        any_gap = true;
                        if prober.skeleton {
                            if newly_discovered {
                                self.cds.insert_constraint(&constraint);
                                // Only skeleton gaps may re-enter the CDS later
                                // (Idea 7's caching soundness), and only the
                                // first-attribute-independent ones outlive a
                                // morsel. Constraints already in the ledger are
                                // not staged again.
                                if self.carry_armed
                                    && Self::carries_across_morsels(&constraint)
                                    && !self.carry_seen.contains(&constraint)
                                {
                                    self.fresh_carry.push(constraint);
                                }
                            }
                        } else {
                            match escape_from_constraint(&t, &constraint) {
                                Some(f) => {
                                    if f > advance {
                                        advance = f;
                                    }
                                }
                                None => exhausted = true,
                            }
                        }
                    }
                }
            }

            if !any_gap {
                if self.config.idea8_batch_counting {
                    let (run, next) =
                        count_last_level_run(self.bq, &self.probers, &self.filters, &t);
                    stats.results += run;
                    let flow = emit(&t, run);
                    match next {
                        Some(f) => {
                            if f > advance {
                                advance = f;
                            }
                        }
                        None => exhausted = true,
                    }
                    if flow.is_break() {
                        break;
                    }
                } else {
                    stats.results += 1;
                    if emit(&t, 1).is_break() {
                        break;
                    }
                }
            }

            if exhausted {
                break;
            }
            self.cds.set_frontier(advance);
        }

        stats.probes = probe_stats.probes;
        stats.probes_skipped = probe_stats.probes_skipped;
        stats.constraints_inserted = self.cds.stats.constraints_inserted;
        stats.cached_intervals = self.cds.stats.cached_intervals;
        stats.truncations = self.cds.stats.truncations;
        stats.complete_node_hits = self.cds.stats.complete_node_hits;
        stats.cds_nodes = self.cds.num_nodes() as u64;
        stats
    }

    /// Counts the output tuples.
    pub fn count(&mut self) -> u64 {
        self.run(&mut |_, _| {}).results
    }
}

/// The lexicographic successor of `t` (last component incremented).
fn successor(t: &[Val]) -> Vec<Val> {
    let mut s = t.to_vec();
    if let Some(last) = s.last_mut() {
        *last += 1;
    }
    s
}

/// The smallest tuple `> t` outside the band "positions `0..pos` equal to `t`,
/// position `pos` in `[t[pos], escape_to)`": position `pos` jumps to `escape_to` and
/// the deeper positions reset. When `escape_to` is `POS_INF` the band extends to the
/// end of the axis, so the escape has to increment position `pos - 1` instead;
/// returns `None` when that is impossible (`pos == 0`), i.e. the whole remaining
/// space is exhausted.
fn escape(t: &[Val], pos: usize, escape_to: Val) -> Option<Vec<Val>> {
    let mut f = t.to_vec();
    for x in f.iter_mut().skip(pos + 1) {
        *x = -1;
    }
    if escape_to < POS_INF {
        f[pos] = escape_to;
        Some(f)
    } else if pos > 0 {
        f[pos] = -1;
        f[pos - 1] += 1;
        Some(f)
    } else {
        None
    }
}

/// Escape past a gap constraint that covers `t` (Idea 7: gaps from non-skeleton atoms
/// only advance the frontier).
fn escape_from_constraint(t: &[Val], c: &Constraint) -> Option<Vec<Val>> {
    debug_assert!(c.covers(t), "escape requires the constraint to cover the tuple");
    escape(t, c.interval_pos(), c.interval.1)
}

/// Counts the output of the bound query with Minesweeper.
pub fn count(bq: &BoundQuery, config: &MsConfig) -> u64 {
    MinesweeperExecutor::new(bq, config.clone()).count()
}

/// Runs the bound query, calling `emit(binding, multiplicity)` for every output (in
/// GAO order; multiplicity is 1 unless Idea 8 batch counting is enabled), and returns
/// the execution statistics.
pub fn run<F: FnMut(&[Val], u64)>(bq: &BoundQuery, config: &MsConfig, emit: &mut F) -> MsStats {
    MinesweeperExecutor::new(bq, config.clone()).run(emit)
}

/// Runs the bound query with early termination: the outer loop stops as soon as
/// `emit` returns [`ControlFlow::Break`].
pub fn try_run<F: FnMut(&[Val], u64) -> ControlFlow<()>>(
    bq: &BoundQuery,
    config: &MsConfig,
    emit: &mut F,
) -> MsStats {
    MinesweeperExecutor::new(bq, config.clone()).try_run(emit)
}

/// Enumerates the output of the bound query; bindings are returned in variable-id
/// order, sorted lexicographically. (Batch counting is disabled for enumeration.)
pub fn enumerate(bq: &BoundQuery, config: &MsConfig) -> Vec<Vec<Val>> {
    let mut cfg = config.clone();
    cfg.idea8_batch_counting = false;
    let mut out = Vec::new();
    MinesweeperExecutor::new(bq, cfg).run(&mut |gao_binding, _| {
        out.push(bq.binding_to_var_order(gao_binding));
    });
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{naive_join, CatalogQuery, Instance};
    use gj_storage::{Graph, Relation};

    fn two_triangle_instance() -> Instance {
        let g = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values(vec![0, 1, 3]));
        inst.add_relation("v2", Relation::from_values(vec![2, 3, 4]));
        inst.add_relation("v3", Relation::from_values(vec![0, 2]));
        inst.add_relation("v4", Relation::from_values(vec![1, 4]));
        inst
    }

    #[test]
    fn triangle_count_matches_naive() {
        let inst = two_triangle_instance();
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(count(&bq, &MsConfig::default()), 2);
    }

    #[test]
    fn all_catalog_queries_match_naive_with_default_config() {
        let inst = two_triangle_instance();
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let expected = naive_join(&inst, &q);
            assert_eq!(enumerate(&bq, &MsConfig::default()), expected, "{}", q.name);
        }
    }

    #[test]
    fn all_catalog_queries_match_naive_with_every_idea_disabled() {
        let inst = two_triangle_instance();
        let config = MsConfig {
            idea4_gap_memo: false,
            idea5_caching: false,
            idea6_complete_nodes: false,
            idea7_skeleton: false,
            idea8_batch_counting: false,
            cds_carryover: false,
            threads: 1,
            granularity: 1,
        };
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let expected = naive_join(&inst, &q);
            assert_eq!(enumerate(&bq, &config), expected, "{}", q.name);
        }
    }

    #[test]
    fn batch_counting_agrees_with_plain_counting() {
        let inst = two_triangle_instance();
        let config = MsConfig { idea8_batch_counting: true, ..MsConfig::default() };
        for cq in [CatalogQuery::ThreePath, CatalogQuery::OneTree, CatalogQuery::TwoComb] {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            assert_eq!(count(&bq, &config), count(&bq, &MsConfig::default()), "{}", q.name);
        }
    }

    #[test]
    fn chain_mode_is_on_for_acyclic_and_skeletonised_cyclic_queries() {
        let inst = two_triangle_instance();
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let exec = MinesweeperExecutor::new(&bq, MsConfig::default());
            assert!(exec.chain_mode(), "{} should run in chain mode with Idea 7", q.name);
        }
        // Without Idea 7 a cyclic query cannot use the chain machinery.
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let cfg = MsConfig { idea7_skeleton: false, ..MsConfig::default() };
        let exec = MinesweeperExecutor::new(&bq, cfg);
        assert!(!exec.chain_mode());
    }

    #[test]
    fn non_neo_gao_disables_chain_mode_but_stays_correct() {
        let inst = two_triangle_instance();
        let q = CatalogQuery::FourPath.query();
        // GAO a, b, d, c, e is not a NEO (Table 4).
        let v = |s: &str| q.var(s).unwrap();
        let gao = vec![v("a"), v("b"), v("d"), v("c"), v("e")];
        let bq = BoundQuery::new(&inst, &q, Some(gao)).unwrap();
        let exec = MinesweeperExecutor::new(&bq, MsConfig::default());
        assert!(!exec.chain_mode());
        let expected = naive_join(&inst, &q);
        assert_eq!(enumerate(&bq, &MsConfig::default()), expected);
    }

    #[test]
    fn range_restriction_partitions_the_output() {
        let inst = two_triangle_instance();
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let total = count(&bq, &MsConfig::default());
        let lo_half = MinesweeperExecutor::new(&bq, MsConfig::default()).with_range0(-1, 2).count();
        let hi_half =
            MinesweeperExecutor::new(&bq, MsConfig::default()).with_range0(2, POS_INF).count();
        assert_eq!(lo_half + hi_half, total);
    }

    #[test]
    fn one_executor_serves_many_ranges_and_full_runs() {
        // The morsel reuse pattern: a single executor runs several disjoint ranges
        // (recycling its CDS arena) and still answers a full-range run afterwards —
        // run_range must not leak its restriction into later runs.
        let inst = two_triangle_instance();
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let total = count(&bq, &MsConfig::default());
        let mut exec = MinesweeperExecutor::new(&bq, MsConfig::default());
        let mut split = 0;
        for (lo, hi) in [(-1, 1), (1, 2), (2, POS_INF)] {
            split += exec.run_range(lo, hi, &mut |_, _| ControlFlow::Continue(())).results;
        }
        assert_eq!(split, total);
        let full = exec.run(&mut |_, _| {});
        assert_eq!(full.results, total, "run_range must not restrict later full runs");
    }

    #[test]
    fn stats_reflect_the_work_done() {
        let inst = two_triangle_instance();
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let stats = run(&bq, &MsConfig::default(), &mut |_, _| {});
        assert_eq!(stats.results, gj_query::naive_count(&inst, &q));
        assert!(stats.iterations >= stats.results);
        assert!(stats.probes > 0);
        assert!(stats.constraints_inserted > 0);
    }

    #[test]
    fn try_run_stops_at_the_first_break() {
        let inst = two_triangle_instance();
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let full = run(&bq, &MsConfig::default(), &mut |_, _| {});
        assert!(full.results > 1, "the test needs a query with several outputs");
        let mut seen = 0u64;
        let stats = try_run(&bq, &MsConfig::default(), &mut |_, _| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
        assert_eq!(stats.results, 1);
        assert!(stats.iterations < full.iterations, "break must cut the outer loop short");
    }

    #[test]
    fn empty_relation_yields_zero() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::empty(2));
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(count(&bq, &MsConfig::default()), 0);
    }

    #[test]
    fn skeleton_for_cliques_drops_the_cycle_closing_atoms() {
        let inst = two_triangle_instance();
        let q = CatalogQuery::FourClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let exec = MinesweeperExecutor::new(&bq, MsConfig::default());
        assert_eq!(exec.skeleton().iter().filter(|&&s| s).count(), 3);
    }
}
