//! # gj-minesweeper
//!
//! Minesweeper — the "beyond worst-case" join algorithm of Ngo, Nguyen, Ré and Rudra,
//! implemented as described in Section 4 of the paper (the first practical
//! implementation of a beyond-worst-case join).
//!
//! The algorithm repeatedly asks a *constraint data structure* (CDS) for a **free
//! tuple**: a point of the output space not covered by any known **gap box** (a
//! region certified to contain no output tuple). It then probes every input relation
//! around that point; each probe either confirms membership or returns a maximal gap
//! box, which is inserted back into the CDS. When every relation confirms the point,
//! it is an output tuple. The process ends when the CDS can no longer find a free
//! tuple, i.e. the union of reported outputs and gap boxes covers the whole space.
//!
//! The implementation includes the paper's engineering ideas:
//!
//! * **Idea 1** — point lists inside CDS nodes (intervals, children and discovered
//!   free values kept per node);
//! * **Idea 2** — the moving frontier (free tuples are requested in lexicographic
//!   order, outputs advance the frontier instead of inserting unit gaps);
//! * **Idea 3** — maximal gap boxes extracted from the trie indexes (`seekGap`);
//! * **Idea 4** — a per-relation memo of the last gap to avoid repeated `seekGap`
//!   calls;
//! * **Idea 5** — caching ping-pong results as intervals in the bottom node of the
//!   chain, with backtracking and truncation;
//! * **Idea 6** — complete nodes, which short-circuit the chain walk entirely;
//! * **Idea 7** — the β-acyclic skeleton for cyclic queries (gaps from non-skeleton
//!   atoms only advance the frontier);
//! * **Idea 8** — #Minesweeper-style counting (per-free-value counts propagated
//!   through completed nodes);
//! * the **multi-threaded** partitioning of Section 4.10 — served through the
//!   shared `gj-runtime` morsel driver ([`MsMorsels`]), with one executor reused
//!   per worker across morsels, **CDS constraint carry-over** between the morsels
//!   a worker claims (value-independent gap constraints re-seed each reset CDS via
//!   the runtime's `morsel_done` lifecycle hook; see
//!   [`MinesweeperExecutor::harvest_carryover`]) and full sink support (parallel
//!   enumerate/collect/first_k, not just counting) — and the **hybrid**
//!   Minesweeper + LFTJ algorithm of Section 4.12.
//!
//! Every idea can be toggled through [`MsConfig`] so the ablation experiments
//! (Tables 1–3 of the paper) can be reproduced.

pub mod cds;
pub mod constraint;
pub mod counting;
pub mod engine;
pub mod gaps;
pub mod hybrid;
pub mod node;
pub mod parallel;

pub use cds::Cds;
pub use constraint::{Constraint, PatternComp};
pub use engine::{count, enumerate, run, try_run, MinesweeperExecutor, MsConfig, MsStats};
pub use hybrid::{hybrid_count, HybridPlan};
pub use parallel::{MsMorsels, MsWorker};
