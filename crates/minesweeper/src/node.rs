//! CDS nodes and their point lists (Idea 1 of the paper).
//!
//! Every CDS node stores, for the attribute one past its depth:
//!
//! * a set of **disjoint open intervals** — the gaps known to contain no output tuple
//!   under this node's pattern (overlapping intervals are merged on insertion, and
//!   children whose labels fall strictly inside a newly inserted interval are pruned);
//! * the node's **children**: one per equality label plus at most one wildcard child;
//! * the **free points** discovered so far (with multiplicity counts for
//!   #Minesweeper) and the completeness bookkeeping of Idea 6.
//!
//! The paper fuses intervals, children and free values into a single sorted
//! `pointList`. We keep them as three sorted vectors with the same asymptotic costs;
//! the distinction is purely representational and every operation of the paper's
//! pointList (`Next`, `hasNoFreeValue`, child pruning, complete-node iteration) is
//! provided here.

use gj_storage::{Val, NEG_INF, POS_INF};

/// Identifier of a node inside the [`Cds`](crate::cds::Cds) arena.
pub type NodeId = usize;

/// One node of the constraint data structure.
#[derive(Debug, Clone, Default)]
pub struct Node {
    /// Disjoint open intervals, sorted by lower end. Values strictly inside any of
    /// them are ruled out for every tuple matching this node's pattern.
    intervals: Vec<(Val, Val)>,
    /// Children reached by an equality label, sorted by label.
    children: Vec<(Val, NodeId)>,
    /// The wildcard (`˚`) child, if any.
    wildcard_child: Option<NodeId>,
    /// Free values discovered while this node was the bottom of the chain, with the
    /// #Minesweeper count attached (1 for plain Minesweeper).
    free_points: Vec<(Val, u64)>,
    /// How many times the free-value scan wrapped past `+∞` at this node (Idea 6).
    wraps: u8,
    /// Whether the node is complete: its `free_points` enumerate every value that can
    /// still be free under its pattern (Idea 6).
    complete: bool,
}

impl Node {
    /// Creates an empty node.
    pub fn new() -> Self {
        Node::default()
    }

    /// Empties the node for arena reuse, keeping every vector's capacity — the
    /// allocation-batching half of the reusable CDS (`Cds::reset`): a worker that
    /// processes many morsels re-populates recycled nodes instead of allocating
    /// fresh point lists per job.
    pub fn clear(&mut self) {
        self.intervals.clear();
        self.children.clear();
        self.wildcard_child = None;
        self.free_points.clear();
        self.wraps = 0;
        self.complete = false;
    }

    // ----- intervals -------------------------------------------------------------

    /// The stored disjoint open intervals (sorted).
    pub fn intervals(&self) -> &[(Val, Val)] {
        &self.intervals
    }

    /// Whether the node has at least one interval (i.e. participates in `G_depth`).
    pub fn has_intervals(&self) -> bool {
        !self.intervals.is_empty()
    }

    /// Inserts the open interval `(low, high)`, merging it with every overlapping
    /// stored interval, and removes children whose labels fall strictly inside the
    /// merged interval. Returns the pruned children's node ids.
    ///
    /// Degenerate intervals (`high <= low`) are ignored; intervals with an empty
    /// integer interior such as `(9, 10)` are kept, as in the paper's point lists.
    pub fn insert_interval(&mut self, low: Val, high: Val) -> Vec<NodeId> {
        if high <= low {
            return Vec::new();
        }
        let mut new_low = low;
        let mut new_high = high;
        // Merge with every interval that overlaps (strictly, on the real line) the
        // new one. Touching intervals like (1,5) and (5,9) stay separate because the
        // shared endpoint 5 itself is still free.
        self.intervals.retain(|&(l, h)| {
            let overlaps = l < new_high && new_low < h;
            if overlaps {
                new_low = new_low.min(l);
                new_high = new_high.max(h);
            }
            !overlaps
        });
        let pos = self.intervals.partition_point(|&(l, _)| l < new_low);
        self.intervals.insert(pos, (new_low, new_high));

        // Prune children strictly inside the merged interval (their whole branch is
        // subsumed by the gap).
        let mut pruned = Vec::new();
        self.children.retain(|&(label, id)| {
            let inside = new_low < label && label < new_high;
            if inside {
                pruned.push(id);
            }
            !inside
        });
        // Free points strictly inside the interval are no longer free.
        self.free_points.retain(|&(v, _)| !(new_low < v && v < new_high));
        pruned
    }

    /// `Next(x)`: the smallest value `y >= x` not strictly inside any stored interval.
    pub fn next(&self, x: Val) -> Val {
        // Find the interval with the greatest lower end <= x (candidates are sorted).
        let idx = self.intervals.partition_point(|&(l, _)| l < x);
        if idx > 0 {
            let (l, h) = self.intervals[idx - 1];
            if l < x && x < h {
                return h;
            }
        }
        x
    }

    /// `hasNoFreeValue()`: whether every value from `-1` upwards is covered, i.e.
    /// `Next(-1) == +∞` (the paper's domains are the naturals; the frontier starts at
    /// `-1`).
    pub fn has_no_free_value(&self) -> bool {
        self.next(-1) == POS_INF
    }

    // ----- children --------------------------------------------------------------

    /// The equality-labelled children (sorted by label).
    pub fn children(&self) -> &[(Val, NodeId)] {
        &self.children
    }

    /// The wildcard child, if any.
    pub fn wildcard_child(&self) -> Option<NodeId> {
        self.wildcard_child
    }

    /// Looks up the child with equality label `v`.
    pub fn child(&self, v: Val) -> Option<NodeId> {
        self.children.binary_search_by_key(&v, |&(label, _)| label).ok().map(|i| self.children[i].1)
    }

    /// Registers `id` as the child with equality label `v` (caller creates the node).
    /// The label must not be covered by an existing interval and must not already
    /// have a child.
    pub fn set_child(&mut self, v: Val, id: NodeId) {
        debug_assert!(self.child(v).is_none(), "child {v} already exists");
        let pos = self.children.partition_point(|&(label, _)| label < v);
        self.children.insert(pos, (v, id));
    }

    /// Registers `id` as the wildcard child.
    pub fn set_wildcard_child(&mut self, id: NodeId) {
        debug_assert!(self.wildcard_child.is_none(), "wildcard child already exists");
        self.wildcard_child = Some(id);
    }

    // ----- free points, completeness, counts (Ideas 6 and 8) ---------------------

    /// Records that `v` was found free while this node was the bottom of the chain.
    /// `count` is the #Minesweeper multiplicity (1 for plain Minesweeper).
    pub fn add_free_point(&mut self, v: Val, count: u64) {
        if v == NEG_INF || v == POS_INF {
            return;
        }
        match self.free_points.binary_search_by_key(&v, |&(p, _)| p) {
            Ok(i) => self.free_points[i].1 = self.free_points[i].1.max(count),
            Err(i) => self.free_points.insert(i, (v, count)),
        }
    }

    /// Adds `delta` to the #Minesweeper count of free point `v` (creating it if
    /// needed).
    pub fn bump_count(&mut self, v: Val, delta: u64) {
        match self.free_points.binary_search_by_key(&v, |&(p, _)| p) {
            Ok(i) => self.free_points[i].1 += delta,
            Err(i) => self.free_points.insert(i, (v, delta)),
        }
    }

    /// The recorded free points (sorted) with their counts.
    pub fn free_points(&self) -> &[(Val, u64)] {
        &self.free_points
    }

    /// Sum of the counts of all recorded free points (#Minesweeper, Idea 8).
    pub fn total_count(&self) -> u64 {
        self.free_points.iter().map(|&(_, c)| c).sum()
    }

    /// The smallest recorded free point `>= x` that is not covered by an interval, or
    /// `POS_INF` if none. Used when the node is complete (Idea 6).
    pub fn next_free_point(&self, x: Val) -> Val {
        let start = self.free_points.partition_point(|&(v, _)| v < x);
        self.free_points[start..]
            .iter()
            .map(|&(v, _)| v)
            .find(|&v| self.next(v) == v)
            .unwrap_or(POS_INF)
    }

    /// Records a wrap past `+∞` (Idea 6); the node becomes complete on the second
    /// wrap. Returns whether the node is now complete.
    pub fn record_wrap(&mut self) -> bool {
        self.wraps = self.wraps.saturating_add(1);
        if self.wraps >= 2 {
            self.complete = true;
        }
        self.complete
    }

    /// Whether the node is complete (Idea 6).
    pub fn is_complete(&self) -> bool {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlapping_intervals() {
        let mut n = Node::new();
        n.insert_interval(1, 10);
        n.insert_interval(5, 12);
        assert_eq!(n.intervals(), &[(1, 12)]);
        n.insert_interval(3, 7); // contained
        assert_eq!(n.intervals(), &[(1, 12)]);
    }

    #[test]
    fn touching_intervals_stay_separate() {
        // (1,10) and (10,20): 10 itself is free, exactly the paper's point-list example.
        let mut n = Node::new();
        n.insert_interval(1, 10);
        n.insert_interval(10, 20);
        assert_eq!(n.intervals(), &[(1, 10), (10, 20)]);
        assert_eq!(n.next(5), 10);
        assert_eq!(n.next(10), 10);
        assert_eq!(n.next(11), 20);
    }

    #[test]
    fn degenerate_intervals_are_ignored_but_empty_interiors_are_kept() {
        let mut n = Node::new();
        n.insert_interval(5, 5);
        n.insert_interval(6, 4);
        assert!(n.intervals().is_empty());
        // (3, 4) has no integer inside but is a legal open interval (Figure 2 keeps
        // (9, 10) in the point list); next() is unaffected.
        n.insert_interval(3, 4);
        assert_eq!(n.intervals(), &[(3, 4)]);
        assert_eq!(n.next(3), 3);
        assert_eq!(n.next(4), 4);
    }

    #[test]
    fn next_outside_any_interval_is_identity() {
        let mut n = Node::new();
        n.insert_interval(5, 9);
        assert_eq!(n.next(3), 3);
        assert_eq!(n.next(5), 5);
        assert_eq!(n.next(6), 9);
        assert_eq!(n.next(9), 9);
        assert_eq!(n.next(20), 20);
    }

    #[test]
    fn has_no_free_value_requires_total_coverage() {
        let mut n = Node::new();
        n.insert_interval(NEG_INF, 50);
        assert!(!n.has_no_free_value());
        n.insert_interval(49, POS_INF);
        assert_eq!(n.intervals(), &[(NEG_INF, POS_INF)]);
        assert!(n.has_no_free_value());
    }

    #[test]
    fn coverage_with_touching_endpoint_is_not_total() {
        let mut n = Node::new();
        n.insert_interval(NEG_INF, 5);
        n.insert_interval(5, POS_INF);
        assert!(!n.has_no_free_value()); // 5 is still free
        assert_eq!(n.next(-1), 5);
    }

    #[test]
    fn inserting_interval_prunes_children_inside() {
        let mut n = Node::new();
        n.set_child(3, 30);
        n.set_child(7, 70);
        n.set_child(10, 100);
        let pruned = n.insert_interval(5, 10);
        assert_eq!(pruned, vec![70]);
        assert_eq!(n.child(3), Some(30));
        assert_eq!(n.child(7), None);
        assert_eq!(n.child(10), Some(100)); // 10 is the open end, not inside
    }

    #[test]
    fn children_lookup_is_by_label() {
        let mut n = Node::new();
        n.set_child(8, 1);
        n.set_child(2, 2);
        assert_eq!(n.child(2), Some(2));
        assert_eq!(n.child(8), Some(1));
        assert_eq!(n.child(5), None);
        assert_eq!(n.children(), &[(2, 2), (8, 1)]);
        n.set_wildcard_child(9);
        assert_eq!(n.wildcard_child(), Some(9));
    }

    #[test]
    fn free_points_track_counts_and_completeness() {
        let mut n = Node::new();
        n.add_free_point(4, 1);
        n.add_free_point(9, 1);
        n.bump_count(4, 2);
        assert_eq!(n.free_points(), &[(4, 3), (9, 1)]);
        assert_eq!(n.total_count(), 4);
        assert_eq!(n.next_free_point(0), 4);
        assert_eq!(n.next_free_point(5), 9);
        assert_eq!(n.next_free_point(10), POS_INF);
        assert!(!n.is_complete());
        assert!(!n.record_wrap());
        assert!(n.record_wrap());
        assert!(n.is_complete());
    }

    #[test]
    fn free_points_inside_new_intervals_are_dropped() {
        let mut n = Node::new();
        n.add_free_point(4, 1);
        n.add_free_point(9, 1);
        n.insert_interval(3, 8);
        assert_eq!(n.free_points(), &[(9, 1)]);
        assert_eq!(n.next_free_point(0), 9);
    }

    #[test]
    fn sentinel_free_points_are_ignored() {
        let mut n = Node::new();
        n.add_free_point(POS_INF, 1);
        n.add_free_point(NEG_INF, 1);
        assert!(n.free_points().is_empty());
    }
}
