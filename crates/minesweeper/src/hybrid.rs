//! The hybrid Minesweeper + LeapFrog TrieJoin algorithm (Section 4.12 of the paper).
//!
//! Lollipop queries combine a path (where Minesweeper's caching shines) with a clique
//! (where LFTJ's simultaneous multiway intersection shines). The hybrid splits the
//! query at the vertex shared by the two parts: LFTJ counts, for every possible value
//! of the shared vertex, the number of clique completions; Minesweeper then
//! enumerates the path bindings and each one contributes the pre-computed clique
//! count of its endpoint. Because the two parts share only the split vertex, the sum
//! equals the size of the full join.

use crate::engine::{MinesweeperExecutor, MsConfig};
use gj_query::{BindReport, BoundQuery, IndexCache, Instance, Query, QueryBuilder, VarId};
use gj_runtime::ExecCtx;
use std::collections::HashMap;
use std::ops::ControlFlow;

/// A hybrid query prepared once: the clique and path sub-queries are split, validated
/// and bound (GAO selection + trie indexes), so repeated executions only pay the two
/// engine runs.
///
/// Built by [`HybridPlan::new`] (private index cache) or [`HybridPlan::with_cache`]
/// (shared database-level cache, as used by the prepared-query API in `gj-core`).
#[derive(Debug, Clone)]
pub struct HybridPlan {
    /// The clique part, bound with the shared vertex first in the GAO.
    clique_bq: BoundQuery,
    /// The path part, bound under its default (longest-path NEO) GAO.
    path_bq: BoundQuery,
    /// GAO position of the shared vertex inside the path part.
    path_joint_gao_pos: usize,
}

impl HybridPlan {
    /// Splits, validates and binds `query` for the hybrid algorithm, building every
    /// index into a private single-threaded cache.
    ///
    /// `split` is the number of leading variables (in the query's variable-id order)
    /// that form the path part; variable `split - 1` is shared with the clique part
    /// (see [`CatalogQuery::hybrid_split`](gj_query::CatalogQuery::hybrid_split)).
    ///
    /// Fails if the query cannot be split at that point (an atom or filter straddles
    /// the two parts beyond the shared vertex).
    pub fn new(instance: &Instance, query: &Query, split: usize) -> Result<Self, String> {
        let cache = IndexCache::new();
        Ok(Self::with_cache(instance, query, split, &cache, 1)?.0)
    }

    /// Like [`HybridPlan::new`], but takes trie indexes from `cache` (building the
    /// misses across up to `threads` worker threads) so repeated preparations over
    /// the same relations are warm.
    pub fn with_cache(
        instance: &Instance,
        query: &Query,
        split: usize,
        cache: &IndexCache,
        threads: usize,
    ) -> Result<(Self, BindReport), String> {
        if split == 0 || split >= query.num_vars() {
            return Err(format!("split {split} out of range for {} variables", query.num_vars()));
        }
        let joint: VarId = split - 1;

        let in_path = |v: VarId| v < split;
        let in_clique = |v: VarId| v >= joint;

        let mut path_atoms = Vec::new();
        let mut clique_atoms = Vec::new();
        for atom in &query.atoms {
            if atom.vars.iter().all(|&v| in_path(v)) {
                path_atoms.push(atom);
            } else if atom.vars.iter().all(|&v| in_clique(v)) {
                clique_atoms.push(atom);
            } else {
                return Err(format!(
                    "atom {}({:?}) straddles the path/clique split",
                    atom.relation, atom.vars
                ));
            }
        }
        if clique_atoms.is_empty() {
            return Err("the clique part of the query is empty".to_string());
        }

        // Filters are classified by membership in the part's *atom* variables —
        // not by the id-range split — so a sub-query can never end up with a
        // filter-only variable contained in no atom (which the executors reject).
        let path_vars: Vec<VarId> =
            path_atoms.iter().flat_map(|a| a.vars.iter().copied()).collect();
        let clique_vars: Vec<VarId> =
            clique_atoms.iter().flat_map(|a| a.vars.iter().copied()).collect();
        if !clique_vars.contains(&joint) {
            return Err("the shared variable does not occur in the clique part".to_string());
        }
        if !path_vars.contains(&joint) {
            return Err("the shared variable does not occur in the path part".to_string());
        }
        let in_path = |v: VarId| path_vars.contains(&v);
        let in_clique = |v: VarId| clique_vars.contains(&v);

        let mut path_filters = Vec::new();
        let mut clique_filters = Vec::new();
        for &(x, y) in &query.filters {
            if in_path(x) && in_path(y) {
                path_filters.push((x, y));
            } else if in_clique(x) && in_clique(y) {
                clique_filters.push((x, y));
            } else {
                return Err("an order filter straddles the path/clique split".to_string());
            }
        }

        // --- clique part: bound for LFTJ, grouped by the shared vertex -----------
        let clique_query = build_subquery(
            &format!("{}-clique", query.name),
            query,
            &clique_atoms,
            &clique_filters,
        );
        let clique_joint = clique_query
            .var(&query.var_names[joint])
            .ok_or_else(|| "the shared variable is missing from the clique subquery".to_string())?;
        // Put the shared vertex first in the clique GAO so groups are contiguous.
        let mut clique_gao: Vec<VarId> = vec![clique_joint];
        clique_gao.extend((0..clique_query.num_vars()).filter(|&v| v != clique_joint));
        let (clique_bq, clique_report) =
            BoundQuery::with_cache(instance, &clique_query, Some(clique_gao), cache, threads)?;

        // --- path part: bound for Minesweeper ------------------------------------
        let path_query =
            build_subquery(&format!("{}-path", query.name), query, &path_atoms, &path_filters);
        let path_joint = path_query
            .var(&query.var_names[joint])
            .ok_or_else(|| "the shared variable is missing from the path subquery".to_string())?;
        let (path_bq, path_report) =
            BoundQuery::with_cache(instance, &path_query, None, cache, threads)?;
        let path_joint_gao_pos = path_bq.var_pos[path_joint];

        let report = BindReport {
            indexes_built: clique_report.indexes_built + path_report.indexes_built,
            build_threads: clique_report.build_threads.max(path_report.build_threads),
        };
        Ok((HybridPlan { clique_bq, path_bq, path_joint_gao_pos }, report))
    }

    /// Executes the plan: LFTJ counts, for every value of the shared vertex, the
    /// number of clique completions; Minesweeper enumerates the path bindings and
    /// each one contributes the pre-computed clique count of its endpoint.
    pub fn count(&self, config: &MsConfig) -> u64 {
        self.count_ctx(config, &ExecCtx::none())
    }

    /// [`count`](Self::count) under an execution context: both sub-engine runs poll
    /// `ctx` at their coarse check stride and stop cleanly on a trip. An aborted
    /// run returns a meaningless partial total — the caller must consult the
    /// context's monitor before using it.
    pub fn count_ctx(&self, config: &MsConfig, ctx: &ExecCtx<'_>) -> u64 {
        let mut clique_counts: HashMap<i64, u64> = HashMap::new();
        gj_lftj::LftjExecutor::new(&self.clique_bq).try_run_ctx(ctx, &mut |binding| {
            *clique_counts.entry(binding[0]).or_insert(0) += 1;
            ControlFlow::Continue(())
        });

        let mut total = 0u64;
        MinesweeperExecutor::new(&self.path_bq, config.clone()).try_run_ctx(
            ctx,
            &mut |binding, multiplicity| {
                let joint_value = binding[self.path_joint_gao_pos];
                total += multiplicity * clique_counts.get(&joint_value).copied().unwrap_or(0);
                ControlFlow::Continue(())
            },
        );
        total
    }
}

/// Counts the output of `query` over `instance` with the hybrid algorithm — the
/// one-shot convenience over [`HybridPlan`] (prepare + execute in one call).
pub fn hybrid_count(
    instance: &Instance,
    query: &Query,
    split: usize,
    config: &MsConfig,
) -> Result<u64, String> {
    Ok(HybridPlan::new(instance, query, split)?.count(config))
}

/// Rebuilds a sub-query from a subset of atoms and filters, keeping the original
/// variable names (ids are re-assigned by first use).
fn build_subquery(
    name: &str,
    query: &Query,
    atoms: &[&gj_query::Atom],
    filters: &[(VarId, VarId)],
) -> Query {
    let mut builder = QueryBuilder::new(name);
    for atom in atoms {
        let names: Vec<&str> = atom.vars.iter().map(|&v| query.var_names[v].as_str()).collect();
        builder = builder.atom(&atom.relation, &names);
    }
    for &(x, y) in filters {
        builder = builder.lt(&query.var_names[x], &query.var_names[y]);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{naive_count, CatalogQuery};
    use gj_storage::{Graph, Relation};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(4)));
        inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
        inst
    }

    #[test]
    fn hybrid_matches_naive_on_two_lollipop() {
        let inst = random_instance(21, 26, 0.18);
        let cq = CatalogQuery::TwoLollipop;
        let q = cq.query();
        let expected = naive_count(&inst, &q);
        let got =
            hybrid_count(&inst, &q, cq.hybrid_split().unwrap(), &MsConfig::default()).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn hybrid_matches_naive_on_three_lollipop() {
        let inst = random_instance(22, 18, 0.25);
        let cq = CatalogQuery::ThreeLollipop;
        let q = cq.query();
        let expected = naive_count(&inst, &q);
        let got =
            hybrid_count(&inst, &q, cq.hybrid_split().unwrap(), &MsConfig::default()).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn hybrid_matches_lftj_and_minesweeper() {
        let inst = random_instance(23, 30, 0.15);
        let cq = CatalogQuery::TwoLollipop;
        let q = cq.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let lftj = gj_lftj::count(&bq);
        let ms = crate::engine::count(&bq, &MsConfig::default());
        let hybrid =
            hybrid_count(&inst, &q, cq.hybrid_split().unwrap(), &MsConfig::default()).unwrap();
        assert_eq!(lftj, ms);
        assert_eq!(hybrid, lftj);
    }

    #[test]
    fn out_of_range_splits_are_rejected_and_alternative_splits_stay_correct() {
        let inst = random_instance(24, 14, 0.3);
        let q = CatalogQuery::TwoLollipop.query();
        assert!(hybrid_count(&inst, &q, 0, &MsConfig::default()).is_err());
        assert!(hybrid_count(&inst, &q, 99, &MsConfig::default()).is_err());
        // Splitting after `b` instead of `c` is also legal (the "clique" side is then
        // the triangle plus one pendant edge) and must give the same answer.
        let expected = naive_count(&inst, &q);
        assert_eq!(hybrid_count(&inst, &q, 2, &MsConfig::default()).unwrap(), expected);
        assert_eq!(hybrid_count(&inst, &q, 3, &MsConfig::default()).unwrap(), expected);
    }

    #[test]
    fn triangle_cannot_be_split() {
        let inst = random_instance(25, 10, 0.3);
        let q = CatalogQuery::ThreeClique.query();
        assert!(hybrid_count(&inst, &q, 1, &MsConfig::default()).is_err());
    }
}
