//! Gap extraction from the input relations (Ideas 3 and 4 of the paper).
//!
//! For a free tuple `t` and a relation `R`, Minesweeper asks `R`'s trie index for the
//! *maximal gap box* around the projection of `t` onto `R`'s attributes: the deepest
//! prefix of the projection that exists in the index determines the pattern, and the
//! greatest-lower-bound / least-upper-bound pair around the failing value determines
//! the open interval (`seekGap`, Section 4.5).
//!
//! Idea 4 keeps, per relation, the last constraint that relation produced. If the
//! next free tuple is still inside that constraint the `seekGap` call is skipped
//! entirely; and if the free tuple sits exactly on the interval's finite endpoint and
//! the interval was on the relation's *last* attribute, the projection is known to be
//! a member — again without touching the index.

use crate::constraint::{Constraint, PatternComp};
use gj_query::bind::BoundAtom;
use gj_query::BoundQuery;
use gj_storage::{ProbeResult, TrieIndex, Val, POS_INF};
use std::sync::Arc;

/// Outcome of probing one atom around a free tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The projection of the free tuple is a member of the relation.
    Member,
    /// The projection is not a member; `constraint` is the maximal gap box around it
    /// (in GAO space). `newly_discovered` is `false` when the gap was answered from
    /// the Idea 4 memo (it is already known to the CDS).
    Gap { constraint: Constraint, newly_discovered: bool },
}

/// Per-atom prober: projection bookkeeping plus the Idea 4 memo.
#[derive(Debug, Clone)]
pub struct AtomProber {
    /// Index of the atom in the query.
    pub atom_idx: usize,
    /// Whether the atom belongs to the β-acyclic skeleton (Idea 7). Gaps from
    /// non-skeleton atoms are not inserted into the CDS.
    pub skeleton: bool,
    /// GAO positions of the atom's attributes, ascending (level `d` of the index is
    /// GAO position `positions[d]`).
    positions: Vec<usize>,
    /// The atom's GAO-consistent trie index.
    index: Arc<TrieIndex>,
    /// Idea 4 memo: the last gap constraint produced, with the index level that
    /// carried the interval.
    memo: Option<(Constraint, usize)>,
    /// Whether the memo predates the current run (see [`begin_run`](Self::begin_run)).
    memo_stale: bool,
    /// Scratch buffer for projections.
    scratch: Vec<Val>,
}

/// Statistics for gap extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Number of `seekGap` probes actually issued against the indexes.
    pub probes: u64,
    /// Number of probes avoided by the Idea 4 memo.
    pub probes_skipped: u64,
}

impl AtomProber {
    /// Builds a prober for a bound atom. `var_pos` maps variables to GAO positions;
    /// `skeleton` says whether the atom inserts constraints into the CDS.
    pub fn new(bound_atom: &BoundAtom, var_pos: &[usize], skeleton: bool) -> Self {
        let positions: Vec<usize> = bound_atom.vars.iter().map(|&v| var_pos[v]).collect();
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]), "atom vars must be GAO-ordered");
        AtomProber {
            atom_idx: bound_atom.atom_idx,
            skeleton,
            scratch: vec![0; positions.len()],
            positions,
            index: Arc::clone(&bound_atom.index),
            memo: None,
            memo_stale: false,
        }
    }

    /// Marks the start of a new run over a *fresh* CDS. The memoised gap stays
    /// usable (it is a fact about the data, valid across runs and ranges), but its
    /// first hit in the new run reports `newly_discovered: true` again so the
    /// engine re-inserts the constraint into the empty CDS — otherwise the frontier
    /// would crawl through the remembered gap value by value.
    pub fn begin_run(&mut self) {
        self.memo_stale = self.memo.is_some();
    }

    /// The GAO positions of the atom's attributes.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The sorted list of **live** values extending `prefix` (given in the atom's
    /// own GAO attribute order) in this atom's index, or `None` when the prefix is
    /// absent. Borrowed for solid indexes; merged across delta layers otherwise.
    /// Used by the #Minesweeper-style batch counting (Idea 8).
    pub fn extensions(&self, prefix: &[Val]) -> Option<std::borrow::Cow<'_, [Val]>> {
        self.index.extensions(prefix)
    }

    /// Probes the relation around the free tuple `t` (in GAO order).
    pub fn probe(&mut self, t: &[Val], use_memo: bool, stats: &mut ProbeStats) -> ProbeOutcome {
        // Idea 4: answer from the memo when possible.
        if use_memo {
            if let Some((c, level)) = &self.memo {
                if c.pattern_matches(t) {
                    let v = t[c.interval_pos()];
                    let (lo, hi) = c.interval;
                    if lo < v && v < hi {
                        stats.probes_skipped += 1;
                        // A memo carried over from a previous run answers its first
                        // hit as newly discovered: the (reset) CDS has not seen it.
                        let newly_discovered = std::mem::replace(&mut self.memo_stale, false);
                        return ProbeOutcome::Gap { constraint: c.clone(), newly_discovered };
                    }
                    // On the finite endpoint of a last-attribute interval the
                    // projection is a member: the endpoint came from the index, and
                    // there is no deeper attribute left to check.
                    if *level + 1 == self.positions.len()
                        && (v == lo || v == hi)
                        && v > gj_storage::NEG_INF
                        && v < POS_INF
                    {
                        stats.probes_skipped += 1;
                        return ProbeOutcome::Member;
                    }
                }
            }
        }

        for (i, &p) in self.positions.iter().enumerate() {
            self.scratch[i] = t[p];
        }
        stats.probes += 1;
        match self.index.probe(&self.scratch) {
            ProbeResult::Found => ProbeOutcome::Member,
            ProbeResult::Gap { depth, lower, upper } => {
                let constraint = self.gap_to_constraint(t, depth, lower, upper);
                self.memo = Some((constraint.clone(), depth));
                self.memo_stale = false;
                ProbeOutcome::Gap { constraint, newly_discovered: true }
            }
        }
    }

    /// Translates an index-level gap into a GAO-space constraint (Idea 3): equality
    /// components at the atom's earlier attributes, wildcards elsewhere, and the open
    /// interval at the failing attribute's GAO position.
    fn gap_to_constraint(&self, t: &[Val], level: usize, lower: Val, upper: Val) -> Constraint {
        let interval_pos = self.positions[level];
        let mut pattern = vec![PatternComp::Wildcard; interval_pos];
        for &p in &self.positions[..level] {
            pattern[p] = PatternComp::Eq(t[p]);
        }
        Constraint::new(pattern, (lower, upper))
    }
}

/// Builds the probers for every atom of a bound query. `skeleton[i]` controls whether
/// atom `i` inserts constraints into the CDS (Idea 7).
pub fn build_probers(bq: &BoundQuery, skeleton: &[bool]) -> Vec<AtomProber> {
    bq.atoms.iter().map(|ba| AtomProber::new(ba, &bq.var_pos, skeleton[ba.atom_idx])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{BoundQuery, Instance, QueryBuilder};
    use gj_storage::{Relation, NEG_INF};

    /// R(A2, A4, A5) from Figure 1, used as the only atom of a 7-attribute query so
    /// the GAO positions mirror the paper's Section 4.2 example (A0..A6).
    fn paper_setup() -> (BoundQuery, Vec<AtomProber>) {
        let mut inst = Instance::new();
        inst.add_relation(
            "r",
            Relation::from_rows(
                3,
                vec![
                    vec![5, 1, 4],
                    vec![5, 1, 7],
                    vec![5, 1, 12],
                    vec![7, 4, 6],
                    vec![7, 9, 8],
                    vec![7, 9, 13],
                    vec![10, 4, 1],
                ],
            ),
        );
        // Pad with unary atoms so the query has attributes A0..A6 in natural order
        // (variables get their ids in first-use order).
        inst.add_relation("u", Relation::from_values(0..20));
        let mut builder = QueryBuilder::new("example");
        for name in ["a0", "a1", "a2", "a3", "a4", "a5", "a6"] {
            builder = builder.atom("u", &[name]);
        }
        let q = builder.atom("r", &["a2", "a4", "a5"]).build();
        let gao = (0..7).collect();
        let bq = BoundQuery::new(&inst, &q, Some(gao)).unwrap();
        let probers = build_probers(&bq, &[true; 8]);
        (bq, probers)
    }

    #[test]
    fn gap_constraints_match_the_paper_examples() {
        let (_bq, mut probers) = paper_setup();
        let mut stats = ProbeStats::default();
        let r = probers.iter_mut().find(|p| p.positions() == [2, 4, 5]).unwrap();

        // Free tuple (2,6,6,1,3,7,9): R returns <*,*,(5,7),*,*,*,*>.
        let t = [2, 6, 6, 1, 3, 7, 9];
        match r.probe(&t, false, &mut stats) {
            ProbeOutcome::Gap { constraint, newly_discovered } => {
                assert!(newly_discovered);
                assert_eq!(constraint.interval_pos(), 2);
                assert_eq!(constraint.interval, (5, 7));
                assert_eq!(constraint.pattern, vec![PatternComp::Wildcard, PatternComp::Wildcard]);
            }
            other => panic!("expected a gap, got {other:?}"),
        }

        // Free tuple (2,6,7,1,5,8,9): R returns <*,*,7,*,(4,9),*,*>.
        let t = [2, 6, 7, 1, 5, 8, 9];
        match r.probe(&t, false, &mut stats) {
            ProbeOutcome::Gap { constraint, .. } => {
                assert_eq!(constraint.interval_pos(), 4);
                assert_eq!(constraint.interval, (4, 9));
                assert_eq!(
                    constraint.pattern,
                    vec![
                        PatternComp::Wildcard,
                        PatternComp::Wildcard,
                        PatternComp::Eq(7),
                        PatternComp::Wildcard,
                    ]
                );
            }
            other => panic!("expected a gap, got {other:?}"),
        }
    }

    #[test]
    fn member_when_projection_present() {
        let (_bq, mut probers) = paper_setup();
        let mut stats = ProbeStats::default();
        let r = probers.iter_mut().find(|p| p.positions() == [2, 4, 5]).unwrap();
        let t = [0, 0, 7, 0, 9, 13, 0];
        assert_eq!(r.probe(&t, false, &mut stats), ProbeOutcome::Member);
    }

    #[test]
    fn idea4_memo_skips_probe_inside_the_same_gap() {
        let (_bq, mut probers) = paper_setup();
        let mut stats = ProbeStats::default();
        let r = probers.iter_mut().find(|p| p.positions() == [2, 4, 5]).unwrap();
        let t1 = [2, 6, 6, 1, 3, 7, 9];
        assert!(matches!(
            r.probe(&t1, true, &mut stats),
            ProbeOutcome::Gap { newly_discovered: true, .. }
        ));
        // A different free tuple whose A2 value is still inside (5, 7).
        let t2 = [3, 9, 6, 2, 8, 1, 0];
        match r.probe(&t2, true, &mut stats) {
            ProbeOutcome::Gap { newly_discovered, .. } => assert!(!newly_discovered),
            other => panic!("expected a memoised gap, got {other:?}"),
        }
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.probes_skipped, 1);
        // With the memo disabled the probe is issued again.
        assert!(matches!(
            r.probe(&t2, false, &mut stats),
            ProbeOutcome::Gap { newly_discovered: true, .. }
        ));
        assert_eq!(stats.probes, 2);
    }

    #[test]
    fn stale_memos_reinsert_their_gap_after_begin_run() {
        let (_bq, mut probers) = paper_setup();
        let mut stats = ProbeStats::default();
        let r = probers.iter_mut().find(|p| p.positions() == [2, 4, 5]).unwrap();
        let t = [2, 6, 6, 1, 3, 7, 9];
        assert!(matches!(
            r.probe(&t, true, &mut stats),
            ProbeOutcome::Gap { newly_discovered: true, .. }
        ));
        // Same run: the memo answers and the CDS already knows the gap.
        assert!(matches!(
            r.probe(&t, true, &mut stats),
            ProbeOutcome::Gap { newly_discovered: false, .. }
        ));
        // New run over a reset CDS: the first memo hit must report the gap as newly
        // discovered again (the fresh CDS has never seen it), later hits must not.
        r.begin_run();
        assert!(matches!(
            r.probe(&t, true, &mut stats),
            ProbeOutcome::Gap { newly_discovered: true, .. }
        ));
        assert!(matches!(
            r.probe(&t, true, &mut stats),
            ProbeOutcome::Gap { newly_discovered: false, .. }
        ));
        assert_eq!(stats.probes, 1, "every repeat was answered from the memo");
        assert_eq!(stats.probes_skipped, 3);
    }

    #[test]
    fn idea4_memo_detects_membership_on_last_attribute_endpoints() {
        // The paper's own example: after R(B,C) produced <*, b, (l, r)>, the free
        // tuple (a, b, r) is known to be in R without a probe.
        let mut inst = Instance::new();
        inst.add_relation("r", Relation::from_pairs(vec![(1, 5), (1, 9)]));
        inst.add_relation("u", Relation::from_values(0..10));
        let q = QueryBuilder::new("q").atom("u", &["a"]).atom("r", &["b", "c"]).build();
        let bq = BoundQuery::new(&inst, &q, Some(vec![0, 1, 2])).unwrap();
        let mut probers = build_probers(&bq, &[true, true]);
        let r = probers.iter_mut().find(|p| p.positions() == [1, 2]).unwrap();
        let mut stats = ProbeStats::default();
        // (a=0, b=1, c=7): gap (5, 9) on the last attribute.
        assert!(matches!(r.probe(&[0, 1, 7], true, &mut stats), ProbeOutcome::Gap { .. }));
        // (a=3, b=1, c=9): 9 is the finite right endpoint -> member, no probe issued.
        assert_eq!(r.probe(&[3, 1, 9], true, &mut stats), ProbeOutcome::Member);
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.probes_skipped, 1);
    }

    #[test]
    fn memo_endpoint_shortcut_not_applied_on_infinite_ends() {
        let mut inst = Instance::new();
        inst.add_relation("r", Relation::from_pairs(vec![(1, 5)]));
        inst.add_relation("u", Relation::from_values(0..10));
        let q = QueryBuilder::new("q").atom("u", &["a"]).atom("r", &["b", "c"]).build();
        let bq = BoundQuery::new(&inst, &q, Some(vec![0, 1, 2])).unwrap();
        let mut probers = build_probers(&bq, &[true, true]);
        let r = probers.iter_mut().find(|p| p.positions() == [1, 2]).unwrap();
        let mut stats = ProbeStats::default();
        // Gap above the largest C value: (5, +inf).
        assert!(matches!(r.probe(&[0, 1, 7], true, &mut stats), ProbeOutcome::Gap { .. }));
        // POS_INF is not a data value; the memo must not claim membership for it.
        let outcome = r.probe(&[0, 1, POS_INF - 1], true, &mut stats);
        assert!(matches!(outcome, ProbeOutcome::Gap { .. }));
        let _ = NEG_INF;
    }
}
