//! Regression test for a miscount found during development: with complete nodes
//! (Idea 6) enabled on a β-cyclic query, frontier escapes from non-skeleton gaps and
//! violated order filters skipped values that the completeness bookkeeping assumed
//! had been scanned, so Minesweeper under-counted 2-lollipops (402 instead of 440 on
//! this instance). Complete nodes are now restricted to filter-free, all-skeleton
//! queries; every configuration must agree with LFTJ and the naive join here.

use gj_minesweeper::MsConfig;
use gj_query::{naive_count, BoundQuery, CatalogQuery, Instance};
use gj_storage::{Graph, Relation};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> =
        (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).filter(|_| rng.gen_bool(p)).collect();
    let g = Graph::new_undirected(n as usize, edges);
    let mut inst = Instance::new();
    inst.add_relation("edge", g.edge_relation());
    inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(4)));
    inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
    inst
}

fn configs() -> Vec<(&'static str, MsConfig)> {
    let base = MsConfig::default();
    vec![
        ("default", base.clone()),
        ("no idea6", MsConfig { idea6_complete_nodes: false, ..base.clone() }),
        (
            "no idea5/6",
            MsConfig { idea5_caching: false, idea6_complete_nodes: false, ..base.clone() },
        ),
        ("no idea7", MsConfig { idea7_skeleton: false, ..base.clone() }),
        ("no idea4", MsConfig { idea4_gap_memo: false, ..base.clone() }),
        ("baseline", MsConfig::baseline()),
    ]
}

#[test]
fn two_lollipop_regression_instance_counts_correctly_in_every_config() {
    let inst = random_instance(23, 30, 0.15);
    let q = CatalogQuery::TwoLollipop.query();
    // The expectation is computed by two independent reference engines — the
    // naive join and the serial pairwise baseline — instead of a pinned
    // literal: the literal was tied to one rand stream (440 under crates.io
    // rand, 407 under the vendored shim), but the shape of the regression — a
    // β-cyclic query with filters — is what matters, not the exact count.
    let expected = naive_count(&inst, &q);
    let pairwise = gj_baselines::pairwise_count(
        &inst,
        &q,
        gj_baselines::JoinAlgo::Hash,
        &gj_baselines::ExecLimits::default(),
    )
    .unwrap();
    assert_eq!(pairwise, expected, "reference engines disagree on the instance");
    assert!(expected > 0, "the regression instance degenerated to an empty answer");
    let bq = BoundQuery::new(&inst, &q, None).unwrap();
    assert_eq!(gj_lftj::count(&bq), expected);
    for (name, cfg) in configs() {
        assert_eq!(gj_minesweeper::count(&bq, &cfg), expected, "{name}");
    }
}

#[test]
fn cyclic_queries_with_filters_count_correctly_in_every_config() {
    let inst = random_instance(59, 45, 0.12);
    for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourClique, CatalogQuery::FourCycle] {
        let q = cq.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let expected = gj_lftj::count(&bq);
        for (name, cfg) in configs() {
            assert_eq!(gj_minesweeper::count(&bq, &cfg), expected, "{} {name}", q.name);
        }
    }
}
