//! Table 4 — Minesweeper runtimes on the 4-path query under the seven representative
//! global attribute orders of the paper: five nested elimination orders (NEOs) and
//! two non-NEO orders. The NEO with the longest path (ABCDE) should be the fastest;
//! the non-NEO orders lose the chain property (and with it the caching of Ideas 5/6)
//! and are much slower.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin table4_gao -- --scale 0.25
//! ```

use gj_bench::{time_cold, HarnessOptions, Table};
use gj_datagen::Dataset;
use gj_query::is_neo;
use graphjoin::{workload_database, CatalogQuery, Engine};

fn main() {
    let opts = HarnessOptions::from_args();
    // The paper's Table 4 uses the eight smallest datasets.
    let datasets = [
        Dataset::CaGrQc,
        Dataset::P2pGnutella04,
        Dataset::EgoFacebook,
        Dataset::CaCondMat,
        Dataset::WikiVote,
        Dataset::P2pGnutella31,
        Dataset::EmailEnron,
        Dataset::LocBrightkite,
    ];
    let graphs = opts.generate(&datasets);

    let query = CatalogQuery::FourPath;
    let q = query.query();
    let orders = ["abcde", "bacde", "bcade", "cbade", "cbdae", "abdce", "badce"];

    let mut columns: Vec<String> = orders.iter().map(|s| s.to_uppercase()).collect();
    columns.push("edges".to_string());
    let mut table = Table::new("Table 4: Minesweeper on 4-path under different GAOs (ms)", columns);

    // Annotate which orders are NEOs (printed once, matches the paper's grouping).
    let neo_flags: Vec<bool> = orders
        .iter()
        .map(|o| {
            let gao: Vec<usize> = o.chars().map(|c| q.var(&c.to_string()).unwrap()).collect();
            is_neo(&q, &gao)
        })
        .collect();
    println!(
        "NEO orders: {:?}; non-NEO orders: {:?}",
        orders.iter().zip(&neo_flags).filter(|(_, &n)| n).map(|(o, _)| *o).collect::<Vec<_>>(),
        orders.iter().zip(&neo_flags).filter(|(_, &n)| !n).map(|(o, _)| *o).collect::<Vec<_>>()
    );

    for (dataset, graph) in &graphs {
        let db = workload_database(graph.clone(), query, 8, opts.seed);
        let mut cells = Vec::new();
        let mut reference: Option<u64> = None;
        for order in orders {
            let gao: Vec<usize> = order.chars().map(|c| q.var(&c.to_string()).unwrap()).collect();
            let (count, elapsed) = time_cold(&db, || {
                db.count_with_gao(&q, &Engine::minesweeper(), Some(gao.clone())).unwrap()
            });
            if let Some(r) = reference {
                assert_eq!(r, count, "GAO {order} changed the answer on {}", dataset.name());
            }
            reference = Some(count);
            cells.push(format!("{:.1}", elapsed.as_secs_f64() * 1e3));
        }
        cells.push(graph.num_edges().to_string());
        table.row(dataset.name(), cells);
    }

    table.print();
    let path = table.write_csv("table4_gao").expect("csv");
    println!("\ncsv: {}", path.display());
}
