//! Table 6 — durations of the cyclic queries (3-clique, 4-clique, 4-cycle) across
//! systems: LFTJ, Minesweeper, the pairwise hash-join and sort-merge baselines
//! (PostgreSQL / MonetDB stand-ins) and the specialised graph engine (GraphLab
//! stand-in, cliques only). `-` marks a blown materialisation budget — the analogue
//! of the paper's 30-minute timeouts.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin table6_cyclic -- --scale 0.25
//! ```

use gj_bench::{print_dataset_summary, run_cell, standard_engines, HarnessOptions, Table};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine};

fn main() {
    let opts = HarnessOptions::from_args();
    let graphs = opts.generate(&Dataset::all());
    print_dataset_summary(&graphs);

    let queries = [CatalogQuery::ThreeClique, CatalogQuery::FourClique, CatalogQuery::FourCycle];
    let mut engines = standard_engines(opts.limits());
    engines.push(Engine::GraphEngine);

    let columns: Vec<String> = graphs.iter().map(|(d, _)| d.name().to_string()).collect();
    let mut tables = Vec::new();

    for query in queries {
        let mut table = Table::new(
            format!("Table 6: {} duration in ms (- = budget exceeded / unsupported)", query.name()),
            columns.clone(),
        );
        for engine in &engines {
            let mut row = Vec::new();
            for (_, graph) in &graphs {
                let db = workload_database(graph.clone(), query, 1, opts.seed);
                row.push(run_cell(&db, &query, engine).render());
            }
            table.row(engine.label(), row);
        }
        table.print();
        let path =
            table.write_csv(&format!("table6_{}", query.name().replace('-', "_"))).expect("csv");
        println!("csv: {}", path.display());
        tables.push(table);
    }
}
