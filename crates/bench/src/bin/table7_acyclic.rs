//! Table 7 — durations of the acyclic (and lollipop) queries with the paper's
//! selectivities across systems: LFTJ, Minesweeper, the pairwise baselines, and the
//! hybrid algorithm for the lollipop queries. Each dataset gets one column per
//! selectivity (80/8 for the small datasets, 1000/100/10 for the larger ones).
//!
//! ```sh
//! cargo run --release -p gj-bench --bin table7_acyclic -- --scale 0.25
//! ```

use gj_bench::{
    paper_selectivities, print_dataset_summary, run_cell, standard_engines, HarnessOptions, Table,
};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine};

fn main() {
    let opts = HarnessOptions::from_args();
    let graphs = opts.generate(&Dataset::all());
    print_dataset_summary(&graphs);

    let queries = [
        CatalogQuery::ThreePath,
        CatalogQuery::FourPath,
        CatalogQuery::OneTree,
        CatalogQuery::TwoTree,
        CatalogQuery::TwoComb,
        CatalogQuery::TwoLollipop,
        CatalogQuery::ThreeLollipop,
    ];

    for query in queries {
        let mut engines = standard_engines(opts.limits());
        if let Some(hybrid) = Engine::hybrid_for(query) {
            engines.push(hybrid);
        }
        // One column per (dataset, selectivity) pair, like the paper's nested header.
        let mut columns = Vec::new();
        for (dataset, _) in &graphs {
            for &s in paper_selectivities(*dataset) {
                columns.push(format!("{}/{}", dataset.name(), s));
            }
        }
        let mut table = Table::new(
            format!("Table 7: {} duration in ms per dataset/selectivity", query.name()),
            columns,
        );
        for engine in &engines {
            let mut row = Vec::new();
            for (dataset, graph) in &graphs {
                for &selectivity in paper_selectivities(*dataset) {
                    let db = workload_database(graph.clone(), query, selectivity, opts.seed);
                    row.push(run_cell(&db, &query, engine).render());
                }
            }
            table.row(engine.label(), row);
        }
        table.print();
        let path =
            table.write_csv(&format!("table7_{}", query.name().replace('-', "_"))).expect("csv");
        println!("csv: {}", path.display());
    }
}
