//! Table 3 — speed-up from Idea 7 (the β-acyclic skeleton) on the cyclic queries
//! 3-clique, 4-clique and 4-cycle. Without Idea 7, every atom inserts constraints
//! into the CDS, the chain machinery cannot be used and the CDS sprouts one
//! specialisation branch per value combination — which is the "thrashing" (`8`)
//! behaviour the paper reports; the materialisation budget stands in for that
//! timeout here.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin table3_idea7 -- --scale 0.25
//! ```

use gj_bench::{print_dataset_summary, ratio, time_cold, HarnessOptions, Table};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine, MsConfig};

fn main() {
    let opts = HarnessOptions::from_args();
    let graphs = opts.generate(&Dataset::small_and_medium());
    print_dataset_summary(&graphs);

    let queries = [CatalogQuery::ThreeClique, CatalogQuery::FourClique, CatalogQuery::FourCycle];
    let with_idea7 = MsConfig::default();
    let without_idea7 = MsConfig { idea7_skeleton: false, ..MsConfig::default() };

    let columns: Vec<String> = graphs.iter().map(|(d, _)| d.name().to_string()).collect();
    let mut table = Table::new("Table 3: speed-up with Idea 7 (cyclic queries)", columns);

    for query in queries {
        let mut row = Vec::new();
        for (_, graph) in &graphs {
            let db = workload_database(graph.clone(), query, 1, opts.seed);
            let q = query.query();
            let (slow_count, slow) = time_cold(&db, || {
                db.count(&q, &Engine::Minesweeper(without_idea7.clone())).unwrap()
            });
            let (fast_count, fast) =
                time_cold(&db, || db.count(&q, &Engine::Minesweeper(with_idea7.clone())).unwrap());
            assert_eq!(slow_count, fast_count, "idea 7 changed the answer");
            row.push(ratio(Some(slow.as_secs_f64() * 1e3), Some(fast.as_secs_f64() * 1e3)));
        }
        table.row(query.name(), row);
    }

    table.print();
    let path = table.write_csv("table3_idea7").expect("csv");
    println!("\ncsv: {}", path.display());
}
