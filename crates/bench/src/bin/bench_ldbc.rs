//! Machine-readable LDBC-workload benchmark: every multi-relation social-network
//! query through every general engine, serial and 4-thread parallel, plus a
//! history-checked traffic-mix replay through the serving layer. Written as
//! `target/bench-results/BENCH_ldbc.json` next to the `bench_joins` record.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin bench_ldbc -- --persons 1200
//! ```
//!
//! Options: `--persons <n>` `--seed <s>` `--reps <r>` `--out <path>`.
//! Each measurement is the minimum over `reps` repetitions. Per query and
//! engine the record reports:
//!
//! * `prepare_ms` — cold preparation (shared index cache cleared first): GAO
//!   selection across relations of mixed arity plus every trie build;
//! * `run_ms` — one serial execution of the prepared query;
//! * `par4_run_ms` / `par4_speedup` — the same count on 4 morsel workers;
//! * `count` — the answer, asserted identical across serial/parallel reps.
//!
//! The pairwise baselines (`psql`, `monetdb`) are probed through the
//! budget-aware outcome entry point first: a query whose materialised
//! intermediates overrun the budget is recorded as a timeout cell (the paper's
//! "-"), not a crash.
//!
//! The trailing `replay` object is the serving-layer trajectory: a seeded
//! read/edit traffic mix over the LDBC relations replayed on 4 concurrent
//! sessions, gated by the serial-replay history checker.

use gj_datagen::{LdbcConfig, SocialNetwork};
use gj_service::{generate_trace, replay_verified, Service, ServiceConfig, TraceConfig};
use graphjoin::{Database, Engine, ExecLimits, LdbcQuery, MsConfig, QueryBudget, RunOutcome};
use std::io::Write;
use std::time::Instant;

struct Opts {
    persons: usize,
    seed: u64,
    reps: usize,
    out: String,
}

impl Opts {
    fn from_args() -> Opts {
        let mut opts = Opts {
            persons: 1200,
            seed: 0x1dbc,
            reps: 3,
            out: "target/bench-results/BENCH_ldbc.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value =
                |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match arg.as_str() {
                "--persons" => {
                    opts.persons = value("--persons").parse().expect("numeric --persons")
                }
                "--seed" => opts.seed = value("--seed").parse().expect("numeric --seed"),
                "--reps" => opts.reps = value("--reps").parse().expect("numeric --reps"),
                "--out" => opts.out = value("--out"),
                "--help" | "-h" => {
                    eprintln!("options: --persons <n> --seed <s> --reps <r> --out <path>");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
        }
        opts
    }
}

/// Minimum duration of `f` over `reps` runs, in milliseconds, along with the
/// last result (all runs must agree on it).
fn min_ms<T: PartialEq + std::fmt::Debug>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &result {
            assert_eq!(prev, &out, "benchmark runs must be deterministic");
        }
        result = Some(out);
    }
    (best, result.expect("at least one rep"))
}

fn main() {
    let opts = Opts::from_args();
    // Scale companion populations with the person count so the workload keeps
    // its shape at every size.
    let config = LdbcConfig {
        persons: opts.persons,
        tags: (opts.persons / 8).clamp(16, 400),
        seed: opts.seed,
        ..LdbcConfig::default()
    };
    let net = SocialNetwork::generate(&config).expect("generate LDBC network");
    let mut db = Database::new();
    let mut shape = Vec::new();
    for (name, rel) in net.relations() {
        shape.push(format!("{name}={} (arity {})", rel.len(), rel.arity()));
        db.add_relation(*name, rel.clone());
    }
    println!("ldbc: {}", shape.join(", "));

    let engines: Vec<(&str, Engine)> = vec![
        ("lb/lftj", Engine::Lftj),
        ("lb/ms", Engine::Minesweeper(MsConfig::default())),
        ("psql", Engine::HashJoin(ExecLimits::default())),
        ("monetdb", Engine::SortMergeJoin(ExecLimits::default())),
    ];

    let mut records = Vec::new();
    let mut covered = std::collections::BTreeSet::new();
    for lq in LdbcQuery::all() {
        let q = lq.query();
        for (label, engine) in &engines {
            let expects_indexes = matches!(engine, Engine::Lftj | Engine::Minesweeper(_));
            let mut prepare_ms = f64::INFINITY;
            let mut prepared = None;
            for _ in 0..opts.reps.max(1) {
                db.cache().clear();
                let start = Instant::now();
                let p = db.prepare(&q, engine).expect("prepare");
                prepare_ms = prepare_ms.min(start.elapsed().as_secs_f64() * 1e3);
                prepared = Some(p);
            }
            let prepared = prepared.expect("at least one prepare rep");

            // Budget probe for the pairwise baselines: a blown materialisation
            // budget becomes a recorded timeout cell, not a crash.
            let probe = if expects_indexes {
                RunOutcome::Completed
            } else {
                prepared.count_outcome(1, &QueryBudget::new()).outcome
            };
            if let RunOutcome::Aborted { reason, .. } = &probe {
                println!(
                    "{:<20} {:<8} prepare {:>8.3} ms   TIMEOUT ({reason})",
                    q.name, label, prepare_ms
                );
                records.push(format!(
                    "    {{\"query\": \"{}\", \"engine\": \"{}\", \"prepare_ms\": {:.3}, \"timeout\": true, \"outcome\": \"{}\"}}",
                    q.name, label, prepare_ms, probe.label()
                ));
                continue;
            }

            let (run_ms, count) = min_ms(opts.reps, || prepared.count().expect("count"));
            let (par4_run_ms, par_count) =
                min_ms(opts.reps, || prepared.par_count(4).expect("par_count"));
            assert_eq!(par_count, count, "parallel execution must agree with serial");
            let par4_speedup = run_ms / par4_run_ms.max(1e-9);
            covered.insert(q.name.clone());

            println!(
                "{:<20} {:<8} prepare {:>8.3} ms   run {:>9.3} ms   par4 {:>9.3} ms ({:>4.2}x)   count {}",
                q.name, label, prepare_ms, run_ms, par4_run_ms, par4_speedup, count
            );
            records.push(format!(
                "    {{\"query\": \"{}\", \"engine\": \"{}\", \"cyclic\": {}, \"prepare_ms\": {:.3}, \"run_ms\": {:.3}, \"par4_run_ms\": {:.3}, \"par4_speedup\": {:.2}, \"count\": {}, \"outcome\": \"{}\"}}",
                q.name, label, lq.is_cyclic(), prepare_ms, run_ms, par4_run_ms, par4_speedup, count, probe.label()
            ));
        }
    }
    assert!(covered.len() >= 8, "only {} queries fully covered", covered.len());

    // Serving-layer traffic replay: a seeded mix of cheap reads and edit
    // batches over the social relations, on 4 concurrent sessions, verified
    // by the serial-replay history checker.
    let base = db.clone();
    let read_mix: Vec<_> = [
        LdbcQuery::TwoHopFriends,
        LdbcQuery::FriendTriangle,
        LdbcQuery::FreshLikes,
        LdbcQuery::CommonTagPair,
    ]
    .iter()
    .flat_map(|lq| {
        [(lq.query(), Engine::Lftj), (lq.query(), Engine::Minesweeper(MsConfig::default()))]
    })
    .collect();
    let trace_config = TraceConfig { ops: 200, seed: opts.seed ^ 0xface, ..TraceConfig::default() };
    let trace = generate_trace(&db, &read_mix, &["knows", "likes", "hasTag"], &trace_config);
    let service = Service::new(
        db,
        ServiceConfig { max_concurrent: 4, queue_depth: 32, ..ServiceConfig::default() },
    );
    let replay_start = Instant::now();
    let report = replay_verified(&service, &base, &trace, 4).expect("history-checked replay");
    let replay_secs = replay_start.elapsed().as_secs_f64();
    let ops_per_s = trace.len() as f64 / replay_secs.max(1e-9);
    println!(
        "replay: {} ops in {:.1} ms ({:.0} ops/s): {} reads, {} edits, {} saturated, {} cancelled, epoch {}",
        trace.len(),
        replay_secs * 1e3,
        ops_per_s,
        report.reads,
        report.edits,
        report.saturated,
        report.cancelled,
        report.final_epoch
    );

    let json = format!(
        "{{\n  \"harness\": \"bench_ldbc\",\n  \"persons\": {},\n  \"tags\": {},\n  \"seed\": {},\n  \"reps\": {},\n  \"queries_covered\": {},\n  \"results\": [\n{}\n  ],\n  \"replay\": {{\"ops\": {}, \"ops_per_s\": {:.0}, \"reads\": {}, \"read_rows\": {}, \"edits\": {}, \"saturated\": {}, \"cancelled\": {}, \"final_epoch\": {}, \"history_checked\": true}}\n}}\n",
        config.persons,
        config.tags,
        opts.seed,
        opts.reps,
        covered.len(),
        records.join(",\n"),
        trace.len(),
        ops_per_s,
        report.reads,
        report.read_rows,
        report.edits,
        report.saturated,
        report.cancelled,
        report.final_epoch
    );
    let path = std::path::Path::new(&opts.out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut file = std::fs::File::create(path).expect("create BENCH_ldbc.json");
    file.write_all(json.as_bytes()).expect("write BENCH_ldbc.json");
    println!("\njson: {}", path.display());
}
