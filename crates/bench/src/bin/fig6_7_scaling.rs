//! Figures 6 and 7 — 3-clique and 4-clique durations on increasingly large subsets of
//! the LiveJournal-like graph (the paper's "subset of N edges" scaling study), across
//! all systems. The worst-case optimal joins keep working orders of magnitude past
//! the point where the pairwise baselines blow their budget, and LFTJ outlasts
//! Minesweeper — the orderings the paper's figures show.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin fig6_7_scaling -- --scale 0.5
//! ```

use gj_bench::{run_cell, standard_engines, HarnessOptions, Table};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine};

fn main() {
    let opts = HarnessOptions::from_args();
    let graphs = opts.generate(&[Dataset::SocLiveJournal1]);
    let (_, full_graph) = &graphs[0];
    println!(
        "LiveJournal stand-in: {} nodes, {} directed edges",
        full_graph.num_nodes(),
        full_graph.num_edges()
    );

    // Edge-count steps: powers of four up to the full graph.
    let mut steps = Vec::new();
    let mut n = 4096usize;
    while n < full_graph.num_edges() {
        steps.push(n);
        n *= 4;
    }
    steps.push(full_graph.num_edges());

    let mut engines = standard_engines(opts.limits());
    engines.push(Engine::GraphEngine);

    for (figure, query) in
        [("Figure 6", CatalogQuery::ThreeClique), ("Figure 7", CatalogQuery::FourClique)]
    {
        let columns: Vec<String> = steps.iter().map(|n| format!("{n}")).collect();
        let mut table =
            Table::new(format!("{figure}: {} duration in ms vs edge count", query.name()), columns);
        for engine in &engines {
            let mut row = Vec::new();
            for &edges in &steps {
                let subset = full_graph.edge_prefix(edges);
                let db = workload_database(subset, query, 1, opts.seed);
                row.push(run_cell(&db, &query, engine).render());
            }
            table.row(engine.label(), row);
        }
        table.print();
        let path =
            table.write_csv(&format!("fig6_7_{}", query.name().replace('-', "_"))).expect("csv");
        println!("csv: {}", path.display());
    }
}
