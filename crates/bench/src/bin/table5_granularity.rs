//! Table 5 — normalised runtime of multi-threaded Minesweeper as a function of the
//! partition granularity factor `f` (Section 4.10): the output space is split into
//! `threads × f` jobs served by a work-stealing pool. `f = 1` is the baseline;
//! values below 1.0 mean the extra granularity helped (it mostly does for the cyclic
//! queries, whose partitions are skewed).
//!
//! ```sh
//! cargo run --release -p gj-bench --bin table5_granularity -- --scale 0.25
//! ```

use gj_bench::{time_cold, HarnessOptions, Table};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine, MsConfig};

fn main() {
    let opts = HarnessOptions::from_args();
    // A handful of mid-sized datasets keeps the sweep affordable; the paper averages
    // across datasets as well.
    let datasets = [Dataset::WikiVote, Dataset::CaCondMat, Dataset::EmailEnron];
    let graphs = opts.generate(&datasets);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    println!("worker threads: {threads}");

    let queries = [
        CatalogQuery::ThreePath,
        CatalogQuery::FourPath,
        CatalogQuery::TwoComb,
        CatalogQuery::ThreeClique,
        CatalogQuery::FourClique,
        CatalogQuery::FourCycle,
    ];
    let granularities = [1usize, 2, 3, 4, 8, 12, 14];

    let columns: Vec<String> = granularities.iter().map(|g| g.to_string()).collect();
    let mut table =
        Table::new("Table 5: average normalised runtime across partition granularity", columns);

    for query in queries {
        // Average the normalised runtime over the datasets.
        let mut sums = vec![0.0f64; granularities.len()];
        for (_, graph) in &graphs {
            let db = workload_database(graph.clone(), query, 10, opts.seed);
            let q = query.query();
            let mut baseline_ms = 0.0;
            for (i, &granularity) in granularities.iter().enumerate() {
                let config = MsConfig { threads, granularity, ..MsConfig::default() };
                let (_, elapsed) =
                    time_cold(&db, || db.count(&q, &Engine::Minesweeper(config)).unwrap());
                let ms = elapsed.as_secs_f64() * 1e3;
                if i == 0 {
                    baseline_ms = ms.max(1e-3);
                }
                sums[i] += ms / baseline_ms;
            }
        }
        let row: Vec<String> =
            sums.iter().map(|s| format!("{:.2}", s / graphs.len() as f64)).collect();
        table.row(query.name(), row);
    }

    table.print();
    let path = table.write_csv("table5_granularity").expect("csv");
    println!("\ncsv: {}", path.display());
}
