//! Table 1 — speed-up from Idea 4 (gap memo) and Ideas 4+6 (complete nodes) on the
//! acyclic queries 2-comb, 3-path and 4-path, selectivity 8, across the small and
//! medium datasets.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin table1_idea4_6 -- --scale 0.25
//! ```

use gj_bench::{print_dataset_summary, ratio, time_cold, HarnessOptions, Table};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine, MsConfig};

fn main() {
    let opts = HarnessOptions::from_args();
    let graphs = opts.generate(&Dataset::small_and_medium());
    print_dataset_summary(&graphs);

    let queries = [CatalogQuery::TwoComb, CatalogQuery::ThreePath, CatalogQuery::FourPath];
    let selectivity = 8;

    let without_ideas =
        MsConfig { idea4_gap_memo: false, idea6_complete_nodes: false, ..MsConfig::default() };
    let with_idea4 = MsConfig { idea6_complete_nodes: false, ..MsConfig::default() };
    let with_idea4_and_6 = MsConfig::default();

    let columns: Vec<String> = graphs.iter().map(|(d, _)| d.name().to_string()).collect();
    let mut table_idea4 = Table::new("Table 1 (top): speed-up with Idea 4", columns.clone());
    let mut table_idea46 = Table::new("Table 1 (bottom): speed-up with Ideas 4 & 6", columns);

    for query in queries {
        let mut row4 = Vec::new();
        let mut row46 = Vec::new();
        for (_, graph) in &graphs {
            let db = workload_database(graph.clone(), query, selectivity, opts.seed);
            let q = query.query();
            let (base_count, base) = time_cold(&db, || {
                db.count(&q, &Engine::Minesweeper(without_ideas.clone())).unwrap()
            });
            let (c4, t4) =
                time_cold(&db, || db.count(&q, &Engine::Minesweeper(with_idea4.clone())).unwrap());
            let (c46, t46) = time_cold(&db, || {
                db.count(&q, &Engine::Minesweeper(with_idea4_and_6.clone())).unwrap()
            });
            assert_eq!(base_count, c4, "idea 4 changed the answer");
            assert_eq!(base_count, c46, "ideas 4+6 changed the answer");
            row4.push(ratio(Some(base.as_secs_f64() * 1e3), Some(t4.as_secs_f64() * 1e3)));
            row46.push(ratio(Some(base.as_secs_f64() * 1e3), Some(t46.as_secs_f64() * 1e3)));
        }
        table_idea4.row(query.name(), row4);
        table_idea46.row(query.name(), row46);
    }

    table_idea4.print();
    table_idea46.print();
    let p1 = table_idea4.write_csv("table1_idea4").expect("csv");
    let p2 = table_idea46.write_csv("table1_idea4_6").expect("csv");
    println!("\ncsv: {} and {}", p1.display(), p2.display());
}
