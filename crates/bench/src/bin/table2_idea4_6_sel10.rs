//! Table 2 — speed-up from Ideas 4 & 6 with selectivity 10 (same layout as Table 1's
//! bottom block, lower selectivity = larger samples = more redundant work for the
//! caching to remove).
//!
//! ```sh
//! cargo run --release -p gj-bench --bin table2_idea4_6_sel10 -- --scale 0.25
//! ```

use gj_bench::{print_dataset_summary, ratio, time_cold, HarnessOptions, Table};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine, MsConfig};

fn main() {
    let opts = HarnessOptions::from_args();
    let graphs = opts.generate(&Dataset::small_and_medium());
    print_dataset_summary(&graphs);

    let queries = [CatalogQuery::TwoComb, CatalogQuery::ThreePath, CatalogQuery::FourPath];
    let selectivity = 10;

    let without_ideas =
        MsConfig { idea4_gap_memo: false, idea6_complete_nodes: false, ..MsConfig::default() };
    let with_ideas = MsConfig::default();

    let columns: Vec<String> = graphs.iter().map(|(d, _)| d.name().to_string()).collect();
    let mut table = Table::new("Table 2: speed-up with Ideas 4 & 6, selectivity 10", columns);

    for query in queries {
        let mut row = Vec::new();
        for (_, graph) in &graphs {
            let db = workload_database(graph.clone(), query, selectivity, opts.seed);
            let q = query.query();
            let (base_count, base) = time_cold(&db, || {
                db.count(&q, &Engine::Minesweeper(without_ideas.clone())).unwrap()
            });
            let (count, improved) =
                time_cold(&db, || db.count(&q, &Engine::Minesweeper(with_ideas.clone())).unwrap());
            assert_eq!(base_count, count, "ideas 4+6 changed the answer");
            row.push(ratio(Some(base.as_secs_f64() * 1e3), Some(improved.as_secs_f64() * 1e3)));
        }
        table.row(query.name(), row);
    }

    table.print();
    let path = table.write_csv("table2_idea4_6_sel10").expect("csv");
    println!("\ncsv: {}", path.display());
}
