//! Machine-readable join benchmark: per-query, per-engine wall-clock **and**
//! index-build (bind) time, written as `target/bench-results/BENCH_joins.json`
//! next to the CSVs the table harnesses produce. The JSON is the cross-PR perf
//! trajectory record: run it before and after a storage/engine change and diff
//! the `bind_ms` / `run_ms` fields.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin bench_joins -- --nodes 30000 --degree 8
//! ```
//!
//! Options: `--nodes <n>` `--degree <m>` `--seed <s>` `--reps <r>` `--out <path>`.
//! Each measurement is the minimum over `reps` repetitions (bind and run are
//! measured separately; `bind_ms` covers GAO selection plus construction of every
//! GAO-consistent trie index the query needs).

use gj_datagen::{powerlaw_cluster, sample_relations};
use gj_query::BoundQuery;
use graphjoin::{CatalogQuery, Engine, Instance, MsConfig, Query};
use std::io::Write;
use std::time::Instant;

struct Opts {
    nodes: usize,
    degree: usize,
    seed: u64,
    reps: usize,
    out: String,
}

impl Opts {
    fn from_args() -> Opts {
        let mut opts = Opts {
            nodes: 30_000,
            degree: 8,
            seed: 0x5eed,
            reps: 3,
            out: "target/bench-results/BENCH_joins.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value =
                |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match arg.as_str() {
                "--nodes" => opts.nodes = value("--nodes").parse().expect("numeric --nodes"),
                "--degree" => opts.degree = value("--degree").parse().expect("numeric --degree"),
                "--seed" => opts.seed = value("--seed").parse().expect("numeric --seed"),
                "--reps" => opts.reps = value("--reps").parse().expect("numeric --reps"),
                "--out" => opts.out = value("--out"),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --nodes <n> --degree <m> --seed <s> --reps <r> --out <path>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
        }
        opts
    }
}

/// Minimum duration of `f` over `reps` runs, in milliseconds, along with the last
/// result (all runs must agree on it).
fn min_ms<T: PartialEq + std::fmt::Debug>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &result {
            assert_eq!(prev, &out, "benchmark runs must be deterministic");
        }
        result = Some(out);
    }
    (best, result.expect("at least one rep"))
}

fn engine_count(engine: &Engine, bq: &BoundQuery) -> u64 {
    match engine {
        Engine::Lftj => gj_lftj::count(bq),
        Engine::Minesweeper(cfg) => gj_minesweeper::count(bq, cfg),
        other => panic!("bench_joins does not drive {}", other.label()),
    }
}

fn main() {
    let opts = Opts::from_args();
    let graph = powerlaw_cluster(opts.nodes, opts.degree, 0.4, opts.seed);
    let mut instance = Instance::new();
    instance.add_relation("edge", graph.edge_relation());
    for (name, rel) in sample_relations(graph.num_nodes(), 10, 4, opts.seed) {
        instance.add_relation(name, rel);
    }
    println!(
        "graph: {} nodes, {} directed edges, {} triangles",
        graph.num_nodes(),
        graph.num_edges(),
        graph.triangle_count()
    );

    let queries = [
        CatalogQuery::ThreeClique,
        CatalogQuery::FourClique,
        CatalogQuery::FourCycle,
        CatalogQuery::ThreePath,
    ];
    let engines: Vec<(&str, Engine)> =
        vec![("lb/lftj", Engine::Lftj), ("lb/ms", Engine::Minesweeper(MsConfig::default()))];

    let mut records = Vec::new();
    for cq in queries {
        let q: Query = cq.query();
        // Index-build cost: binding constructs every GAO-consistent trie index the
        // query needs (shared across engines, so measured once per query). The
        // timed span covers only BoundQuery::new; the last bound query is reused
        // for the engine runs below.
        let mut bind_ms = f64::INFINITY;
        let mut bound: Option<BoundQuery> = None;
        for _ in 0..opts.reps.max(1) {
            let start = Instant::now();
            let b = BoundQuery::new(&instance, &q, None).expect("bind");
            bind_ms = bind_ms.min(start.elapsed().as_secs_f64() * 1e3);
            if let Some(prev) = &bound {
                assert_eq!(prev.atom_sizes(), b.atom_sizes(), "binding must be deterministic");
            }
            bound = Some(b);
        }
        let bound = bound.expect("at least one bind rep");
        for (label, engine) in &engines {
            let (run_ms, count) = min_ms(opts.reps, || engine_count(engine, &bound));
            println!(
                "{:<10} {:<8} bind {:>9.3} ms   run {:>9.3} ms   count {}",
                q.name, label, bind_ms, run_ms, count
            );
            records.push(format!(
                "    {{\"query\": \"{}\", \"engine\": \"{}\", \"bind_ms\": {:.3}, \"run_ms\": {:.3}, \"count\": {}}}",
                q.name, label, bind_ms, run_ms, count
            ));
        }
    }

    let json = format!(
        "{{\n  \"harness\": \"bench_joins\",\n  \"nodes\": {},\n  \"edges\": {},\n  \"seed\": {},\n  \"reps\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        graph.num_nodes(),
        graph.num_edges(),
        opts.seed,
        opts.reps,
        records.join(",\n")
    );
    let path = std::path::Path::new(&opts.out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut file = std::fs::File::create(path).expect("create BENCH_joins.json");
    file.write_all(json.as_bytes()).expect("write BENCH_joins.json");
    println!("\njson: {}", path.display());
}
