//! Machine-readable join benchmark: per-query, per-engine **prepare** (GAO +
//! trie-index construction) versus **execute** wall-clock, cold and warm, written as
//! `target/bench-results/BENCH_joins.json` next to the CSVs the table harnesses
//! produce. The JSON is the cross-PR perf trajectory record: run it before and after
//! a storage/engine change and diff the `prepare_ms` / `run_ms` fields.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin bench_joins -- --nodes 30000 --degree 8
//! ```
//!
//! Options: `--nodes <n>` `--degree <m>` `--seed <s>` `--reps <r>` `--out <path>`.
//! Each measurement is the minimum over `reps` repetitions. Per query and engine the
//! record reports:
//!
//! * `prepare_ms` — cold preparation: the shared index cache is cleared first, so
//!   this covers GAO selection plus construction of every trie index the query
//!   needs;
//! * `warm_prepare_ms` — preparing the same query again with the cache warm (the
//!   prepared-statement steady state: should be near zero);
//! * `run_ms` — one execution of the prepared query (single-threaded);
//! * `rerun_ms` — a warm re-execution of the same prepared query (the per-request
//!   cost under repeated traffic);
//! * `par4_run_ms` / `par4_speedup` — the same execution through
//!   `PreparedQuery::par_count` on 4 worker threads (the morsel-driven runtime),
//!   so the JSON records a scaling column next to the serial trajectory;
//! * `par4_rerun_ms` / `par4_rerun_speedup` — a **warm** parallel rerun of the
//!   same prepared query: the workers retired by the first parallel run left
//!   their state behind (the pairwise engines pool their buffers and merge-join
//!   left sort permutations in the plan), so the rerun column tracks the
//!   steady-state per-request cost under repeated parallel traffic, next to the
//!   cold `par4_run_ms`;
//! * `edits_per_s` / `edit_run_ms` — the incremental-update trajectory: one
//!   batch of edge inserts + deletes applied through the delta-trie path
//!   (every cached permutation patched, none rebuilt — asserted), then a warm
//!   post-edit execution over the merged base + delta indexes.
//!
//! Besides the trie engines, the pairwise baselines (`psql` = hash join,
//! `monetdb` = sort-merge join) are benchmarked on the sample-restricted acyclic
//! query — on the cyclic self-joins at this scale their materialised
//! intermediates explode into the budget, which is the paper's point, not a
//! trajectory worth recording per PR. Their `par4_*` columns exercise the
//! morsel-parallel pairwise path.
//!
//! Two serving-stack columns ride along per record:
//!
//! * `open_ms` — cold-start-to-first-answer from disk: `Database::open` on a
//!   store persisted once at startup, plus prepare and one count (lazy slot
//!   hydration through the buffer pool included);
//! * `svc8_qps` — sustained queries/second through `gj-service`: 8 concurrent
//!   sessions over one shared snapshot, each issuing repeated counts through
//!   admission control and the history recorder.

use gj_service::{Service, ServiceConfig};
use graphjoin::{
    CatalogQuery, Database, Engine, ExecLimits, MsConfig, PreparedQuery, Query, QueryBudget,
    RunOutcome,
};
use std::io::Write;
use std::time::Instant;

struct Opts {
    nodes: usize,
    degree: usize,
    seed: u64,
    reps: usize,
    out: String,
}

impl Opts {
    fn from_args() -> Opts {
        let mut opts = Opts {
            nodes: 30_000,
            degree: 8,
            seed: 0x5eed,
            reps: 3,
            out: "target/bench-results/BENCH_joins.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value =
                |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match arg.as_str() {
                "--nodes" => opts.nodes = value("--nodes").parse().expect("numeric --nodes"),
                "--degree" => opts.degree = value("--degree").parse().expect("numeric --degree"),
                "--seed" => opts.seed = value("--seed").parse().expect("numeric --seed"),
                "--reps" => opts.reps = value("--reps").parse().expect("numeric --reps"),
                "--out" => opts.out = value("--out"),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --nodes <n> --degree <m> --seed <s> --reps <r> --out <path>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
        }
        opts
    }
}

/// Minimum duration of `f` over `reps` runs, in milliseconds, along with the last
/// result (all runs must agree on it).
fn min_ms<T: PartialEq + std::fmt::Debug>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &result {
            assert_eq!(prev, &out, "benchmark runs must be deterministic");
        }
        result = Some(out);
    }
    (best, result.expect("at least one rep"))
}

fn main() {
    let opts = Opts::from_args();
    let graph = gj_datagen::powerlaw_cluster(opts.nodes, opts.degree, 0.4, opts.seed);
    let mut db = Database::new();
    println!(
        "graph: {} nodes, {} directed edges, {} triangles ({} prepare threads)",
        graph.num_nodes(),
        graph.num_edges(),
        graph.triangle_count(),
        db.prepare_threads()
    );
    db.add_graph(graph);
    let num_nodes = db.graph().expect("graph just loaded").num_nodes();
    for (name, rel) in gj_datagen::sample_relations(num_nodes, 10, 4, opts.seed) {
        db.add_relation(name, rel);
    }

    // Persist the database once: the `open_ms` column below measures the full
    // cold-start path (open the paged store, prepare, count) against this image.
    let store_dir = std::env::temp_dir().join(format!("gj-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let persist_start = Instant::now();
    db.persist(&store_dir).expect("persist bench database");
    println!(
        "store: persisted to {} in {:.1} ms",
        store_dir.display(),
        persist_start.elapsed().as_secs_f64() * 1e3
    );

    let queries = [
        CatalogQuery::ThreeClique,
        CatalogQuery::FourClique,
        CatalogQuery::FourCycle,
        CatalogQuery::ThreePath,
    ];
    let trie_engines: Vec<(&str, Engine)> =
        vec![("lb/lftj", Engine::Lftj), ("lb/ms", Engine::Minesweeper(MsConfig::default()))];
    let pairwise_engines: Vec<(&str, Engine)> = vec![
        ("psql", Engine::HashJoin(ExecLimits::default())),
        ("monetdb", Engine::SortMergeJoin(ExecLimits::default())),
    ];

    let mut records = Vec::new();
    for cq in queries {
        let q: Query = cq.query();
        let mut engines = trie_engines.clone();
        if cq == CatalogQuery::ThreePath {
            engines.extend(pairwise_engines.clone());
        }
        for (label, engine) in &engines {
            // Cold prepare: every rep clears the shared cache first, so the timing
            // covers GAO selection plus every trie-index build (for the pairwise
            // baselines: planning, row copies and right-side probe structures).
            let expects_indexes = matches!(engine, Engine::Lftj | Engine::Minesweeper(_));
            let mut prepare_ms = f64::INFINITY;
            let mut prepared: Option<PreparedQuery<'_>> = None;
            for _ in 0..opts.reps.max(1) {
                db.cache().clear();
                let start = Instant::now();
                let p = db.prepare(&q, engine).expect("prepare");
                prepare_ms = prepare_ms.min(start.elapsed().as_secs_f64() * 1e3);
                assert!(
                    !expects_indexes || p.indexes_built() > 0,
                    "a cold prepare must build indexes"
                );
                prepared = Some(p);
            }
            let prepared = prepared.expect("at least one prepare rep");
            let threads = prepared.build_threads();

            // The pairwise baselines can overrun their materialisation budget at
            // bench scale — the paper's "-" (timeout) cells. Probe once through the
            // never-failing outcome entry point (only the pairwise engines; the
            // trie engines have no budget to trip): a budget abort is typed in
            // `RunStats::outcome`, so the harness records the timeout cell instead
            // of dying; the budget aborts mid-join, so the probe is cheap in both
            // time and memory.
            let probe = if expects_indexes {
                RunOutcome::Completed
            } else {
                prepared.count_outcome(1, &QueryBudget::new()).outcome
            };
            if let RunOutcome::Aborted { reason, .. } = &probe {
                println!(
                    "{:<10} {:<8} prepare {:>9.3} ms   TIMEOUT ({reason})",
                    q.name, label, prepare_ms
                );
                records.push(format!(
                    "    {{\"query\": \"{}\", \"engine\": \"{}\", \"prepare_ms\": {:.3}, \"timeout\": true, \"outcome\": \"{}\"}}",
                    q.name, label, prepare_ms, probe.label()
                ));
                continue;
            }

            // First execution of the prepared query, then a warm re-execution —
            // identical work here, but reported separately so regressions in either
            // phase of the prepare/execute split show up in the diff.
            let (run_ms, count) = min_ms(opts.reps, || prepared.count().expect("count"));
            let (rerun_ms, recount) = min_ms(opts.reps, || prepared.count().expect("count"));
            assert_eq!(count, recount, "re-execution must be deterministic");

            // The scaling columns: the same count through the morsel runtime on 4
            // worker threads, cold and then warm. Each cold rep re-prepares the
            // query (warm index cache, but a fresh plan whose worker pool is
            // empty), so cold and warm are both minima over `reps` genuinely
            // cold / genuinely reusable runs; the warm rerun executes the
            // long-lived prepared query whose retired workers — buffers,
            // merge-join sort-permutation caches — survive in the plan's pool.
            // Correctness is asserted against the serial count.
            let mut par4_run_ms = f64::INFINITY;
            for _ in 0..opts.reps.max(1) {
                let cold = db.prepare(&q, engine).expect("cold parallel prepare");
                let start = Instant::now();
                let par_count = cold.par_count(4).expect("par_count");
                par4_run_ms = par4_run_ms.min(start.elapsed().as_secs_f64() * 1e3);
                assert_eq!(par_count, count, "parallel execution must agree with serial");
            }
            // One untimed warm-up populates the plan's worker pool with
            // morsel-keyed caches, so every timed rerun rep measures the warm
            // steady state (without this, rep 1 — the only rep under --reps 1 —
            // would be a cold parallel run mislabelled as warm).
            let warmup = prepared.par_count(4).expect("par_count warm-up");
            assert_eq!(warmup, count, "warm-up must agree with serial");
            let (par4_rerun_ms, par_recount) =
                min_ms(opts.reps, || prepared.par_count(4).expect("par_count rerun"));
            assert_eq!(par_recount, count, "warm parallel rerun must agree with serial");
            let par4_speedup = run_ms / par4_run_ms.max(1e-9);
            let par4_rerun_speedup = rerun_ms / par4_rerun_ms.max(1e-9);

            // Warm prepare: the cache already holds every index this query needs.
            let (warm_prepare_ms, warm_built) = min_ms(opts.reps, || {
                let p = db.prepare(&q, engine).expect("warm prepare");
                p.indexes_built()
            });
            assert_eq!(warm_built, 0, "a warm prepare must build nothing");

            // Incremental-edit columns: clone the warm database, apply one
            // batch of edge edits through the delta-trie path, and time (a)
            // the edit itself (`edits_per_s` — every cached permutation is
            // delta-patched in O(edit × permutations), never rebuilt) and (b)
            // a warm post-edit execution (`edit_run_ms` — the steady-state
            // per-request cost of serving right after an update).
            let edit_batch: Vec<(u32, u32)> = (0..256u32)
                .map(|i| (num_nodes as u32 + 2 * i, num_nodes as u32 + 2 * i + 1))
                .collect();
            let mut edited = db.clone();
            let edit_start = Instant::now();
            let ins = edited.insert_edges(&edit_batch).expect("insert_edges");
            let del = edited.delete_edges(&edit_batch[..128]).expect("delete_edges");
            let edit_secs = edit_start.elapsed().as_secs_f64();
            let edits_per_s = (ins + del) as f64 / edit_secs.max(1e-9);
            let post = edited.prepare(&q, engine).expect("post-edit prepare");
            assert!(
                !expects_indexes || post.indexes_built() == 0,
                "edits must delta-patch cached indexes, not rebuild them"
            );
            let (edit_run_ms, _) = min_ms(opts.reps, || post.count().expect("post-edit count"));

            // Cold-start from disk: open the persisted store, prepare against a
            // fresh (per-open) index cache, count. Lazy slots hydrate the
            // relations the query touches through the buffer pool.
            let (open_ms, open_count) = min_ms(opts.reps, || {
                let disk = Database::open(&store_dir).expect("open persisted store");
                let p = disk.prepare(&q, engine).expect("prepare from disk");
                p.count().expect("count from disk")
            });
            assert_eq!(open_count, count, "disk-backed count must agree with memory");

            // Serving throughput: 8 sessions over one shared snapshot, each
            // issuing `reps + 1` counts through admission + history recording.
            // Threads go through the runtime's panic-isolating worker scope.
            let svc_iters = opts.reps.max(1) + 1;
            let service = Service::new(
                db.clone(),
                ServiceConfig { max_concurrent: 8, queue_depth: 64, ..Default::default() },
            );
            let svc_start = Instant::now();
            let svc_results = gj_runtime::scoped_workers(8, |_| {
                let session = service.session();
                let mut last = 0u64;
                for _ in 0..svc_iters {
                    last = session.count(&q, engine).expect("service count");
                }
                last
            });
            let svc_secs = svc_start.elapsed().as_secs_f64();
            for result in svc_results {
                assert_eq!(
                    result.expect("service worker"),
                    count,
                    "service sessions must agree with serial"
                );
            }
            let svc8_qps = (8 * svc_iters) as f64 / svc_secs.max(1e-9);

            println!(
                "{:<10} {:<8} prepare {:>9.3} ms (warm {:>7.4} ms, {} threads)   run {:>9.3} ms   rerun {:>9.3} ms   par4 {:>9.3} ms ({:>4.2}x)   par4 rerun {:>9.3} ms ({:>4.2}x)   edits {:>9.0}/s   post-edit run {:>9.3} ms   open {:>9.3} ms   svc8 {:>8.1} qps   count {}",
                q.name, label, prepare_ms, warm_prepare_ms, threads, run_ms, rerun_ms, par4_run_ms, par4_speedup, par4_rerun_ms, par4_rerun_speedup, edits_per_s, edit_run_ms, open_ms, svc8_qps, count
            );
            records.push(format!(
                "    {{\"query\": \"{}\", \"engine\": \"{}\", \"prepare_ms\": {:.3}, \"warm_prepare_ms\": {:.4}, \"run_ms\": {:.3}, \"rerun_ms\": {:.3}, \"par4_run_ms\": {:.3}, \"par4_speedup\": {:.2}, \"par4_rerun_ms\": {:.3}, \"par4_rerun_speedup\": {:.2}, \"edits_per_s\": {:.0}, \"edit_run_ms\": {:.3}, \"open_ms\": {:.3}, \"svc8_qps\": {:.1}, \"build_threads\": {}, \"count\": {}, \"outcome\": \"{}\"}}",
                q.name, label, prepare_ms, warm_prepare_ms, run_ms, rerun_ms, par4_run_ms, par4_speedup, par4_rerun_ms, par4_rerun_speedup, edits_per_s, edit_run_ms, open_ms, svc8_qps, threads, count, probe.label()
            ));
        }
    }

    let graph = db.graph().expect("graph loaded");
    let json = format!(
        "{{\n  \"harness\": \"bench_joins\",\n  \"nodes\": {},\n  \"edges\": {},\n  \"seed\": {},\n  \"reps\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        graph.num_nodes(),
        graph.num_edges(),
        opts.seed,
        opts.reps,
        records.join(",\n")
    );
    let path = std::path::Path::new(&opts.out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut file = std::fs::File::create(path).expect("create BENCH_joins.json");
    file.write_all(json.as_bytes()).expect("write BENCH_joins.json");
    println!("\njson: {}", path.display());
    let _ = std::fs::remove_dir_all(&store_dir);
}
