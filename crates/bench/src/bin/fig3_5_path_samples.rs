//! Figures 3–5 — 3-path on the LiveJournal-, Pokec- and Orkut-like graphs with node
//! samples of increasing size `N`: LFTJ versus Minesweeper. As the samples grow the
//! amount of redundant sub-path work grows with them, and Minesweeper's caching pulls
//! ahead — the crossover the paper's figures show.
//!
//! ```sh
//! cargo run --release -p gj-bench --bin fig3_5_path_samples -- --dataset soc-LiveJournal1
//! ```
//! (omit `--dataset` to sweep all three figures)

use gj_bench::{time_cold, HarnessOptions, Table};
use gj_datagen::{node_sample, Dataset};
use graphjoin::{CatalogQuery, Database, Engine};

fn main() {
    let opts = HarnessOptions::from_args();
    let figures = [
        ("Figure 3", Dataset::SocLiveJournal1),
        ("Figure 4", Dataset::SocPokec),
        ("Figure 5", Dataset::ComOrkut),
    ];
    let graphs = opts.generate(&[Dataset::SocLiveJournal1, Dataset::SocPokec, Dataset::ComOrkut]);

    for (figure, dataset) in figures {
        let Some((_, graph)) = graphs.iter().find(|(d, _)| *d == dataset) else {
            continue;
        };
        println!(
            "\n{figure}: 3-path on {} stand-in ({} nodes, {} directed edges)",
            dataset.name(),
            graph.num_nodes(),
            graph.num_edges()
        );
        // Sample sizes N: powers of two up to ~5% of the nodes, like the paper's sweep.
        let max_n = (graph.num_nodes() / 20).max(64);
        let mut sizes = Vec::new();
        let mut n = 64usize;
        while n <= max_n {
            sizes.push(n);
            n *= 4;
        }

        let query = CatalogQuery::ThreePath;
        let q = query.query();
        let columns: Vec<String> = sizes.iter().map(|n| format!("N={n}")).collect();
        let mut table = Table::new(format!("{figure}: duration in ms vs sample size"), columns);

        let mut rows: Vec<(String, Vec<String>)> =
            vec![("lb/lftj".to_string(), Vec::new()), ("lb/ms".to_string(), Vec::new())];
        for &n in &sizes {
            // Selectivity that yields roughly n sampled nodes.
            let selectivity = (graph.num_nodes() / n).max(1) as u32;
            let mut db = Database::new();
            db.add_graph(std::sync::Arc::clone(graph));
            db.add_relation("v1", node_sample(graph.num_nodes(), selectivity, opts.seed));
            db.add_relation("v2", node_sample(graph.num_nodes(), selectivity, opts.seed ^ 0xabcd));
            let (lftj_count, lftj_time) = time_cold(&db, || db.count(&q, &Engine::Lftj).unwrap());
            let (ms_count, ms_time) =
                time_cold(&db, || db.count(&q, &Engine::minesweeper()).unwrap());
            assert_eq!(lftj_count, ms_count);
            rows[0].1.push(format!("{:.1}", lftj_time.as_secs_f64() * 1e3));
            rows[1].1.push(format!("{:.1}", ms_time.as_secs_f64() * 1e3));
        }
        for (label, cells) in rows {
            table.row(label, cells);
        }
        table.print();
        let path =
            table.write_csv(&format!("fig3_5_{}", dataset.name().replace('-', "_"))).expect("csv");
        println!("csv: {}", path.display());
    }
}
