//! # gj-bench
//!
//! Shared support for the benchmark harness binaries that regenerate every table and
//! figure of the paper's evaluation (see `DESIGN.md`, per-experiment index).
//!
//! Each binary in `src/bin/` prints one table (or figure series) in the paper's
//! layout — datasets as columns or rows, systems/configurations as the other axis —
//! and writes the same data as CSV under `target/bench-results/`. Because the paper's
//! SNAP graphs are replaced by seeded synthetic stand-ins (see `gj-datagen`), the
//! absolute numbers differ from the paper; the *shapes* (who wins, by what factor,
//! where the timeouts appear) are what EXPERIMENTS.md compares.
//!
//! Common conventions:
//!
//! * `--scale <f>` multiplies every dataset's default scale (default 1.0; use e.g.
//!   `0.25` for a quick pass);
//! * `--budget <rows>` caps the pairwise baselines' materialised intermediates, the
//!   stand-in for the paper's 30-minute timeout (default 5,000,000);
//! * cells print milliseconds; `-` marks a timeout/budget overrun or an unsupported
//!   engine/query combination, exactly like the paper's tables.

use gj_baselines::ExecLimits;
use gj_datagen::Dataset;
use graphjoin::{CatalogQuery, Database, Engine, EngineError, Graph, MsConfig};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Multiplier on each dataset's default scale.
    pub scale: f64,
    /// Materialisation budget for the pairwise baselines.
    pub budget: usize,
    /// Random seed for sample draws.
    pub seed: u64,
    /// Restrict to a subset of dataset names (empty = the binary's default set).
    pub datasets: Vec<String>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions { scale: 1.0, budget: 5_000_000, seed: 0x5eed, datasets: Vec::new() }
    }
}

impl HarnessOptions {
    /// Parses `--scale`, `--budget`, `--seed` and `--dataset <name>` (repeatable)
    /// from the process arguments; unknown arguments abort with a usage message.
    pub fn from_args() -> Self {
        let mut opts = HarnessOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value =
                |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match arg.as_str() {
                "--scale" => opts.scale = value("--scale").parse().expect("numeric --scale"),
                "--budget" => opts.budget = value("--budget").parse().expect("numeric --budget"),
                "--seed" => opts.seed = value("--seed").parse().expect("numeric --seed"),
                "--dataset" => opts.datasets.push(value("--dataset")),
                "--help" | "-h" => {
                    eprintln!("options: --scale <f> --budget <rows> --seed <n> --dataset <name> (repeatable)");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
        }
        opts
    }

    /// The pairwise baselines' execution limits.
    pub fn limits(&self) -> ExecLimits {
        ExecLimits { max_intermediate_rows: self.budget }
    }

    /// Generates the graphs for a list of datasets at `scale × default_scale`,
    /// honouring the `--dataset` filter. Graphs are returned behind `Arc` so the
    /// harnesses can hand them to many [`Database`]s without deep copies.
    pub fn generate(&self, datasets: &[Dataset]) -> Vec<(Dataset, Arc<Graph>)> {
        datasets
            .iter()
            .copied()
            .filter(|d| {
                self.datasets.is_empty()
                    || self.datasets.iter().any(|n| n.eq_ignore_ascii_case(d.name()))
            })
            .map(|d| {
                let scale = (d.spec().default_scale * self.scale).clamp(1e-4, 1.0);
                (d, Arc::new(d.generate_scaled(scale)))
            })
            .collect()
    }
}

/// Outcome of one benchmark cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Completed: duration and result count.
    Done { millis: f64, count: u64 },
    /// Budget exceeded or unsupported — printed as `-`, like the paper's timeouts.
    Dash,
}

impl Cell {
    /// The duration in milliseconds, if the cell completed.
    pub fn millis(&self) -> Option<f64> {
        match self {
            Cell::Done { millis, .. } => Some(*millis),
            Cell::Dash => None,
        }
    }

    /// Renders the cell the way the paper's tables do (duration only).
    pub fn render(&self) -> String {
        match self {
            Cell::Done { millis, .. } => format!("{millis:.0}"),
            Cell::Dash => "-".to_string(),
        }
    }
}

/// Times one engine on one query over one database: a **cold** prepare + execute
/// (the shared index cache is cleared first, so cells are independent of the order
/// the harness visits engines in, like the paper's per-system timings).
pub fn run_cell(db: &Database, query: &CatalogQuery, engine: &Engine) -> Cell {
    let q = query.query();
    db.cache().clear();
    let start = Instant::now();
    match db.prepare(&q, engine).and_then(|prepared| prepared.count()) {
        Ok(count) => Cell::Done { millis: start.elapsed().as_secs_f64() * 1e3, count },
        Err(EngineError::Baseline(_)) | Err(EngineError::Unsupported(_)) => Cell::Dash,
        Err(err) => panic!("unexpected engine error: {err}"),
    }
}

/// Times a closure, returning (result, duration).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a **cold** one-shot measurement over `db`: the shared index cache is
/// cleared first, so every timed configuration pays its own binding/index-build
/// cost. Harnesses that time several `db.count` calls on one `Database` must use
/// this (or [`run_cell`]) — otherwise only the first configuration builds the trie
/// indexes and every later one is silently warm, biasing the reported ratios.
pub fn time_cold<T>(db: &Database, f: impl FnOnce() -> T) -> (T, Duration) {
    db.cache().clear();
    time(f)
}

/// The standard engine line-up of Tables 6 and 7 (plus the graph engine for cliques).
pub fn standard_engines(limits: ExecLimits) -> Vec<Engine> {
    vec![
        Engine::Lftj,
        Engine::Minesweeper(MsConfig::default()),
        Engine::HashJoin(limits),
        Engine::SortMergeJoin(limits),
    ]
}

/// A printable table: fixed row labels, named columns, cell strings.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table { title: title.into(), columns, rows: Vec::new() }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        let cells_len = cells.len();
        self.rows.push((label.into(), cells));
        assert_eq!(cells_len, self.columns.len(), "row width must match the header");
    }

    /// Prints the table to stdout in a fixed-width layout.
    pub fn print(&self) {
        println!("\n== {}", self.title);
        let label_width =
            self.rows.iter().map(|(l, _)| l.len()).chain(std::iter::once(8)).max().unwrap_or(8);
        let col_width = self
            .columns
            .iter()
            .map(String::len)
            .chain(self.rows.iter().flat_map(|(_, cells)| cells.iter().map(String::len)))
            .max()
            .unwrap_or(8)
            .max(6)
            + 2;
        print!("{:<label_width$}", "");
        for c in &self.columns {
            print!("{c:>col_width$}");
        }
        println!();
        for (label, cells) in &self.rows {
            print!("{label:<label_width$}");
            for cell in cells {
                print!("{cell:>col_width$}");
            }
            println!();
        }
    }

    /// Writes the table as CSV under `target/bench-results/<file>.csv`.
    pub fn write_csv(&self, file: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("target").join("bench-results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file}.csv"));
        let mut out = std::fs::File::create(&path)?;
        writeln!(out, "row,{}", self.columns.join(","))?;
        for (label, cells) in &self.rows {
            writeln!(out, "{label},{}", cells.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a speed-up ratio the way Tables 1–3 do (`8` marks thrashing/timeout).
pub fn ratio(baseline_ms: Option<f64>, improved_ms: Option<f64>) -> String {
    match (baseline_ms, improved_ms) {
        (Some(b), Some(i)) if i > 0.0 => format!("{:.2}", b / i),
        (None, Some(_)) => "inf".to_string(),
        _ => "-".to_string(),
    }
}

/// Prints the per-dataset statistics header every harness starts with, so the
/// generated stand-ins can be compared with the paper's Section 5.1 table.
pub fn print_dataset_summary(graphs: &[(Dataset, Arc<Graph>)]) {
    println!(
        "{:<18} {:>10} {:>12} {:>14} {:>14}",
        "dataset", "nodes", "edges(dir)", "triangles", "paper-tri"
    );
    for (d, g) in graphs {
        println!(
            "{:<18} {:>10} {:>12} {:>14} {:>14}",
            d.name(),
            g.num_nodes(),
            g.num_edges(),
            g.triangle_count(),
            d.spec().paper_triangles
        );
    }
}

/// Selectivities used by the paper for a dataset (8/80 for the small ones, 10/100/1000
/// for the larger ones).
pub fn paper_selectivities(dataset: Dataset) -> &'static [u32] {
    match dataset {
        Dataset::CaGrQc
        | Dataset::P2pGnutella04
        | Dataset::EgoFacebook
        | Dataset::CaCondMat
        | Dataset::WikiVote
        | Dataset::P2pGnutella31
        | Dataset::EmailEnron
        | Dataset::LocBrightkite => &[80, 8],
        _ => &[1000, 100, 10],
    }
}

/// Map from engine label to column order used in the cross-system tables.
pub fn engine_columns(engines: &[Engine]) -> Vec<String> {
    engines.iter().map(|e| e.label().to_string()).collect()
}

/// Convenience: a `BTreeMap` keyed by dataset name for collected results.
pub type ResultsByDataset = BTreeMap<String, Vec<Cell>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formats_like_the_paper() {
        assert_eq!(ratio(Some(10.0), Some(4.0)), "2.50");
        assert_eq!(ratio(None, Some(4.0)), "inf");
        assert_eq!(ratio(Some(10.0), None), "-");
    }

    #[test]
    fn cells_render_durations_or_dashes() {
        assert_eq!(Cell::Done { millis: 12.4, count: 5 }.render(), "12");
        assert_eq!(Cell::Dash.render(), "-");
        assert_eq!(Cell::Dash.millis(), None);
    }

    #[test]
    fn table_roundtrip_and_csv() {
        let mut t = Table::new("test", vec!["a".into(), "b".into()]);
        t.row("r1", vec!["1".into(), "2".into()]);
        t.print();
        let path = t.write_csv("unit_test_table").unwrap();
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains("row,a,b"));
        assert!(contents.contains("r1,1,2"));
    }

    #[test]
    fn run_cell_counts_and_dashes() {
        let graph = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let db = graphjoin::workload_database(graph, CatalogQuery::ThreeClique, 1, 1);
        match run_cell(&db, &CatalogQuery::ThreeClique, &Engine::Lftj) {
            Cell::Done { count, .. } => assert_eq!(count, 1),
            Cell::Dash => panic!("expected a completed cell"),
        }
        // A 1-row budget forces the baseline into the paper's "-" case.
        let tiny = ExecLimits { max_intermediate_rows: 1 };
        assert_eq!(run_cell(&db, &CatalogQuery::ThreeClique, &Engine::HashJoin(tiny)), Cell::Dash);
    }

    #[test]
    fn options_generate_scales_datasets() {
        let opts = HarnessOptions { scale: 0.02, ..HarnessOptions::default() };
        let graphs = opts.generate(&[Dataset::CaGrQc]);
        assert_eq!(graphs.len(), 1);
        assert!(graphs[0].1.num_nodes() < 1000);
    }
}
