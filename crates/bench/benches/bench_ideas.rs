//! Criterion ablation of Minesweeper's implementation ideas — the statistically
//! rigorous companion to Tables 1–3.

use criterion::{criterion_group, criterion_main, Criterion};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine, MsConfig};
use std::hint::black_box;

fn bench_ideas_4_and_6(c: &mut Criterion) {
    let graph = Dataset::CaGrQc.generate_scaled(0.3);
    let db = workload_database(&graph, CatalogQuery::ThreePath, 10, 1);
    let q = CatalogQuery::ThreePath.query();
    let configs = [
        ("no-ideas", MsConfig { idea4_gap_memo: false, idea6_complete_nodes: false, ..MsConfig::default() }),
        ("idea4", MsConfig { idea6_complete_nodes: false, ..MsConfig::default() }),
        ("idea4+6", MsConfig::default()),
    ];
    let mut group = c.benchmark_group("ms_ideas_4_6_three_path");
    group.sample_size(10);
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| black_box(db.count(&q, &Engine::Minesweeper(config.clone())).unwrap()))
        });
    }
    group.finish();
}

fn bench_idea_7(c: &mut Criterion) {
    let graph = Dataset::P2pGnutella04.generate_scaled(0.25);
    let db = workload_database(&graph, CatalogQuery::ThreeClique, 1, 1);
    let q = CatalogQuery::ThreeClique.query();
    let configs = [
        ("no-idea7", MsConfig { idea7_skeleton: false, ..MsConfig::default() }),
        ("idea7", MsConfig::default()),
    ];
    let mut group = c.benchmark_group("ms_idea_7_triangle");
    group.sample_size(10);
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| black_box(db.count(&q, &Engine::Minesweeper(config.clone())).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ideas_4_and_6, bench_idea_7);
criterion_main!(benches);
