//! Criterion micro-benchmarks for Minesweeper: acyclic queries at two selectivities
//! (the Table 7 regime) and one cyclic query with the Idea 7 skeleton (the Table 6
//! regime).

use criterion::{criterion_group, criterion_main, Criterion};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine};
use std::hint::black_box;

fn bench_ms_acyclic(c: &mut Criterion) {
    let graph = Dataset::CaGrQc.generate_scaled(0.3);
    let mut group = c.benchmark_group("minesweeper_acyclic");
    group.sample_size(10);
    for query in [CatalogQuery::ThreePath, CatalogQuery::TwoComb, CatalogQuery::OneTree] {
        for selectivity in [80u32, 8] {
            let db = workload_database(&graph, query, selectivity, 1);
            let q = query.query();
            group.bench_function(format!("{}-sel{}", query.name(), selectivity), |b| {
                b.iter(|| black_box(db.count(&q, &Engine::minesweeper()).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_ms_cyclic(c: &mut Criterion) {
    let graph = Dataset::CaGrQc.generate_scaled(0.3);
    let mut group = c.benchmark_group("minesweeper_cyclic");
    group.sample_size(10);
    let db = workload_database(&graph, CatalogQuery::ThreeClique, 1, 1);
    let q = CatalogQuery::ThreeClique.query();
    group.bench_function("3-clique", |b| {
        b.iter(|| black_box(db.count(&q, &Engine::minesweeper()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_ms_acyclic, bench_ms_cyclic);
criterion_main!(benches);
