//! Criterion comparison of all engines on one dataset — the statistically rigorous
//! companion to Tables 6 and 7 (and to the `engine_shootout` example).

use criterion::{criterion_group, criterion_main, Criterion};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine, ExecLimits};
use std::hint::black_box;

fn bench_triangle_across_engines(c: &mut Criterion) {
    let graph = Dataset::P2pGnutella04.generate_scaled(0.3);
    let db = workload_database(&graph, CatalogQuery::ThreeClique, 1, 1);
    let q = CatalogQuery::ThreeClique.query();
    let limits = ExecLimits::default();
    let mut group = c.benchmark_group("triangle_engines");
    group.sample_size(10);
    for engine in [
        Engine::Lftj,
        Engine::minesweeper(),
        Engine::HashJoin(limits),
        Engine::SortMergeJoin(limits),
        Engine::GraphEngine,
    ] {
        group.bench_function(engine.label(), |b| {
            b.iter(|| black_box(db.count(&q, &engine).unwrap()))
        });
    }
    group.finish();
}

fn bench_three_path_across_engines(c: &mut Criterion) {
    let graph = Dataset::P2pGnutella04.generate_scaled(0.3);
    let db = workload_database(&graph, CatalogQuery::ThreePath, 10, 1);
    let q = CatalogQuery::ThreePath.query();
    let limits = ExecLimits::default();
    let mut group = c.benchmark_group("three_path_engines");
    group.sample_size(10);
    for engine in [
        Engine::Lftj,
        Engine::minesweeper(),
        Engine::HashJoin(limits),
        Engine::SortMergeJoin(limits),
    ] {
        group.bench_function(engine.label(), |b| {
            b.iter(|| black_box(db.count(&q, &engine).unwrap()))
        });
    }
    group.finish();
}

fn bench_lollipop_hybrid(c: &mut Criterion) {
    let graph = Dataset::CaGrQc.generate_scaled(0.3);
    let db = workload_database(&graph, CatalogQuery::TwoLollipop, 8, 1);
    let q = CatalogQuery::TwoLollipop.query();
    let mut group = c.benchmark_group("two_lollipop_engines");
    group.sample_size(10);
    for engine in [
        Engine::Lftj,
        Engine::minesweeper(),
        Engine::hybrid_for(CatalogQuery::TwoLollipop).unwrap(),
    ] {
        group.bench_function(engine.label(), |b| {
            b.iter(|| black_box(db.count(&q, &engine).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_triangle_across_engines,
    bench_three_path_across_engines,
    bench_lollipop_hybrid
);
criterion_main!(benches);
