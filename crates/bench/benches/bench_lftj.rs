//! Criterion micro-benchmarks for LeapFrog TrieJoin: the cyclic queries of Table 6 on
//! a small, fixed synthetic graph (statistically rigorous companion to the
//! `table6_cyclic` harness binary).

use criterion::{criterion_group, criterion_main, Criterion};
use gj_datagen::Dataset;
use graphjoin::{workload_database, CatalogQuery, Engine};
use std::hint::black_box;

fn bench_lftj_cyclic(c: &mut Criterion) {
    let graph = Dataset::CaGrQc.generate_scaled(0.3);
    let mut group = c.benchmark_group("lftj_cyclic");
    group.sample_size(10);
    for query in [CatalogQuery::ThreeClique, CatalogQuery::FourClique, CatalogQuery::FourCycle] {
        let db = workload_database(&graph, query, 1, 1);
        let q = query.query();
        group.bench_function(query.name(), |b| {
            b.iter(|| black_box(db.count(&q, &Engine::Lftj).unwrap()))
        });
    }
    group.finish();
}

fn bench_lftj_index_build(c: &mut Criterion) {
    let graph = Dataset::CaGrQc.generate_scaled(0.3);
    let mut group = c.benchmark_group("lftj_bind");
    group.sample_size(10);
    let db = workload_database(&graph, CatalogQuery::ThreeClique, 1, 1);
    let q = CatalogQuery::ThreeClique.query();
    group.bench_function("bind_and_index_triangle", |b| {
        b.iter(|| black_box(db.bind(&q, None).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_lftj_cyclic, bench_lftj_index_build);
criterion_main!(benches);
