//! Join queries and atoms.
//!
//! A natural join query `Q = ⋈_{R ∈ atoms(Q)} R` is a set of [`Atom`]s over a shared
//! variable space (Section 2.1 of the paper). The graph-pattern benchmark queries
//! additionally carry *order filters* of the form `x < y` (e.g. `a < b < c` in the
//! triangle query) which deduplicate automorphic matches; engines apply them during
//! enumeration.

use std::collections::BTreeMap;
use std::fmt;

/// A query variable, identified by its index into [`Query::var_names`].
pub type VarId = usize;

/// One relational atom `R(x₁, …, x_k)` of a join query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Name of the relation symbol (e.g. `"edge"`, `"v1"`).
    pub relation: String,
    /// The variables of the atom, in the relation's column order.
    pub vars: Vec<VarId>,
}

impl Atom {
    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Whether the atom mentions `v`.
    pub fn contains(&self, v: VarId) -> bool {
        self.vars.contains(&v)
    }
}

/// A natural join query with optional `x < y` order filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Human-readable query name (e.g. `"3-clique"`).
    pub name: String,
    /// Variable names; `VarId` indexes into this vector.
    pub var_names: Vec<String>,
    /// The atoms of the query.
    pub atoms: Vec<Atom>,
    /// Order filters `(x, y)` meaning `x < y`.
    pub filters: Vec<(VarId, VarId)>,
}

impl Query {
    /// Number of variables `n = |vars(Q)|`.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of atoms `m = |atoms(Q)|`.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The `VarId` of a variable name, if it exists.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.var_names.iter().position(|n| n == name)
    }

    /// The atoms that mention variable `v`.
    pub fn atoms_with_var(&self, v: VarId) -> impl Iterator<Item = (usize, &Atom)> {
        self.atoms.iter().enumerate().filter(move |(_, a)| a.contains(v))
    }

    /// The set of distinct relation names referenced by the query.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.atoms.iter().map(|a| a.relation.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Checks that a candidate binding (one value per variable) satisfies every order
    /// filter.
    pub fn filters_satisfied(&self, binding: &[i64]) -> bool {
        self.filters.iter().all(|&(x, y)| binding[x] < binding[y])
    }

    /// Checks internal consistency: every atom variable is in range, no atom repeats a
    /// variable, filters reference existing variables.
    pub fn validate(&self) -> Result<(), String> {
        for atom in &self.atoms {
            let mut seen = vec![false; self.num_vars()];
            for &v in &atom.vars {
                if v >= self.num_vars() {
                    return Err(format!("atom {} references unknown variable {v}", atom.relation));
                }
                if seen[v] {
                    return Err(format!(
                        "atom {} repeats variable {}",
                        atom.relation, self.var_names[v]
                    ));
                }
                seen[v] = true;
            }
        }
        for &(x, y) in &self.filters {
            if x >= self.num_vars() || y >= self.num_vars() {
                return Err("filter references unknown variable".to_string());
            }
            if x == y {
                return Err("filter compares a variable with itself".to_string());
            }
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atoms: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let vars: Vec<&str> = a.vars.iter().map(|&v| self.var_names[v].as_str()).collect();
                format!("{}({})", a.relation, vars.join(", "))
            })
            .collect();
        let mut parts = atoms;
        for &(x, y) in &self.filters {
            parts.push(format!("{} < {}", self.var_names[x], self.var_names[y]));
        }
        write!(f, "{}: {}", self.name, parts.join(", "))
    }
}

/// Builder for [`Query`], mapping variable names to [`VarId`]s in order of first use.
///
/// ```
/// use gj_query::QueryBuilder;
///
/// let triangle = QueryBuilder::new("3-clique")
///     .atom("edge", &["a", "b"])
///     .atom("edge", &["b", "c"])
///     .atom("edge", &["a", "c"])
///     .lt("a", "b")
///     .lt("b", "c")
///     .build();
/// assert_eq!(triangle.num_vars(), 3);
/// assert_eq!(triangle.num_atoms(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    name: String,
    var_ids: BTreeMap<String, VarId>,
    var_names: Vec<String>,
    atoms: Vec<Atom>,
    filters: Vec<(VarId, VarId)>,
}

impl QueryBuilder {
    /// Starts a new query with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            var_ids: BTreeMap::new(),
            var_names: Vec::new(),
            atoms: Vec::new(),
            filters: Vec::new(),
        }
    }

    fn var_id(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.var_ids.get(name) {
            return id;
        }
        let id = self.var_names.len();
        self.var_names.push(name.to_string());
        self.var_ids.insert(name.to_string(), id);
        id
    }

    /// Adds an atom `relation(vars…)`.
    pub fn atom(mut self, relation: &str, vars: &[&str]) -> Self {
        let vars = vars.iter().map(|v| self.var_id(v)).collect();
        self.atoms.push(Atom { relation: relation.to_string(), vars });
        self
    }

    /// Adds an order filter `x < y`.
    pub fn lt(mut self, x: &str, y: &str) -> Self {
        let x = self.var_id(x);
        let y = self.var_id(y);
        self.filters.push((x, y));
        self
    }

    /// Finishes the query. Panics if the query is not well formed.
    pub fn build(self) -> Query {
        let q = Query {
            name: self.name,
            var_names: self.var_names,
            atoms: self.atoms,
            filters: self.filters,
        };
        if let Err(e) = q.validate() {
            panic!("invalid query {}: {e}", q.name);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Query {
        QueryBuilder::new("3-clique")
            .atom("edge", &["a", "b"])
            .atom("edge", &["b", "c"])
            .atom("edge", &["a", "c"])
            .lt("a", "b")
            .lt("b", "c")
            .build()
    }

    #[test]
    fn builder_assigns_var_ids_in_first_use_order() {
        let q = triangle();
        assert_eq!(q.var_names, vec!["a", "b", "c"]);
        assert_eq!(q.var("c"), Some(2));
        assert_eq!(q.var("z"), None);
        assert_eq!(q.atoms[1].vars, vec![1, 2]);
    }

    #[test]
    fn atoms_with_var_finds_all_occurrences() {
        let q = triangle();
        let with_a: Vec<usize> = q.atoms_with_var(0).map(|(i, _)| i).collect();
        assert_eq!(with_a, vec![0, 2]);
    }

    #[test]
    fn filters_satisfied_checks_all() {
        let q = triangle();
        assert!(q.filters_satisfied(&[1, 2, 3]));
        assert!(!q.filters_satisfied(&[2, 1, 3]));
        assert!(!q.filters_satisfied(&[1, 3, 3]));
    }

    #[test]
    fn relation_names_deduplicated() {
        let q = QueryBuilder::new("3-path")
            .atom("v1", &["a"])
            .atom("v2", &["d"])
            .atom("edge", &["a", "b"])
            .atom("edge", &["b", "c"])
            .atom("edge", &["c", "d"])
            .build();
        assert_eq!(q.relation_names(), vec!["edge", "v1", "v2"]);
    }

    #[test]
    fn display_is_readable() {
        let q = triangle();
        let s = q.to_string();
        assert!(s.contains("edge(a, b)"));
        assert!(s.contains("a < b"));
    }

    #[test]
    #[should_panic(expected = "repeats variable")]
    fn repeated_variable_in_atom_rejected() {
        QueryBuilder::new("bad").atom("edge", &["a", "a"]).build();
    }

    #[test]
    fn validate_catches_self_comparison() {
        let mut q = triangle();
        q.filters.push((0, 0));
        assert!(q.validate().is_err());
    }
}
