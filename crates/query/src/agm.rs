//! The AGM bound (Appendix A of the paper).
//!
//! Atserias, Grohe and Marx proved that for any fractional edge cover `x` of the
//! query hypergraph, `|Q| ≤ Π_F |R_F|^{x_F}`; minimising the right-hand side over all
//! covers gives the worst-case output size `AGM(Q)`, and worst-case optimal join
//! algorithms such as LFTJ run in time `Õ(N + AGM(Q))`.
//!
//! We compute the bound by solving the covering LP through its dual (fractional
//! vertex packing), which has non-negative right-hand sides and therefore a feasible
//! all-slack simplex start — see [`crate::lp`]. The optimal duals of the packing LP
//! are the optimal fractional edge cover, which is also returned so callers (and the
//! benchmark harness) can inspect it.

use crate::lp::{maximize, LpOutcome};
use crate::query::Query;

/// The AGM bound of a query for given per-atom relation sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct AgmBound {
    /// `log₂` of the bound (the optimal LP objective).
    pub log2_bound: f64,
    /// The bound itself, `2^log2_bound` (saturating at `f64::INFINITY` only if the LP
    /// were unbounded, which cannot happen for a valid query).
    pub bound: f64,
    /// The optimal fractional edge cover, one weight per atom.
    pub cover: Vec<f64>,
}

/// Computes the AGM bound of `q` given the size of each atom's relation
/// (`atom_sizes[i]` is `|R|` for `q.atoms[i]`).
///
/// Returns a zero bound if any atom is empty (the join output is then empty).
///
/// # Panics
///
/// Panics if `atom_sizes.len() != q.num_atoms()` or if some variable of `q` appears
/// in no atom (the covering LP would be infeasible).
pub fn agm_bound(q: &Query, atom_sizes: &[u64]) -> AgmBound {
    assert_eq!(atom_sizes.len(), q.num_atoms(), "one size per atom required");
    let n = q.num_vars();
    let m = q.num_atoms();
    for v in 0..n {
        assert!(
            q.atoms.iter().any(|a| a.contains(v)),
            "variable {} appears in no atom; the edge cover LP is infeasible",
            q.var_names[v]
        );
    }
    if atom_sizes.contains(&0) {
        return AgmBound { log2_bound: f64::NEG_INFINITY, bound: 0.0, cover: vec![0.0; m] };
    }

    // Dual (fractional vertex packing): max Σ_v y_v  s.t. Σ_{v ∈ F} y_v ≤ log2|R_F|.
    let c = vec![1.0; n];
    let a: Vec<Vec<f64>> = q
        .atoms
        .iter()
        .map(|atom| {
            let mut row = vec![0.0; n];
            for &v in &atom.vars {
                row[v] = 1.0;
            }
            row
        })
        .collect();
    let b: Vec<f64> = atom_sizes.iter().map(|&s| (s as f64).log2()).collect();

    match maximize(&c, &a, &b) {
        LpOutcome::Optimal(sol) => {
            AgmBound { log2_bound: sol.objective, bound: sol.objective.exp2(), cover: sol.dual }
        }
        LpOutcome::Unbounded => {
            unreachable!("packing LP is bounded because every variable is covered")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogQuery;
    use crate::query::QueryBuilder;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn triangle_bound_is_n_to_the_three_halves() {
        let q = CatalogQuery::ThreeClique.query();
        let n = 1u64 << 10;
        let bound = agm_bound(&q, &[n, n, n]);
        assert_close(bound.log2_bound, 1.5 * 10.0);
        assert_close(bound.bound, (n as f64).powf(1.5));
        // Optimal cover is (1/2, 1/2, 1/2).
        for x in &bound.cover {
            assert_close(*x, 0.5);
        }
    }

    #[test]
    fn four_cycle_bound_is_n_squared() {
        let q = CatalogQuery::FourCycle.query();
        let n = 1u64 << 8;
        let bound = agm_bound(&q, &[n; 4]);
        assert_close(bound.log2_bound, 16.0);
    }

    #[test]
    fn four_clique_bound_is_n_squared() {
        // K4 has fractional edge cover number 2 (perfect matching of two edges).
        let q = CatalogQuery::FourClique.query();
        let n = 1u64 << 8;
        let bound = agm_bound(&q, &[n; 6]);
        assert_close(bound.log2_bound, 16.0);
    }

    #[test]
    fn two_path_bound_is_product_of_sizes() {
        let q = QueryBuilder::new("2-path").atom("r", &["a", "b"]).atom("s", &["b", "c"]).build();
        let bound = agm_bound(&q, &[1 << 4, 1 << 6]);
        assert_close(bound.log2_bound, 10.0);
        assert_close(bound.cover[0], 1.0);
        assert_close(bound.cover[1], 1.0);
    }

    #[test]
    fn empty_relation_gives_zero_bound() {
        let q = CatalogQuery::ThreeClique.query();
        let bound = agm_bound(&q, &[100, 0, 100]);
        assert_eq!(bound.bound, 0.0);
    }

    #[test]
    fn unary_atoms_can_cap_the_bound() {
        // v1(a), edge(a, b): cover must pay for both variables; with a tiny v1 the
        // optimal cover uses edge alone (cost |edge|), or v1 + edge... the LP picks
        // the cheaper combination.
        let q = QueryBuilder::new("1-hop").atom("v1", &["a"]).atom("edge", &["a", "b"]).build();
        let bound = agm_bound(&q, &[4, 1024]);
        // Best cover: x_edge = 1 (covers both) -> 1024; using v1 doesn't help because
        // edge must still cover b entirely.
        assert_close(bound.bound, 1024.0);
    }

    #[test]
    fn size_one_relations_give_bound_one() {
        let q = CatalogQuery::ThreeClique.query();
        let bound = agm_bound(&q, &[1, 1, 1]);
        assert_close(bound.bound, 1.0);
    }

    #[test]
    #[should_panic(expected = "one size per atom")]
    fn wrong_number_of_sizes_panics() {
        let q = CatalogQuery::ThreeClique.query();
        agm_bound(&q, &[1, 2]);
    }
}
