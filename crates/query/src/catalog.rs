//! The benchmark query catalog (Section 5.1 of the paper).
//!
//! Every experiment in the paper runs one of ten graph-pattern queries over an
//! `edge(a, b)` relation, optionally restricted by unary random-sample predicates
//! `v1`, `v2`, … . This module builds those queries exactly as the paper's Datalog
//! formulations state them, including the `a < b < c` order filters of the clique and
//! cycle queries.

use crate::query::{Query, QueryBuilder};

/// One of the paper's benchmark queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CatalogQuery {
    /// `edge(a,b), edge(b,c), edge(a,c), a<b<c` — the triangle query.
    ThreeClique,
    /// 4-clique with `a<b<c<d`.
    FourClique,
    /// `edge(a,b), edge(b,c), edge(c,d), edge(a,d), a<b<c<d`.
    FourCycle,
    /// `v1(a), v2(d), edge(a,b), edge(b,c), edge(c,d)`.
    ThreePath,
    /// `v1(a), v2(e), edge(a,b), edge(b,c), edge(c,d), edge(d,e)`.
    FourPath,
    /// `v1(b), v2(c), edge(a,b), edge(a,c)` — complete binary tree with 2 leaves.
    OneTree,
    /// Complete binary tree with 4 leaves, each drawn from a different sample.
    TwoTree,
    /// `v1(c), v2(d), edge(a,b), edge(a,c), edge(b,d)` — left-deep binary tree.
    TwoComb,
    /// 2-path followed by a 3-clique: `v1(a), (AB)(BC)(CD)(DE)(CE)`.
    TwoLollipop,
    /// 3-path followed by a 4-clique.
    ThreeLollipop,
}

impl CatalogQuery {
    /// All benchmark queries, in the order the paper's tables list them.
    pub fn all() -> [CatalogQuery; 10] {
        [
            CatalogQuery::ThreeClique,
            CatalogQuery::FourClique,
            CatalogQuery::FourCycle,
            CatalogQuery::ThreePath,
            CatalogQuery::FourPath,
            CatalogQuery::OneTree,
            CatalogQuery::TwoTree,
            CatalogQuery::TwoComb,
            CatalogQuery::TwoLollipop,
            CatalogQuery::ThreeLollipop,
        ]
    }

    /// The name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CatalogQuery::ThreeClique => "3-clique",
            CatalogQuery::FourClique => "4-clique",
            CatalogQuery::FourCycle => "4-cycle",
            CatalogQuery::ThreePath => "3-path",
            CatalogQuery::FourPath => "4-path",
            CatalogQuery::OneTree => "1-tree",
            CatalogQuery::TwoTree => "2-tree",
            CatalogQuery::TwoComb => "2-comb",
            CatalogQuery::TwoLollipop => "2-lollipop",
            CatalogQuery::ThreeLollipop => "3-lollipop",
        }
    }

    /// Whether the pattern is (β-)cyclic. The paper divides its experiments along this
    /// line: Minesweeper is instance-optimal only for the acyclic ones.
    pub fn is_cyclic(&self) -> bool {
        matches!(
            self,
            CatalogQuery::ThreeClique
                | CatalogQuery::FourClique
                | CatalogQuery::FourCycle
                | CatalogQuery::TwoLollipop
                | CatalogQuery::ThreeLollipop
        )
    }

    /// The unary random-sample relations the query expects (e.g. `["v1", "v2"]`),
    /// in numbering order.
    pub fn sample_relations(&self) -> &'static [&'static str] {
        match self {
            CatalogQuery::ThreeClique | CatalogQuery::FourClique | CatalogQuery::FourCycle => &[],
            CatalogQuery::ThreePath
            | CatalogQuery::FourPath
            | CatalogQuery::OneTree
            | CatalogQuery::TwoComb => &["v1", "v2"],
            CatalogQuery::TwoTree => &["v1", "v2", "v3", "v4"],
            CatalogQuery::TwoLollipop | CatalogQuery::ThreeLollipop => &["v1"],
        }
    }

    /// For the lollipop queries: the number of leading variables (in the natural
    /// variable order) that form the path part, including the vertex shared with the
    /// clique. The hybrid algorithm of Section 4.12 runs Minesweeper over this prefix
    /// and LeapFrog TrieJoin over the remaining clique variables.
    pub fn hybrid_split(&self) -> Option<usize> {
        match self {
            CatalogQuery::TwoLollipop => Some(3),
            CatalogQuery::ThreeLollipop => Some(4),
            _ => None,
        }
    }

    /// Builds the query.
    pub fn query(&self) -> Query {
        match self {
            CatalogQuery::ThreeClique => QueryBuilder::new("3-clique")
                .atom("edge", &["a", "b"])
                .atom("edge", &["b", "c"])
                .atom("edge", &["a", "c"])
                .lt("a", "b")
                .lt("b", "c")
                .build(),
            CatalogQuery::FourClique => QueryBuilder::new("4-clique")
                .atom("edge", &["a", "b"])
                .atom("edge", &["a", "c"])
                .atom("edge", &["a", "d"])
                .atom("edge", &["b", "c"])
                .atom("edge", &["b", "d"])
                .atom("edge", &["c", "d"])
                .lt("a", "b")
                .lt("b", "c")
                .lt("c", "d")
                .build(),
            CatalogQuery::FourCycle => QueryBuilder::new("4-cycle")
                .atom("edge", &["a", "b"])
                .atom("edge", &["b", "c"])
                .atom("edge", &["c", "d"])
                .atom("edge", &["a", "d"])
                .lt("a", "b")
                .lt("b", "c")
                .lt("c", "d")
                .build(),
            CatalogQuery::ThreePath => QueryBuilder::new("3-path")
                .atom("v1", &["a"])
                .atom("edge", &["a", "b"])
                .atom("edge", &["b", "c"])
                .atom("edge", &["c", "d"])
                .atom("v2", &["d"])
                .build(),
            CatalogQuery::FourPath => QueryBuilder::new("4-path")
                .atom("v1", &["a"])
                .atom("edge", &["a", "b"])
                .atom("edge", &["b", "c"])
                .atom("edge", &["c", "d"])
                .atom("edge", &["d", "e"])
                .atom("v2", &["e"])
                .build(),
            CatalogQuery::OneTree => QueryBuilder::new("1-tree")
                .atom("edge", &["a", "b"])
                .atom("edge", &["a", "c"])
                .atom("v1", &["b"])
                .atom("v2", &["c"])
                .build(),
            CatalogQuery::TwoTree => QueryBuilder::new("2-tree")
                .atom("edge", &["a", "b"])
                .atom("edge", &["a", "c"])
                .atom("edge", &["b", "d"])
                .atom("edge", &["b", "e"])
                .atom("edge", &["c", "f"])
                .atom("edge", &["c", "g"])
                .atom("v1", &["d"])
                .atom("v2", &["e"])
                .atom("v3", &["f"])
                .atom("v4", &["g"])
                .build(),
            CatalogQuery::TwoComb => QueryBuilder::new("2-comb")
                .atom("edge", &["a", "b"])
                .atom("edge", &["a", "c"])
                .atom("edge", &["b", "d"])
                .atom("v1", &["c"])
                .atom("v2", &["d"])
                .build(),
            CatalogQuery::TwoLollipop => QueryBuilder::new("2-lollipop")
                .atom("v1", &["a"])
                .atom("edge", &["a", "b"])
                .atom("edge", &["b", "c"])
                .atom("edge", &["c", "d"])
                .atom("edge", &["d", "e"])
                .atom("edge", &["c", "e"])
                .lt("d", "e")
                .build(),
            CatalogQuery::ThreeLollipop => QueryBuilder::new("3-lollipop")
                .atom("v1", &["a"])
                .atom("edge", &["a", "b"])
                .atom("edge", &["b", "c"])
                .atom("edge", &["c", "d"])
                .atom("edge", &["d", "e"])
                .atom("edge", &["d", "f"])
                .atom("edge", &["d", "g"])
                .atom("edge", &["e", "f"])
                .atom("edge", &["e", "g"])
                .atom("edge", &["f", "g"])
                .lt("e", "f")
                .lt("f", "g")
                .build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::Hypergraph;

    #[test]
    fn all_queries_are_well_formed() {
        for cq in CatalogQuery::all() {
            let q = cq.query();
            assert!(q.validate().is_ok(), "{} invalid", q.name);
            assert_eq!(q.name, cq.name());
        }
    }

    #[test]
    fn variable_and_atom_counts_match_the_paper() {
        let expect = [
            (CatalogQuery::ThreeClique, 3, 3),
            (CatalogQuery::FourClique, 4, 6),
            (CatalogQuery::FourCycle, 4, 4),
            (CatalogQuery::ThreePath, 4, 5),
            (CatalogQuery::FourPath, 5, 6),
            (CatalogQuery::OneTree, 3, 4),
            (CatalogQuery::TwoTree, 7, 10),
            (CatalogQuery::TwoComb, 4, 5),
            (CatalogQuery::TwoLollipop, 5, 6),
            (CatalogQuery::ThreeLollipop, 7, 10),
        ];
        for (cq, vars, atoms) in expect {
            let q = cq.query();
            assert_eq!(q.num_vars(), vars, "{}", q.name);
            assert_eq!(q.num_atoms(), atoms, "{}", q.name);
        }
    }

    #[test]
    fn cyclicity_classification_matches_the_paper() {
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let beta = Hypergraph::of_query(&q).is_beta_acyclic();
            assert_eq!(beta, !cq.is_cyclic(), "{}", q.name);
        }
    }

    #[test]
    fn sample_relations_are_referenced_by_the_query() {
        for cq in CatalogQuery::all() {
            let q = cq.query();
            for &s in cq.sample_relations() {
                assert!(
                    q.atoms.iter().any(|a| a.relation == s),
                    "{} does not reference {s}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn lollipop_split_points_are_the_shared_vertex() {
        let q2 = CatalogQuery::TwoLollipop.query();
        assert_eq!(CatalogQuery::TwoLollipop.hybrid_split(), Some(3));
        // Variable at index 2 ("c") is in both the path and the clique.
        assert_eq!(q2.var_names[2], "c");
        let q3 = CatalogQuery::ThreeLollipop.query();
        assert_eq!(CatalogQuery::ThreeLollipop.hybrid_split(), Some(4));
        assert_eq!(q3.var_names[3], "d");
    }

    #[test]
    fn natural_variable_order_is_the_datalog_order() {
        let q = CatalogQuery::ThreePath.query();
        assert_eq!(q.var_names, vec!["a", "b", "c", "d"]);
        let q = CatalogQuery::TwoLollipop.query();
        assert_eq!(q.var_names, vec!["a", "b", "c", "d", "e"]);
    }
}
