//! The LDBC-style social-network workload queries.
//!
//! Where [`CatalogQuery`](crate::catalog::CatalogQuery) re-creates the paper's
//! single-relation clique/cycle/path suite, this module defines the
//! *multi-relation* patterns that dominate LDBC-like social-network workloads:
//! k-hop friend expansions, common-interest triangles, and creator–liker paths
//! threaded through selective tag filters. Every query joins at least two of
//! the typed relations emitted by the `gj-datagen` `ldbc` generator (`person`,
//! `knows`, `post`, `hasCreator`, ternary `likes`, `tag`, `hasTag`, plus the
//! selective `tagSample`/`personSample` parameter relations), so the engines
//! must choose attribute orders across relations of different arities — the
//! dimension the single-`edge` suite never exercises.
//!
//! The queries run through every general-purpose engine (LFTJ, Minesweeper,
//! and both pairwise baselines); the clique-specialised graph engine does not
//! apply here.

use crate::query::{Query, QueryBuilder};

/// One of the LDBC-style workload queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LdbcQuery {
    /// `personSample(a), knows(a,b), knows(b,c)` — sampled 2-hop friend
    /// expansion (friends-of-friends, back-edges included).
    TwoHopFriends,
    /// `personSample(a), knows(a,b), knows(b,c), knows(c,d)` — 3-hop expansion.
    ThreeHopFriends,
    /// `knows(a,b), knows(b,c), knows(a,c), a<b<c` — friendship triangle.
    FriendTriangle,
    /// `likes(a,m,d1), likes(b,m,d2), a<b` — two persons liking the same post.
    CommonLikes,
    /// `hasCreator(m,c), likes(p,m,d), knows(p,c)` — a fan who likes a friend's
    /// post (cyclic through `p–m–c`).
    CreatorFan,
    /// `tagSample(t), hasTag(m,t), hasCreator(m,c), likes(p,m,d)` — creator and
    /// likers of posts carrying a sampled tag.
    TaggedCreatorPath,
    /// `likes(a,m,d1), likes(b,m,d2), knows(a,b), a<b` — friends who both like
    /// the same post (cyclic).
    MutualFans,
    /// `post(m,d), likes(p,m,d)` — likes landing on the post's creation day
    /// (joins the temporal attribute, not an id).
    FreshLikes,
    /// `tagSample(t), hasTag(m,t), hasTag(n,t), m<n` — pairs of posts sharing a
    /// sampled tag.
    CommonTagPair,
    /// `personSample(a), likes(a,m,d), hasTag(m,t), hasTag(n,t), hasCreator(n,c)`
    /// — from a sampled person's likes, through shared tags, to other creators.
    FanFanTag,
    /// `tagSample(t), hasTag(m,t), hasCreator(m,c), knows(c,p), likes(p,n,d),
    /// hasTag(n,t)` — a six-atom cycle: a tagged post's creator has a friend
    /// whose likes land on posts carrying the *same* tag.
    DeepTagReach,
}

impl LdbcQuery {
    /// All workload queries, in suite order.
    pub fn all() -> [LdbcQuery; 11] {
        [
            LdbcQuery::TwoHopFriends,
            LdbcQuery::ThreeHopFriends,
            LdbcQuery::FriendTriangle,
            LdbcQuery::CommonLikes,
            LdbcQuery::CreatorFan,
            LdbcQuery::TaggedCreatorPath,
            LdbcQuery::MutualFans,
            LdbcQuery::FreshLikes,
            LdbcQuery::CommonTagPair,
            LdbcQuery::FanFanTag,
            LdbcQuery::DeepTagReach,
        ]
    }

    /// The name used in benchmark tables and JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            LdbcQuery::TwoHopFriends => "2-hop-friends",
            LdbcQuery::ThreeHopFriends => "3-hop-friends",
            LdbcQuery::FriendTriangle => "friend-triangle",
            LdbcQuery::CommonLikes => "common-likes",
            LdbcQuery::CreatorFan => "creator-fan",
            LdbcQuery::TaggedCreatorPath => "tagged-creator-path",
            LdbcQuery::MutualFans => "mutual-fans",
            LdbcQuery::FreshLikes => "fresh-likes",
            LdbcQuery::CommonTagPair => "common-tag-pair",
            LdbcQuery::FanFanTag => "fan-fan-tag",
            LdbcQuery::DeepTagReach => "deep-tag-reach",
        }
    }

    /// Whether the pattern's hypergraph is cyclic (the regime where worst-case
    /// optimal join orders beat pairwise plans).
    pub fn is_cyclic(&self) -> bool {
        matches!(
            self,
            LdbcQuery::FriendTriangle
                | LdbcQuery::CreatorFan
                | LdbcQuery::MutualFans
                | LdbcQuery::DeepTagReach
        )
    }

    /// The relations the query reads, deduplicated, in first-use order. Edit
    /// scripts and replay harnesses use this to know which relations affect
    /// the query's answer.
    pub fn relations(&self) -> &'static [&'static str] {
        match self {
            LdbcQuery::TwoHopFriends | LdbcQuery::ThreeHopFriends => &["personSample", "knows"],
            LdbcQuery::FriendTriangle => &["knows"],
            LdbcQuery::CommonLikes => &["likes"],
            LdbcQuery::CreatorFan => &["hasCreator", "likes", "knows"],
            LdbcQuery::TaggedCreatorPath => &["tagSample", "hasTag", "hasCreator", "likes"],
            LdbcQuery::MutualFans => &["likes", "knows"],
            LdbcQuery::FreshLikes => &["post", "likes"],
            LdbcQuery::CommonTagPair => &["tagSample", "hasTag"],
            LdbcQuery::FanFanTag => &["personSample", "likes", "hasTag", "hasCreator"],
            LdbcQuery::DeepTagReach => &["tagSample", "hasTag", "hasCreator", "knows", "likes"],
        }
    }

    /// Builds the query.
    pub fn query(&self) -> Query {
        match self {
            LdbcQuery::TwoHopFriends => QueryBuilder::new("2-hop-friends")
                .atom("personSample", &["a"])
                .atom("knows", &["a", "b"])
                .atom("knows", &["b", "c"])
                .build(),
            LdbcQuery::ThreeHopFriends => QueryBuilder::new("3-hop-friends")
                .atom("personSample", &["a"])
                .atom("knows", &["a", "b"])
                .atom("knows", &["b", "c"])
                .atom("knows", &["c", "d"])
                .build(),
            LdbcQuery::FriendTriangle => QueryBuilder::new("friend-triangle")
                .atom("knows", &["a", "b"])
                .atom("knows", &["b", "c"])
                .atom("knows", &["a", "c"])
                .lt("a", "b")
                .lt("b", "c")
                .build(),
            LdbcQuery::CommonLikes => QueryBuilder::new("common-likes")
                .atom("likes", &["a", "m", "d1"])
                .atom("likes", &["b", "m", "d2"])
                .lt("a", "b")
                .build(),
            LdbcQuery::CreatorFan => QueryBuilder::new("creator-fan")
                .atom("hasCreator", &["m", "c"])
                .atom("likes", &["p", "m", "d"])
                .atom("knows", &["p", "c"])
                .build(),
            LdbcQuery::TaggedCreatorPath => QueryBuilder::new("tagged-creator-path")
                .atom("tagSample", &["t"])
                .atom("hasTag", &["m", "t"])
                .atom("hasCreator", &["m", "c"])
                .atom("likes", &["p", "m", "d"])
                .build(),
            LdbcQuery::MutualFans => QueryBuilder::new("mutual-fans")
                .atom("likes", &["a", "m", "d1"])
                .atom("likes", &["b", "m", "d2"])
                .atom("knows", &["a", "b"])
                .lt("a", "b")
                .build(),
            LdbcQuery::FreshLikes => QueryBuilder::new("fresh-likes")
                .atom("post", &["m", "d"])
                .atom("likes", &["p", "m", "d"])
                .build(),
            LdbcQuery::CommonTagPair => QueryBuilder::new("common-tag-pair")
                .atom("tagSample", &["t"])
                .atom("hasTag", &["m", "t"])
                .atom("hasTag", &["n", "t"])
                .lt("m", "n")
                .build(),
            LdbcQuery::FanFanTag => QueryBuilder::new("fan-fan-tag")
                .atom("personSample", &["a"])
                .atom("likes", &["a", "m", "d"])
                .atom("hasTag", &["m", "t"])
                .atom("hasTag", &["n", "t"])
                .atom("hasCreator", &["n", "c"])
                .build(),
            LdbcQuery::DeepTagReach => QueryBuilder::new("deep-tag-reach")
                .atom("tagSample", &["t"])
                .atom("hasTag", &["m", "t"])
                .atom("hasCreator", &["m", "c"])
                .atom("knows", &["c", "p"])
                .atom("likes", &["p", "n", "d"])
                .atom("hasTag", &["n", "t"])
                .build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_is_a_join_and_most_span_distinct_relations() {
        let mut distinct_relation_queries = 0;
        for q in LdbcQuery::all() {
            let query = q.query();
            assert_eq!(query.name, q.name());
            assert!(query.atoms.len() >= 2, "{}: single-atom query", q.name());
            if q.relations().len() >= 2 {
                distinct_relation_queries += 1;
            }
        }
        // The acceptance bar: at least 8 queries join >= 2 distinct relations
        // (the rest are self-joins like the friendship triangle).
        assert!(distinct_relation_queries >= 8, "only {distinct_relation_queries}");
    }

    #[test]
    fn declared_relations_match_the_atoms() {
        for q in LdbcQuery::all() {
            let query = q.query();
            let mut seen: Vec<&str> = Vec::new();
            for atom in &query.atoms {
                if !seen.contains(&atom.relation.as_str()) {
                    seen.push(atom.relation.as_str());
                }
            }
            assert_eq!(seen, q.relations(), "{}", q.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = LdbcQuery::all().iter().map(|q| q.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LdbcQuery::all().len());
    }

    #[test]
    fn the_suite_spans_arity_three_and_attribute_joins() {
        // At least one query must bind the ternary `likes`, and `fresh-likes`
        // must join on the day attribute (same var in both atoms' last column).
        let uses_ternary =
            LdbcQuery::all().iter().any(|q| q.query().atoms.iter().any(|a| a.vars.len() == 3));
        assert!(uses_ternary);
        let fresh = LdbcQuery::FreshLikes.query();
        let post_day = *fresh.atoms[0].vars.last().unwrap();
        let like_day = *fresh.atoms[1].vars.last().unwrap();
        assert_eq!(post_day, like_day);
    }
}
