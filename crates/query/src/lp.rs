//! A small dense simplex solver.
//!
//! The AGM bound (Appendix A of the paper) is the optimum of the fractional edge
//! cover linear program. The query hypergraphs in this workspace have at most a
//! handful of vertices and edges, so a textbook dense tableau simplex is more than
//! enough; Bland's rule keeps it cycle-free.
//!
//! The solver handles LPs of the form
//!
//! ```text
//!     maximize    cᵀ y
//!     subject to  A y ≤ b,   y ≥ 0,      with b ≥ 0
//! ```
//!
//! which is exactly the shape of the *dual* of the fractional edge cover LP (the
//! fractional vertex packing LP), whose right-hand sides are the non-negative
//! `log₂ |R_F|` weights — so the all-slack basis is feasible and no phase-1 is needed.
//! The optimal duals of this program (read off the slack reduced costs) are the
//! fractional edge cover itself.

/// Outcome of [`maximize`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal(LpSolution),
    /// The LP is unbounded above.
    Unbounded,
}

/// An optimal solution of the LP.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// The optimal objective value `cᵀ y*`.
    pub objective: f64,
    /// The optimal primal values `y*` (length = number of variables).
    pub primal: Vec<f64>,
    /// The optimal dual values, one per constraint (the reduced costs of the slack
    /// variables at the optimum).
    pub dual: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Solves `max cᵀy s.t. Ay ≤ b, y ≥ 0` with `b ≥ 0` by primal simplex (Bland's rule).
///
/// Panics if dimensions are inconsistent or some `b[i] < 0`.
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    let n = c.len();
    let m = a.len();
    assert_eq!(b.len(), m, "one rhs per constraint required");
    for row in a {
        assert_eq!(row.len(), n, "constraint row width must match variable count");
    }
    assert!(b.iter().all(|&x| x >= -EPS), "rhs must be non-negative for the slack start");

    // Tableau: m constraint rows over columns [y_0..y_{n-1}, s_0..s_{m-1}, rhs].
    let width = n + m + 1;
    let mut tab: Vec<Vec<f64>> = Vec::with_capacity(m);
    for i in 0..m {
        let mut row = vec![0.0; width];
        row[..n].copy_from_slice(&a[i]);
        row[n + i] = 1.0;
        row[width - 1] = b[i].max(0.0);
        tab.push(row);
    }
    // Objective row: z - cᵀy = 0, stored as coefficients of [y, s | z-value].
    let mut obj = vec![0.0; width];
    for j in 0..n {
        obj[j] = -c[j];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Entering column: smallest index with a negative reduced cost (Bland).
    while let Some(enter) = (0..n + m).find(|&j| obj[j] < -EPS) {
        // Ratio test: smallest rhs / pivot over positive pivot entries; ties broken by
        // smallest basis variable index (Bland).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, row) in tab.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[width - 1] / row[enter];
                let better = ratio < best_ratio - EPS
                    || ((ratio - best_ratio).abs() <= EPS
                        && leave.is_none_or(|l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return LpOutcome::Unbounded;
        };

        // Pivot on (leave, enter).
        let pivot = tab[leave][enter];
        for x in tab[leave].iter_mut() {
            *x /= pivot;
        }
        let pivot_row = tab[leave].clone();
        for (i, row) in tab.iter_mut().enumerate() {
            if i != leave && row[enter].abs() > EPS {
                let factor = row[enter];
                for (x, &p) in row.iter_mut().zip(&pivot_row) {
                    *x -= factor * p;
                }
            }
        }
        if obj[enter].abs() > EPS {
            let factor = obj[enter];
            for (x, &p) in obj.iter_mut().zip(&pivot_row) {
                *x -= factor * p;
            }
        }
        basis[leave] = enter;
    }

    let mut primal = vec![0.0; n];
    for (i, &bi) in basis.iter().enumerate() {
        if bi < n {
            primal[bi] = tab[i][width - 1];
        }
    }
    let dual = (0..m).map(|i| obj[n + i]).collect();
    LpOutcome::Optimal(LpSolution { objective: obj[width - 1], primal, dual })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_two_variable_lp() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2, y <= 3  -> x=2, y=2, z=10.
        let sol = match maximize(
            &[3.0, 2.0],
            &[vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]],
            &[4.0, 2.0, 3.0],
        ) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Unbounded => panic!("unexpected unbounded"),
        };
        assert_close(sol.objective, 10.0);
        assert_close(sol.primal[0], 2.0);
        assert_close(sol.primal[1], 2.0);
    }

    #[test]
    fn duals_solve_the_covering_lp() {
        // Vertex packing dual of the triangle edge cover with unit weights:
        // max y_a + y_b + y_c s.t. y_a + y_b <= 1, y_b + y_c <= 1, y_a + y_c <= 1.
        // Optimum 1.5 at y = (0.5, 0.5, 0.5); duals (= fractional edge cover) are all 0.5.
        let sol = match maximize(
            &[1.0, 1.0, 1.0],
            &[vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 1.0]],
            &[1.0, 1.0, 1.0],
        ) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Unbounded => panic!("unexpected unbounded"),
        };
        assert_close(sol.objective, 1.5);
        for d in &sol.dual {
            assert_close(*d, 0.5);
        }
        // Weak duality sanity: dual objective equals primal objective.
        let dual_obj: f64 = sol.dual.iter().sum();
        assert_close(dual_obj, sol.objective);
    }

    #[test]
    fn zero_objective_is_trivially_optimal() {
        let sol = match maximize(&[0.0, 0.0], &[vec![1.0, 1.0]], &[5.0]) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Unbounded => panic!("unexpected unbounded"),
        };
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no binding constraint on x.
        let out = maximize(&[1.0, 0.0], &[vec![0.0, 1.0]], &[1.0]);
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Degenerate constraints (redundant rows with zero rhs) must not cycle.
        let out = maximize(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            &[0.0, 0.0, 1.0, 1.0],
        );
        match out {
            LpOutcome::Optimal(s) => assert_close(s.objective, 1.0),
            LpOutcome::Unbounded => panic!("unexpected unbounded"),
        }
    }

    #[test]
    fn binding_constraint_identification_via_duals() {
        // max 2x s.t. x <= 3, x + y <= 10 -> only the first constraint binds.
        let sol = match maximize(&[2.0, 0.0], &[vec![1.0, 0.0], vec![1.0, 1.0]], &[3.0, 10.0]) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Unbounded => panic!("unexpected unbounded"),
        };
        assert_close(sol.objective, 6.0);
        assert_close(sol.dual[0], 2.0);
        assert_close(sol.dual[1], 0.0);
    }
}
