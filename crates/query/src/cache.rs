//! The shared, database-level trie-index cache.
//!
//! Every engine in this workspace consumes GAO-consistent [`TrieIndex`]es, and a
//! graph workload reuses a handful of physical indexes across *millions* of
//! executions: 4-clique needs `edge` in at most three distinct column orders, and
//! every catalog query over the same graph shares them. An [`IndexCache`] keys
//! built indexes by `(relation name, column permutation)` and hands out
//! [`Arc`]-shared references, so a prepared query never rebuilds an index another
//! query (or a previous preparation of the same query) already paid for.
//!
//! The cache is thread-safe (`RwLock` around the map) and misses can be built in
//! parallel with [`IndexCache::build_all`], which shards independent trie builds
//! across a scoped-thread job queue — the same std-only atomic pattern as the
//! `gj-runtime` morsel driver's job pool. Replacing a relation must call
//! [`IndexCache::invalidate`] with its name; the `Database` façade in `gj-core`
//! does this from `add_relation`/`add_graph`.

use gj_storage::{Relation, TrieIndex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// The per-relation slice of the cache: column permutation → shared index.
type PermMap = HashMap<Vec<usize>, Arc<TrieIndex>>;

/// A thread-safe cache of trie indexes keyed by `(relation name, permutation)`.
///
/// Cloning the cache clones its *contents* (the `Arc`s, not the tries), giving the
/// clone an independent map: a cloned `Database` starts warm but diverges freely.
#[derive(Debug, Default)]
pub struct IndexCache {
    /// relation name → column permutation → shared index.
    entries: RwLock<HashMap<String, PermMap>>,
}

impl Clone for IndexCache {
    fn clone(&self) -> Self {
        let entries = self.entries.read().expect("index cache poisoned").clone();
        IndexCache { entries: RwLock::new(entries) }
    }
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// Looks up the index for `name` under the column permutation `perm`.
    pub fn get(&self, name: &str, perm: &[usize]) -> Option<Arc<TrieIndex>> {
        self.entries.read().expect("index cache poisoned").get(name)?.get(perm).cloned()
    }

    /// Inserts an index, returning the cached copy (the existing one if another
    /// thread raced the build — all callers then share a single physical index).
    pub fn insert(&self, name: &str, perm: Vec<usize>, index: Arc<TrieIndex>) -> Arc<TrieIndex> {
        let mut entries = self.entries.write().expect("index cache poisoned");
        entries.entry(name.to_string()).or_default().entry(perm).or_insert(index).clone()
    }

    /// Returns the cached index for `(name, perm)`, building it from `relation`
    /// on a miss.
    pub fn get_or_build(&self, name: &str, relation: &Relation, perm: &[usize]) -> Arc<TrieIndex> {
        if let Some(hit) = self.get(name, perm) {
            return hit;
        }
        let built = Arc::new(TrieIndex::build(relation, perm));
        self.insert(name, perm.to_vec(), built)
    }

    /// Drops every index built over the relation `name`. Must be called whenever
    /// that relation is replaced, or stale indexes would keep serving the old data.
    pub fn invalidate(&self, name: &str) {
        self.entries.write().expect("index cache poisoned").remove(name);
    }

    /// Drops every cached index (used by benchmarks to measure cold preparations).
    pub fn clear(&self) {
        self.entries.write().expect("index cache poisoned").clear();
    }

    /// Number of physical indexes currently cached.
    pub fn len(&self) -> usize {
        self.entries.read().expect("index cache poisoned").values().map(HashMap::len).sum()
    }

    /// Whether the cache holds no indexes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures an index exists for every `(name, relation, perm)` job, building the
    /// misses across up to `threads` scoped worker threads (a shared atomic counter
    /// serves as the job queue, as in Minesweeper's parallel driver). Duplicate jobs
    /// are built once. Returns `(indexes_built, threads_used)`.
    pub fn build_all(
        &self,
        jobs: &[(&str, &Relation, Vec<usize>)],
        threads: usize,
    ) -> (usize, usize) {
        // Deduplicate and drop the hits; only the misses are work.
        let mut missing: Vec<(&str, &Relation, &[usize])> = Vec::new();
        for (name, relation, perm) in jobs {
            let dup = missing.iter().any(|(n, _, p)| n == name && *p == perm.as_slice());
            if !dup && self.get(name, perm).is_none() {
                missing.push((name, relation, perm));
            }
        }
        if missing.is_empty() {
            return (0, 1);
        }
        let threads = threads.clamp(1, missing.len());
        if threads == 1 {
            for &(name, relation, perm) in &missing {
                self.get_or_build(name, relation, perm);
            }
            return (missing.len(), 1);
        }

        let built: Mutex<Vec<Option<Arc<TrieIndex>>>> = Mutex::new(vec![None; missing.len()]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let built = &built;
                let missing = &missing;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(_, relation, perm)) = missing.get(i) else { break };
                    let index = Arc::new(TrieIndex::build(relation, perm));
                    built.lock().expect("build results poisoned")[i] = Some(index);
                });
            }
        });
        let built = built.into_inner().expect("build results poisoned");
        for ((name, _, perm), index) in missing.iter().zip(built) {
            let index = index.expect("every job was claimed by a worker");
            self.insert(name, perm.to_vec(), index);
        }
        (missing.len(), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> Relation {
        Relation::from_pairs(vec![(0, 1), (1, 0), (1, 2), (2, 1)])
    }

    #[test]
    fn get_or_build_caches_per_name_and_perm() {
        let cache = IndexCache::new();
        let r = edge();
        let a = cache.get_or_build("edge", &r, &[0, 1]);
        let b = cache.get_or_build("edge", &r, &[0, 1]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let c = cache.get_or_build("edge", &r, &[1, 0]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_drops_only_the_named_relation() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        cache.get_or_build("edge", &r, &[1, 0]);
        cache.get_or_build("other", &r, &[0, 1]);
        cache.invalidate("edge");
        assert!(cache.get("edge", &[0, 1]).is_none());
        assert!(cache.get("other", &[0, 1]).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn build_all_builds_each_missing_key_once() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let jobs: Vec<(&str, &Relation, Vec<usize>)> = vec![
            ("edge", &r, vec![0, 1]), // hit
            ("edge", &r, vec![1, 0]), // miss
            ("edge", &r, vec![1, 0]), // duplicate of the miss
            ("other", &r, vec![0, 1]),
        ];
        let (built, threads) = cache.build_all(&jobs, 4);
        assert_eq!(built, 2);
        assert!(threads >= 1);
        assert_eq!(cache.len(), 3);
        // A second pass is fully warm.
        assert_eq!(cache.build_all(&jobs, 4), (0, 1));
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let cache_seq = IndexCache::new();
        let cache_par = IndexCache::new();
        let r = Relation::from_rows(
            3,
            (0..60).map(|i| vec![i % 5, (i * 7) % 11, i]).collect::<Vec<_>>(),
        );
        let perms: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![2, 1, 0], vec![1, 0, 2], vec![2, 0, 1]];
        let jobs: Vec<(&str, &Relation, Vec<usize>)> =
            perms.iter().map(|p| ("r", &r, p.clone())).collect();
        cache_seq.build_all(&jobs, 1);
        cache_par.build_all(&jobs, 4);
        for p in &perms {
            let a = cache_seq.get("r", p).unwrap();
            let b = cache_par.get("r", p).unwrap();
            assert_eq!(a.level_values(0), b.level_values(0), "perm {p:?}");
        }
    }

    #[test]
    fn clone_is_warm_but_independent() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let clone = cache.clone();
        assert_eq!(clone.len(), 1);
        clone.invalidate("edge");
        assert_eq!(clone.len(), 0);
        assert_eq!(cache.len(), 1, "invalidating the clone must not touch the original");
    }
}
