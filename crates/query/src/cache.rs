//! The shared, database-level trie-index cache.
//!
//! Every engine in this workspace consumes GAO-consistent [`TrieIndex`]es, and a
//! graph workload reuses a handful of physical indexes across *millions* of
//! executions: 4-clique needs `edge` in at most three distinct column orders, and
//! every catalog query over the same graph shares them. An [`IndexCache`] keys
//! built indexes by `(relation name, column permutation)` and hands out
//! [`Arc`]-shared references, so a prepared query never rebuilds an index another
//! query (or a previous preparation of the same query) already paid for.
//!
//! The cache is thread-safe (`RwLock` around the map) and misses can be built in
//! parallel with [`IndexCache::build_all`], which shards independent trie builds
//! across a scoped-thread job queue — the same std-only atomic pattern as the
//! `gj-runtime` morsel driver's job pool. Replacing a relation must call
//! [`IndexCache::invalidate`] with its name; the `Database` façade in `gj-core`
//! does this from `add_relation`/`add_graph`.

use gj_storage::{FailpointHit, FailpointRegistry, Relation, TrieIndex, Val};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// The per-relation slice of the cache: column permutation → shared index.
type PermMap = HashMap<Vec<usize>, Arc<TrieIndex>>;

/// Everything the cache knows about one relation: its built indexes plus the
/// cumulative, normalized edit deltas not yet folded into their bases.
///
/// The delta invariants (every row in `ins` is absent from the indexes' shared
/// base, every row in `del` is present in it, and the two sets are disjoint) are
/// maintained by [`RelEntry::absorb`]; they are exactly the preconditions of
/// [`TrieIndex::with_edits`].
#[derive(Debug, Clone, Default)]
struct RelEntry {
    perms: PermMap,
    ins: BTreeSet<Vec<Val>>,
    del: BTreeSet<Vec<Val>>,
}

impl RelEntry {
    /// Folds an *effective* edit batch (inserts not currently live, deletes
    /// currently live — the `Database` normalizes against its relation before
    /// calling) into the cumulative sets, preserving the delta invariants:
    /// deleting a pending insert cancels it, re-inserting a tombstoned base row
    /// revives it.
    fn absorb(&mut self, ins: &Relation, del: &Relation) {
        for row in del.iter() {
            if !self.ins.remove(row) {
                self.del.insert(row.to_vec());
            }
        }
        for row in ins.iter() {
            if !self.del.remove(row) {
                self.ins.insert(row.to_vec());
            }
        }
    }

    /// The cumulative sets as sorted relations ready for [`TrieIndex::with_edits`].
    fn delta_relations(&self, arity: usize) -> (Relation, Relation) {
        let ins = Relation::from_rows(arity, self.ins.iter().cloned().collect::<Vec<_>>());
        let del = Relation::from_rows(arity, self.del.iter().cloned().collect::<Vec<_>>());
        (ins, del)
    }
}

/// Pending deltas above this size are folded into a fresh solid base
/// (`max(64, live_rows / 8)`): big enough that a steady edit trickle almost never
/// compacts, small enough that merged-iteration overhead stays bounded.
fn compaction_threshold(live_rows: usize) -> usize {
    64.max(live_rows / 8)
}

/// A thread-safe cache of trie indexes keyed by `(relation name, permutation)`.
///
/// Cloning the cache clones its *contents* (the `Arc`s, not the tries), giving the
/// clone an independent map: a cloned `Database` starts warm but diverges freely.
/// Clones do **not** inherit an armed failpoint registry.
///
/// Every lock acquisition recovers from poisoning: a build that panicked (e.g. an
/// armed [`TRIE_BUILD`](gj_storage::fault::sites::TRIE_BUILD) failpoint) leaves
/// the cache usable — the map only ever holds fully-built indexes, so the
/// recovered state is consistent.
#[derive(Debug, Default)]
pub struct IndexCache {
    /// relation name → built indexes + pending deltas.
    entries: RwLock<HashMap<String, RelEntry>>,
    /// Fault-injection registry consulted before every trie build (tests only;
    /// `None` in production, costing one mutex lock per *build*, never per hit).
    failpoints: Mutex<Option<Arc<FailpointRegistry>>>,
}

/// Read-locks `entries`, recovering from poisoning.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `entries`, recovering from poisoning.
fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

impl Clone for IndexCache {
    fn clone(&self) -> Self {
        let entries = read(&self.entries).clone();
        IndexCache { entries: RwLock::new(entries), failpoints: Mutex::new(None) }
    }
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// Arms (or, with `None`, disarms) a fault-injection registry. Every
    /// subsequent trie build first consults the registry's
    /// [`TRIE_BUILD`](gj_storage::fault::sites::TRIE_BUILD) site.
    pub fn set_failpoints(&self, failpoints: Option<Arc<FailpointRegistry>>) {
        *self.failpoints.lock().unwrap_or_else(PoisonError::into_inner) = failpoints;
    }

    /// Fires the `trie_build` failpoint if a registry is armed. A `Trip` action is
    /// meaningless at prepare time (there is no budget monitor) and is ignored.
    fn fire_trie_build(&self) {
        let registry = self.failpoints.lock().unwrap_or_else(PoisonError::into_inner).clone();
        if let Some(registry) = registry {
            if let Some(FailpointHit::Panic) = registry.hit(gj_storage::fault::sites::TRIE_BUILD) {
                panic!("failpoint panic: trie_build");
            }
        }
    }

    /// Looks up the index for `name` under the column permutation `perm`.
    pub fn get(&self, name: &str, perm: &[usize]) -> Option<Arc<TrieIndex>> {
        read(&self.entries).get(name)?.perms.get(perm).cloned()
    }

    /// Inserts an index, returning the cached copy (the existing one if another
    /// thread raced the build — all callers then share a single physical index).
    pub fn insert(&self, name: &str, perm: Vec<usize>, index: Arc<TrieIndex>) -> Arc<TrieIndex> {
        let mut entries = write(&self.entries);
        entries.entry(name.to_string()).or_default().perms.entry(perm).or_insert(index).clone()
    }

    /// Returns the cached index for `(name, perm)`, building it from `relation`
    /// on a miss.
    pub fn get_or_build(&self, name: &str, relation: &Relation, perm: &[usize]) -> Arc<TrieIndex> {
        if let Some(hit) = self.get(name, perm) {
            return hit;
        }
        let built = self.build_index(name, relation, perm);
        self.insert(name, perm.to_vec(), built)
    }

    /// The entry's cumulative pending deltas for `name`, or `None` when nothing
    /// is pending.
    fn pending_deltas(&self, name: &str, arity: usize) -> Option<(Relation, Relation)> {
        let entries = read(&self.entries);
        let entry = entries.get(name)?;
        if entry.ins.is_empty() && entry.del.is_empty() {
            return None;
        }
        Some(entry.delta_relations(arity))
    }

    /// Builds the index for `(name, perm)` at the same *base epoch* as the
    /// entry's other permutations. [`TrieIndex::with_edits`] replaces the delta
    /// layer wholesale, so [`apply_edits`](Self::apply_edits) patches every perm
    /// with sets cumulative against a common base. A perm built mid-edit-stream
    /// straight from `relation` would bake those edits into its base, and the
    /// next cumulative application would corrupt it (a delete-then-reinsert
    /// cancels out of the sets, silently dropping the row from the late base).
    /// So when deltas are pending, the solid base is reconstructed by undoing
    /// them on `relation` and the cumulative layer is re-attached on top.
    fn build_index(&self, name: &str, relation: &Relation, perm: &[usize]) -> Arc<TrieIndex> {
        self.fire_trie_build();
        match self.pending_deltas(name, relation.arity()) {
            None => Arc::new(TrieIndex::build(relation, perm)),
            Some((ins, del)) => {
                let baseline = relation.with_edits(&del, &ins);
                Arc::new(TrieIndex::build(&baseline, perm).with_edits(&ins, &del))
            }
        }
    }

    /// Drops every index built over the relation `name`. Must be called whenever
    /// that relation is replaced, or stale indexes would keep serving the old data.
    pub fn invalidate(&self, name: &str) {
        write(&self.entries).remove(name);
    }

    /// Drops every cached index (used by benchmarks to measure cold preparations).
    pub fn clear(&self) {
        write(&self.entries).clear();
    }

    /// Number of physical indexes currently cached.
    pub fn len(&self) -> usize {
        read(&self.entries).values().map(|e| e.perms.len()).sum()
    }

    /// Rows in the pending (uncompacted) delta for relation `name`:
    /// `inserts + tombstones`, or 0 when nothing is pending.
    pub fn pending_delta_len(&self, name: &str) -> usize {
        read(&self.entries).get(name).map_or(0, |e| e.ins.len() + e.del.len())
    }

    /// Applies an **effective** edit batch (inserts not previously live, deletes
    /// previously live — disjoint) to every cached index of relation `name`, in
    /// O(delta × permutations) — the shared base tries are never rebuilt.
    /// `updated` is the post-edit relation, used only when the accumulated delta
    /// crosses `compaction_threshold`: then every permutation is rebuilt solid
    /// from it and the delta sets are cleared. Returns the number of indexes
    /// compacted (0 for a pure delta update).
    ///
    /// A relation with no cached indexes needs no work: the next miss builds a
    /// solid index straight from the updated relation.
    pub fn apply_edits(
        &self,
        name: &str,
        ins: &Relation,
        del: &Relation,
        updated: &Relation,
    ) -> usize {
        let mut entries = write(&self.entries);
        let Some(entry) = entries.get_mut(name) else { return 0 };
        if entry.perms.is_empty() {
            // Nothing built yet; forget any pending bookkeeping too — future
            // builds start from `updated` directly.
            entry.ins.clear();
            entry.del.clear();
            return 0;
        }
        entry.absorb(ins, del);
        if entry.ins.len() + entry.del.len() > compaction_threshold(updated.len()) {
            self.fire_trie_build_locked();
            for (perm, index) in entry.perms.iter_mut() {
                *index = Arc::new(TrieIndex::build(updated, perm));
            }
            entry.ins.clear();
            entry.del.clear();
            return entry.perms.len();
        }
        let (ins_rel, del_rel) = entry.delta_relations(updated.arity());
        for index in entry.perms.values_mut() {
            *index = Arc::new(index.with_edits(&ins_rel, &del_rel));
        }
        0
    }

    /// [`IndexCache::fire_trie_build`] is called with `entries` held during
    /// compaction; the failpoint mutex is separate, so this is just a named alias
    /// making the lock order (entries → failpoints) visible.
    fn fire_trie_build_locked(&self) {
        self.fire_trie_build();
    }

    /// Whether the cache holds no indexes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures an index exists for every `(name, relation, perm)` job, building the
    /// misses across up to `threads` scoped worker threads (a shared atomic counter
    /// serves as the job queue, as in Minesweeper's parallel driver). Duplicate jobs
    /// are built once. Returns `(indexes_built, threads_used)`.
    pub fn build_all(
        &self,
        jobs: &[(&str, &Relation, Vec<usize>)],
        threads: usize,
    ) -> (usize, usize) {
        // Deduplicate and drop the hits; only the misses are work.
        let mut missing: Vec<(&str, &Relation, &[usize])> = Vec::new();
        for (name, relation, perm) in jobs {
            let dup = missing.iter().any(|(n, _, p)| n == name && *p == perm.as_slice());
            if !dup && self.get(name, perm).is_none() {
                missing.push((name, relation, perm));
            }
        }
        if missing.is_empty() {
            return (0, 1);
        }
        let threads = threads.clamp(1, missing.len());
        if threads == 1 {
            for &(name, relation, perm) in &missing {
                self.get_or_build(name, relation, perm);
            }
            return (missing.len(), 1);
        }

        let built: Mutex<Vec<Option<Arc<TrieIndex>>>> = Mutex::new(vec![None; missing.len()]);
        let next = AtomicUsize::new(0);
        // gj-lint: allow(no-direct-thread-spawn-outside-runtime) — structured scoped build before any runtime driver exists; joins before returning
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let built = &built;
                let missing = &missing;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(name, relation, perm)) = missing.get(i) else { break };
                    let index = self.build_index(name, relation, perm);
                    built.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(index);
                });
            }
        });
        let built = built.into_inner().unwrap_or_else(PoisonError::into_inner);
        for ((name, _, perm), index) in missing.iter().zip(built) {
            let index = index.expect("every job was claimed by a worker");
            self.insert(name, perm.to_vec(), index);
        }
        (missing.len(), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> Relation {
        Relation::from_pairs(vec![(0, 1), (1, 0), (1, 2), (2, 1)])
    }

    #[test]
    fn get_or_build_caches_per_name_and_perm() {
        let cache = IndexCache::new();
        let r = edge();
        let a = cache.get_or_build("edge", &r, &[0, 1]);
        let b = cache.get_or_build("edge", &r, &[0, 1]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let c = cache.get_or_build("edge", &r, &[1, 0]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_drops_only_the_named_relation() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        cache.get_or_build("edge", &r, &[1, 0]);
        cache.get_or_build("other", &r, &[0, 1]);
        cache.invalidate("edge");
        assert!(cache.get("edge", &[0, 1]).is_none());
        assert!(cache.get("other", &[0, 1]).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn build_all_builds_each_missing_key_once() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let jobs: Vec<(&str, &Relation, Vec<usize>)> = vec![
            ("edge", &r, vec![0, 1]), // hit
            ("edge", &r, vec![1, 0]), // miss
            ("edge", &r, vec![1, 0]), // duplicate of the miss
            ("other", &r, vec![0, 1]),
        ];
        let (built, threads) = cache.build_all(&jobs, 4);
        assert_eq!(built, 2);
        assert!(threads >= 1);
        assert_eq!(cache.len(), 3);
        // A second pass is fully warm.
        assert_eq!(cache.build_all(&jobs, 4), (0, 1));
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let cache_seq = IndexCache::new();
        let cache_par = IndexCache::new();
        let r = Relation::from_rows(
            3,
            (0..60).map(|i| vec![i % 5, (i * 7) % 11, i]).collect::<Vec<_>>(),
        );
        let perms: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![2, 1, 0], vec![1, 0, 2], vec![2, 0, 1]];
        let jobs: Vec<(&str, &Relation, Vec<usize>)> =
            perms.iter().map(|p| ("r", &r, p.clone())).collect();
        cache_seq.build_all(&jobs, 1);
        cache_par.build_all(&jobs, 4);
        for p in &perms {
            let a = cache_seq.get("r", p).unwrap();
            let b = cache_par.get("r", p).unwrap();
            assert_eq!(a.level_values(0), b.level_values(0), "perm {p:?}");
        }
    }

    #[test]
    fn an_armed_trie_build_failpoint_panics_and_leaves_the_cache_usable() {
        use gj_storage::{fault::sites, FailAction};
        let cache = IndexCache::new();
        let r = edge();
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm(sites::TRIE_BUILD, FailAction::Panic);
        cache.set_failpoints(Some(fp.clone()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build("edge", &r, &[0, 1])
        }));
        assert!(result.is_err());
        assert_eq!(fp.fired(), Some("trie_build".to_string()));
        // Disarm and retry: the failed build left nothing behind, the cache works.
        cache.set_failpoints(None);
        cache.get_or_build("edge", &r, &[0, 1]);
        assert_eq!(cache.len(), 1);
    }

    /// The poison-tolerance contract, pinned per structure: a build thread that
    /// panics while holding the `entries` lock leaves the cache poisoned but
    /// fully usable, and the indexes it serves afterwards are the *same shared
    /// allocations* as before the fault (`Arc::ptr_eq`, stronger than equality).
    #[test]
    fn a_poisoned_cache_serves_the_identical_shared_indexes() {
        let cache = IndexCache::new();
        let r = edge();
        let before = cache.get_or_build("edge", &r, &[0, 1]);
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.entries.write().unwrap();
            panic!("build thread dies while holding the cache lock");
        }));
        assert!(unwind.is_err());
        assert!(cache.entries.is_poisoned(), "the panic must actually poison the lock");
        let after = cache.get("edge", &[0, 1]).expect("a poisoned cache still serves reads");
        assert!(Arc::ptr_eq(&before, &after), "the recovered index is the same allocation");
        let rebuilt = cache.get_or_build("edge", &r, &[0, 1]);
        assert!(Arc::ptr_eq(&before, &rebuilt), "no spurious rebuild after recovery");
        cache.get_or_build("edge", &r, &[1, 0]);
        assert_eq!(cache.len(), 2, "writes keep working on a poisoned cache");
    }

    #[test]
    fn apply_edits_updates_every_perm_without_rebuilding_the_base() {
        let cache = IndexCache::new();
        let r = edge();
        let before_01 = cache.get_or_build("edge", &r, &[0, 1]);
        let before_10 = cache.get_or_build("edge", &r, &[1, 0]);
        let ins = Relation::from_pairs(vec![(5, 6)]);
        let del = Relation::from_pairs(vec![(0, 1)]);
        let updated = r.with_edits(&ins, &del);
        assert_eq!(cache.apply_edits("edge", &ins, &del, &updated), 0, "no compaction");
        let after_01 = cache.get("edge", &[0, 1]).unwrap();
        let after_10 = cache.get("edge", &[1, 0]).unwrap();
        assert!(after_01.shares_base(&before_01), "base trie shared, not rebuilt");
        assert!(after_10.shares_base(&before_10));
        assert!(after_01.has_delta() && after_10.has_delta());
        assert_eq!(cache.pending_delta_len("edge"), 2);
        assert!(after_01.contains(&[5, 6]) && !after_01.contains(&[0, 1]));
        assert!(after_10.contains(&[6, 5]) && !after_10.contains(&[1, 0]));
        assert_eq!(after_01.num_rows(), updated.len());
    }

    #[test]
    fn apply_edits_normalizes_cancelling_batches() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let row = Relation::from_pairs(vec![(7, 8)]);
        let none = Relation::empty(2);
        let after_ins = r.with_edits(&row, &none);
        cache.apply_edits("edge", &row, &none, &after_ins);
        assert_eq!(cache.pending_delta_len("edge"), 1);
        // Deleting the pending insert cancels it instead of tombstoning.
        cache.apply_edits("edge", &none, &row, &r);
        assert_eq!(cache.pending_delta_len("edge"), 0);
        let idx = cache.get("edge", &[0, 1]).unwrap();
        assert!(!idx.contains(&[7, 8]));
        // Deleting a base row then re-inserting it revives the tombstone.
        let base_row = Relation::from_pairs(vec![(0, 1)]);
        cache.apply_edits("edge", &none, &base_row, &r.with_edits(&none, &base_row));
        cache.apply_edits("edge", &base_row, &none, &r);
        assert_eq!(cache.pending_delta_len("edge"), 0);
        assert!(cache.get("edge", &[0, 1]).unwrap().contains(&[0, 1]));
    }

    #[test]
    fn oversized_deltas_compact_into_fresh_solid_bases() {
        let cache = IndexCache::new();
        let r = edge();
        let before = cache.get_or_build("edge", &r, &[0, 1]);
        // 65 inserts on a 4-row relation crosses max(64, len/8).
        let ins = Relation::from_pairs((0..65).map(|i| (100 + i, i)).collect::<Vec<_>>());
        let none = Relation::empty(2);
        let updated = r.with_edits(&ins, &none);
        assert_eq!(cache.apply_edits("edge", &ins, &none, &updated), 1, "one perm compacted");
        let after = cache.get("edge", &[0, 1]).unwrap();
        assert!(!after.has_delta(), "compaction folds the delta away");
        assert!(!after.shares_base(&before), "compaction builds a fresh base");
        assert_eq!(after.num_rows(), updated.len());
        assert_eq!(cache.pending_delta_len("edge"), 0);
    }

    /// A permutation built *after* edits started must land at the entry's base
    /// epoch. Regression: a delete, a late perm build, then a re-insert of the
    /// deleted row cancels out of the cumulative sets — a late perm built
    /// straight from the current relation would silently lose the row.
    #[test]
    fn late_built_perms_survive_a_delete_then_reinsert() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let row = Relation::from_pairs(vec![(0, 1)]);
        let none = Relation::empty(2);
        let shrunk = r.with_edits(&none, &row);
        cache.apply_edits("edge", &none, &row, &shrunk);
        // Miss on a second permutation while the delete is still pending.
        cache.get_or_build("edge", &shrunk, &[1, 0]);
        // Re-inserting the row revives the tombstone: the cumulative delta is
        // now empty, so every perm must be back at the full relation.
        cache.apply_edits("edge", &row, &none, &r);
        let a = cache.get("edge", &[0, 1]).unwrap();
        let b = cache.get("edge", &[1, 0]).unwrap();
        assert!(a.contains(&[0, 1]));
        assert!(b.contains(&[1, 0]), "late-built perm lost the re-inserted row");
        assert_eq!(a.num_rows(), r.len());
        assert_eq!(b.num_rows(), r.len());
    }

    /// The mirror case: an insert, a late perm build, then a delete of that row
    /// cancels out of the cumulative sets — a late perm with the row baked into
    /// its base would keep serving it.
    #[test]
    fn late_built_perms_drop_an_insert_then_delete() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let row = Relation::from_pairs(vec![(7, 8)]);
        let none = Relation::empty(2);
        let grown = r.with_edits(&row, &none);
        cache.apply_edits("edge", &row, &none, &grown);
        cache.get_or_build("edge", &grown, &[1, 0]);
        cache.apply_edits("edge", &none, &row, &r);
        let a = cache.get("edge", &[0, 1]).unwrap();
        let b = cache.get("edge", &[1, 0]).unwrap();
        assert!(!a.contains(&[7, 8]));
        assert!(!b.contains(&[8, 7]), "late-built perm kept the deleted row");
        assert_eq!(a.num_rows(), r.len());
        assert_eq!(b.num_rows(), r.len());
    }

    #[test]
    fn apply_edits_without_cached_indexes_is_a_no_op() {
        let cache = IndexCache::new();
        let r = edge();
        let ins = Relation::from_pairs(vec![(9, 9)]);
        let none = Relation::empty(2);
        assert_eq!(cache.apply_edits("edge", &ins, &none, &r.with_edits(&ins, &none)), 0);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.pending_delta_len("edge"), 0);
    }

    #[test]
    fn clone_is_warm_but_independent() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let clone = cache.clone();
        assert_eq!(clone.len(), 1);
        clone.invalidate("edge");
        assert_eq!(clone.len(), 0);
        assert_eq!(cache.len(), 1, "invalidating the clone must not touch the original");
    }
}
