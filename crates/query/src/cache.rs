//! The shared, database-level trie-index cache.
//!
//! Every engine in this workspace consumes GAO-consistent [`TrieIndex`]es, and a
//! graph workload reuses a handful of physical indexes across *millions* of
//! executions: 4-clique needs `edge` in at most three distinct column orders, and
//! every catalog query over the same graph shares them. An [`IndexCache`] keys
//! built indexes by `(relation name, column permutation)` and hands out
//! [`Arc`]-shared references, so a prepared query never rebuilds an index another
//! query (or a previous preparation of the same query) already paid for.
//!
//! The cache is thread-safe (`RwLock` around the map) and misses can be built in
//! parallel with [`IndexCache::build_all`], which shards independent trie builds
//! across a scoped-thread job queue — the same std-only atomic pattern as the
//! `gj-runtime` morsel driver's job pool. Replacing a relation must call
//! [`IndexCache::invalidate`] with its name; the `Database` façade in `gj-core`
//! does this from `add_relation`/`add_graph`.

use gj_storage::{FailpointHit, FailpointRegistry, Relation, TrieIndex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// The per-relation slice of the cache: column permutation → shared index.
type PermMap = HashMap<Vec<usize>, Arc<TrieIndex>>;

/// A thread-safe cache of trie indexes keyed by `(relation name, permutation)`.
///
/// Cloning the cache clones its *contents* (the `Arc`s, not the tries), giving the
/// clone an independent map: a cloned `Database` starts warm but diverges freely.
/// Clones do **not** inherit an armed failpoint registry.
///
/// Every lock acquisition recovers from poisoning: a build that panicked (e.g. an
/// armed [`TRIE_BUILD`](gj_storage::fault::sites::TRIE_BUILD) failpoint) leaves
/// the cache usable — the map only ever holds fully-built indexes, so the
/// recovered state is consistent.
#[derive(Debug, Default)]
pub struct IndexCache {
    /// relation name → column permutation → shared index.
    entries: RwLock<HashMap<String, PermMap>>,
    /// Fault-injection registry consulted before every trie build (tests only;
    /// `None` in production, costing one mutex lock per *build*, never per hit).
    failpoints: Mutex<Option<Arc<FailpointRegistry>>>,
}

/// Read-locks `entries`, recovering from poisoning.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `entries`, recovering from poisoning.
fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

impl Clone for IndexCache {
    fn clone(&self) -> Self {
        let entries = read(&self.entries).clone();
        IndexCache { entries: RwLock::new(entries), failpoints: Mutex::new(None) }
    }
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// Arms (or, with `None`, disarms) a fault-injection registry. Every
    /// subsequent trie build first consults the registry's
    /// [`TRIE_BUILD`](gj_storage::fault::sites::TRIE_BUILD) site.
    pub fn set_failpoints(&self, failpoints: Option<Arc<FailpointRegistry>>) {
        *self.failpoints.lock().unwrap_or_else(PoisonError::into_inner) = failpoints;
    }

    /// Fires the `trie_build` failpoint if a registry is armed. A `Trip` action is
    /// meaningless at prepare time (there is no budget monitor) and is ignored.
    fn fire_trie_build(&self) {
        let registry = self.failpoints.lock().unwrap_or_else(PoisonError::into_inner).clone();
        if let Some(registry) = registry {
            if let Some(FailpointHit::Panic) = registry.hit(gj_storage::fault::sites::TRIE_BUILD) {
                panic!("failpoint panic: trie_build");
            }
        }
    }

    /// Looks up the index for `name` under the column permutation `perm`.
    pub fn get(&self, name: &str, perm: &[usize]) -> Option<Arc<TrieIndex>> {
        read(&self.entries).get(name)?.get(perm).cloned()
    }

    /// Inserts an index, returning the cached copy (the existing one if another
    /// thread raced the build — all callers then share a single physical index).
    pub fn insert(&self, name: &str, perm: Vec<usize>, index: Arc<TrieIndex>) -> Arc<TrieIndex> {
        let mut entries = write(&self.entries);
        entries.entry(name.to_string()).or_default().entry(perm).or_insert(index).clone()
    }

    /// Returns the cached index for `(name, perm)`, building it from `relation`
    /// on a miss.
    pub fn get_or_build(&self, name: &str, relation: &Relation, perm: &[usize]) -> Arc<TrieIndex> {
        if let Some(hit) = self.get(name, perm) {
            return hit;
        }
        self.fire_trie_build();
        let built = Arc::new(TrieIndex::build(relation, perm));
        self.insert(name, perm.to_vec(), built)
    }

    /// Drops every index built over the relation `name`. Must be called whenever
    /// that relation is replaced, or stale indexes would keep serving the old data.
    pub fn invalidate(&self, name: &str) {
        write(&self.entries).remove(name);
    }

    /// Drops every cached index (used by benchmarks to measure cold preparations).
    pub fn clear(&self) {
        write(&self.entries).clear();
    }

    /// Number of physical indexes currently cached.
    pub fn len(&self) -> usize {
        read(&self.entries).values().map(HashMap::len).sum()
    }

    /// Whether the cache holds no indexes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures an index exists for every `(name, relation, perm)` job, building the
    /// misses across up to `threads` scoped worker threads (a shared atomic counter
    /// serves as the job queue, as in Minesweeper's parallel driver). Duplicate jobs
    /// are built once. Returns `(indexes_built, threads_used)`.
    pub fn build_all(
        &self,
        jobs: &[(&str, &Relation, Vec<usize>)],
        threads: usize,
    ) -> (usize, usize) {
        // Deduplicate and drop the hits; only the misses are work.
        let mut missing: Vec<(&str, &Relation, &[usize])> = Vec::new();
        for (name, relation, perm) in jobs {
            let dup = missing.iter().any(|(n, _, p)| n == name && *p == perm.as_slice());
            if !dup && self.get(name, perm).is_none() {
                missing.push((name, relation, perm));
            }
        }
        if missing.is_empty() {
            return (0, 1);
        }
        let threads = threads.clamp(1, missing.len());
        if threads == 1 {
            for &(name, relation, perm) in &missing {
                self.get_or_build(name, relation, perm);
            }
            return (missing.len(), 1);
        }

        let built: Mutex<Vec<Option<Arc<TrieIndex>>>> = Mutex::new(vec![None; missing.len()]);
        let next = AtomicUsize::new(0);
        // gj-lint: allow(no-direct-thread-spawn-outside-runtime) — structured scoped build before any runtime driver exists; joins before returning
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let built = &built;
                let missing = &missing;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(_, relation, perm)) = missing.get(i) else { break };
                    self.fire_trie_build();
                    let index = Arc::new(TrieIndex::build(relation, perm));
                    built.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(index);
                });
            }
        });
        let built = built.into_inner().unwrap_or_else(PoisonError::into_inner);
        for ((name, _, perm), index) in missing.iter().zip(built) {
            let index = index.expect("every job was claimed by a worker");
            self.insert(name, perm.to_vec(), index);
        }
        (missing.len(), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> Relation {
        Relation::from_pairs(vec![(0, 1), (1, 0), (1, 2), (2, 1)])
    }

    #[test]
    fn get_or_build_caches_per_name_and_perm() {
        let cache = IndexCache::new();
        let r = edge();
        let a = cache.get_or_build("edge", &r, &[0, 1]);
        let b = cache.get_or_build("edge", &r, &[0, 1]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let c = cache.get_or_build("edge", &r, &[1, 0]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_drops_only_the_named_relation() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        cache.get_or_build("edge", &r, &[1, 0]);
        cache.get_or_build("other", &r, &[0, 1]);
        cache.invalidate("edge");
        assert!(cache.get("edge", &[0, 1]).is_none());
        assert!(cache.get("other", &[0, 1]).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn build_all_builds_each_missing_key_once() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let jobs: Vec<(&str, &Relation, Vec<usize>)> = vec![
            ("edge", &r, vec![0, 1]), // hit
            ("edge", &r, vec![1, 0]), // miss
            ("edge", &r, vec![1, 0]), // duplicate of the miss
            ("other", &r, vec![0, 1]),
        ];
        let (built, threads) = cache.build_all(&jobs, 4);
        assert_eq!(built, 2);
        assert!(threads >= 1);
        assert_eq!(cache.len(), 3);
        // A second pass is fully warm.
        assert_eq!(cache.build_all(&jobs, 4), (0, 1));
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let cache_seq = IndexCache::new();
        let cache_par = IndexCache::new();
        let r = Relation::from_rows(
            3,
            (0..60).map(|i| vec![i % 5, (i * 7) % 11, i]).collect::<Vec<_>>(),
        );
        let perms: Vec<Vec<usize>> =
            vec![vec![0, 1, 2], vec![2, 1, 0], vec![1, 0, 2], vec![2, 0, 1]];
        let jobs: Vec<(&str, &Relation, Vec<usize>)> =
            perms.iter().map(|p| ("r", &r, p.clone())).collect();
        cache_seq.build_all(&jobs, 1);
        cache_par.build_all(&jobs, 4);
        for p in &perms {
            let a = cache_seq.get("r", p).unwrap();
            let b = cache_par.get("r", p).unwrap();
            assert_eq!(a.level_values(0), b.level_values(0), "perm {p:?}");
        }
    }

    #[test]
    fn an_armed_trie_build_failpoint_panics_and_leaves_the_cache_usable() {
        use gj_storage::{fault::sites, FailAction};
        let cache = IndexCache::new();
        let r = edge();
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm(sites::TRIE_BUILD, FailAction::Panic);
        cache.set_failpoints(Some(fp.clone()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build("edge", &r, &[0, 1])
        }));
        assert!(result.is_err());
        assert_eq!(fp.fired(), Some("trie_build".to_string()));
        // Disarm and retry: the failed build left nothing behind, the cache works.
        cache.set_failpoints(None);
        cache.get_or_build("edge", &r, &[0, 1]);
        assert_eq!(cache.len(), 1);
    }

    /// The poison-tolerance contract, pinned per structure: a build thread that
    /// panics while holding the `entries` lock leaves the cache poisoned but
    /// fully usable, and the indexes it serves afterwards are the *same shared
    /// allocations* as before the fault (`Arc::ptr_eq`, stronger than equality).
    #[test]
    fn a_poisoned_cache_serves_the_identical_shared_indexes() {
        let cache = IndexCache::new();
        let r = edge();
        let before = cache.get_or_build("edge", &r, &[0, 1]);
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.entries.write().unwrap();
            panic!("build thread dies while holding the cache lock");
        }));
        assert!(unwind.is_err());
        assert!(cache.entries.is_poisoned(), "the panic must actually poison the lock");
        let after = cache.get("edge", &[0, 1]).expect("a poisoned cache still serves reads");
        assert!(Arc::ptr_eq(&before, &after), "the recovered index is the same allocation");
        let rebuilt = cache.get_or_build("edge", &r, &[0, 1]);
        assert!(Arc::ptr_eq(&before, &rebuilt), "no spurious rebuild after recovery");
        cache.get_or_build("edge", &r, &[1, 0]);
        assert_eq!(cache.len(), 2, "writes keep working on a poisoned cache");
    }

    #[test]
    fn clone_is_warm_but_independent() {
        let cache = IndexCache::new();
        let r = edge();
        cache.get_or_build("edge", &r, &[0, 1]);
        let clone = cache.clone();
        assert_eq!(clone.len(), 1);
        clone.invalidate("edge");
        assert_eq!(clone.len(), 0);
        assert_eq!(cache.len(), 1, "invalidating the clone must not touch the original");
    }
}
