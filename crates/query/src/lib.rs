//! # gj-query
//!
//! Logical query layer for the graph-pattern join engine.
//!
//! This crate contains everything the join algorithms need to know about a query
//! *before* touching the data (Sections 2.1, 4.1, 4.9 and Appendix A of the paper):
//!
//! * [`Query`] / [`Atom`] — natural join queries with optional `x < y` filters, built
//!   through [`QueryBuilder`];
//! * [`Hypergraph`] — the query hypergraph, with α-acyclicity (GYO reduction) and
//!   β-acyclicity (nest-point elimination) tests;
//! * [`gao`] — global attribute orders: validity of a GAO as a nested elimination
//!   order (NEO), the paper's "longest-path NEO" selection heuristic, per-atom index
//!   permutations, and the β-acyclic skeleton used by Idea 7;
//! * [`agm`] — the AGM bound computed from the fractional edge cover LP, solved with
//!   the small dense [`lp`] simplex solver;
//! * [`catalog`] — the exact benchmark queries of Section 5.1 (cliques, cycles,
//!   paths, trees, combs, lollipops);
//! * [`ldbc`] — the LDBC-style social-network workload: multi-relation patterns
//!   (k-hop friends, common-interest triangles, creator–liker–tag paths) over
//!   the typed schema emitted by `gj-datagen`;
//! * [`bind`] — database [`Instance`]s and [`BoundQuery`] (query + GAO + one
//!   GAO-consistent trie index per atom), the common input of every engine;
//! * [`cache`] — the shared, thread-safe [`IndexCache`] that lets prepared queries
//!   reuse trie indexes across bindings (and build misses in parallel);
//! * [`naive`] — an obviously-correct reference enumerator used by tests.

pub mod agm;
pub mod bind;
pub mod cache;
pub mod catalog;
pub mod gao;
pub mod hypergraph;
pub mod ldbc;
pub mod lp;
pub mod naive;
pub mod query;

pub use agm::agm_bound;
pub use bind::{BindReport, BoundAtom, BoundQuery, Instance, RelationLoader};
pub use cache::IndexCache;
pub use catalog::CatalogQuery;
pub use gao::{acyclic_skeleton, atom_index_perm, is_neo, select_gao};
pub use hypergraph::Hypergraph;
pub use ldbc::LdbcQuery;
pub use naive::{naive_count, naive_join};
pub use query::{Atom, Query, QueryBuilder, VarId};
