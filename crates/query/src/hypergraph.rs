//! Query hypergraphs and acyclicity tests.
//!
//! The hypergraph `H(Q) = (V, E)` of a join query has the query variables as vertices
//! and one (set-valued) edge per atom (Section 2.1). Two degrees of acyclicity matter
//! in the paper:
//!
//! * **α-acyclicity** — the classical notion under which Yannakakis' algorithm runs in
//!   linear time; tested here with the GYO reduction (ear removal).
//! * **β-acyclicity** — the stronger notion required for Minesweeper's instance
//!   optimality; tested with nest-point elimination (a vertex is a *nest point* when
//!   the edges containing it form a chain under inclusion; a hypergraph is β-acyclic
//!   iff repeatedly removing nest points empties it).
//!
//! For the paper's graph-pattern queries every atom is unary or binary, so both
//! notions coincide with ordinary graph acyclicity of the pattern (noted in §2.1);
//! [`Hypergraph::is_graph_forest`] provides that direct check as well.

use crate::query::Query;
use std::collections::BTreeSet;

/// The hypergraph of a join query: one vertex per variable, one edge per atom.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<BTreeSet<usize>>,
}

impl Hypergraph {
    /// Builds the hypergraph of a query.
    pub fn of_query(q: &Query) -> Self {
        let edges =
            q.atoms.iter().map(|a| a.vars.iter().copied().collect::<BTreeSet<usize>>()).collect();
        Hypergraph { num_vertices: q.num_vars(), edges }
    }

    /// Builds a hypergraph directly from edge sets (used by tests and by the skeleton
    /// computation).
    pub fn new(num_vertices: usize, edges: Vec<BTreeSet<usize>>) -> Self {
        for e in &edges {
            assert!(e.iter().all(|&v| v < num_vertices), "edge vertex out of range");
        }
        Hypergraph { num_vertices, edges }
    }

    /// Number of vertices (query variables).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The edges (atom variable sets).
    pub fn edges(&self) -> &[BTreeSet<usize>] {
        &self.edges
    }

    /// α-acyclicity via the GYO reduction: repeatedly delete vertices that occur in at
    /// most one edge and edges contained in other edges; the hypergraph is α-acyclic
    /// iff at most one non-empty edge survives.
    pub fn is_alpha_acyclic(&self) -> bool {
        let mut edges: Vec<BTreeSet<usize>> =
            self.edges.iter().filter(|e| !e.is_empty()).cloned().collect();
        loop {
            let mut changed = false;

            // Rule 1: remove vertices that appear in exactly one edge.
            let mut occurrence = vec![0usize; self.num_vertices];
            for e in &edges {
                for &v in e {
                    occurrence[v] += 1;
                }
            }
            for e in &mut edges {
                let before = e.len();
                e.retain(|&v| occurrence[v] > 1);
                if e.len() != before {
                    changed = true;
                }
            }

            // Rule 2: remove edges contained in another edge (including duplicates).
            let mut keep = vec![true; edges.len()];
            for i in 0..edges.len() {
                if !keep[i] {
                    continue;
                }
                for j in 0..edges.len() {
                    if i == j || !keep[j] {
                        continue;
                    }
                    let subset = edges[i].is_subset(&edges[j]);
                    let strictly_smaller = edges[i].len() < edges[j].len() || (subset && i > j);
                    if subset && strictly_smaller {
                        keep[i] = false;
                        changed = true;
                        break;
                    }
                }
            }
            let next: Vec<BTreeSet<usize>> = edges
                .into_iter()
                .zip(keep)
                .filter(|(e, k)| *k && !e.is_empty())
                .map(|(e, _)| e)
                .collect();
            edges = next;

            if edges.len() <= 1 {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }

    /// β-acyclicity via nest-point elimination.
    ///
    /// A vertex `v` is a *nest point* when the distinct edges containing it form a
    /// chain under set inclusion. The hypergraph is β-acyclic iff repeatedly removing
    /// nest points (and dropping emptied edges) removes every vertex. Returns the
    /// elimination order when it exists.
    pub fn beta_elimination_order(&self) -> Option<Vec<usize>> {
        let mut edges: Vec<BTreeSet<usize>> =
            self.edges.iter().filter(|e| !e.is_empty()).cloned().collect();
        let mut alive: Vec<bool> =
            (0..self.num_vertices).map(|v| edges.iter().any(|e| e.contains(&v))).collect();
        let mut order = Vec::new();

        loop {
            let remaining: Vec<usize> = (0..self.num_vertices).filter(|&v| alive[v]).collect();
            if remaining.is_empty() {
                // Vertices never mentioned by any edge are appended at the end; they
                // are trivially eliminable.
                let missing: Vec<usize> =
                    (0..self.num_vertices).filter(|v| !order.contains(v)).collect();
                order.extend(missing);
                return Some(order);
            }
            let mut progressed = false;
            for &v in &remaining {
                let mut incident: Vec<&BTreeSet<usize>> =
                    edges.iter().filter(|e| e.contains(&v)).collect();
                incident.sort_by_key(|e| e.len());
                incident.dedup();
                let is_chain = incident.windows(2).all(|w| w[0].is_subset(w[1]));
                if is_chain {
                    for e in &mut edges {
                        e.remove(&v);
                    }
                    edges.retain(|e| !e.is_empty());
                    alive[v] = false;
                    order.push(v);
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                return None;
            }
        }
    }

    /// Whether the hypergraph is β-acyclic.
    pub fn is_beta_acyclic(&self) -> bool {
        self.beta_elimination_order().is_some()
    }

    /// For queries whose atoms are all unary or binary (every benchmark query in the
    /// paper), acyclicity reduces to the pattern graph being a forest. Returns `None`
    /// if some atom has arity greater than two.
    pub fn is_graph_forest(&self) -> Option<bool> {
        if self.edges.iter().any(|e| e.len() > 2) {
            return None;
        }
        // Union-find over vertices; a binary edge joining two vertices already in the
        // same component closes a cycle. Duplicate binary edges are ignored (the same
        // `edge` relation may appear once per orientation in a query).
        let mut parent: Vec<usize> = (0..self.num_vertices).collect();
        fn find(parent: &mut Vec<usize>, v: usize) -> usize {
            if parent[v] != v {
                let root = find(parent, parent[v]);
                parent[v] = root;
            }
            parent[v]
        }
        let mut seen_pairs = BTreeSet::new();
        for e in &self.edges {
            if e.len() != 2 {
                continue;
            }
            let mut it = e.iter();
            let a = *it.next().unwrap();
            let b = *it.next().unwrap();
            if !seen_pairs.insert((a, b)) {
                continue;
            }
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra == rb {
                return Some(false);
            }
            parent[ra] = rb;
        }
        Some(true)
    }

    /// The adjacency structure of the pattern graph (binary atoms only): for each
    /// vertex, the sorted list of distinct neighbours.
    pub fn graph_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![BTreeSet::new(); self.num_vertices];
        for e in &self.edges {
            if e.len() == 2 {
                let mut it = e.iter();
                let a = *it.next().unwrap();
                let b = *it.next().unwrap();
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        adj.into_iter().map(|s| s.into_iter().collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogQuery;
    use crate::query::QueryBuilder;

    fn hg(q: &Query) -> Hypergraph {
        Hypergraph::of_query(q)
    }
    use crate::query::Query;

    #[test]
    fn triangle_is_cyclic_in_both_senses() {
        let q = CatalogQuery::ThreeClique.query();
        let h = hg(&q);
        assert!(!h.is_alpha_acyclic());
        assert!(!h.is_beta_acyclic());
        assert_eq!(h.is_graph_forest(), Some(false));
    }

    #[test]
    fn paths_and_trees_are_acyclic() {
        for cq in [
            CatalogQuery::ThreePath,
            CatalogQuery::FourPath,
            CatalogQuery::OneTree,
            CatalogQuery::TwoTree,
            CatalogQuery::TwoComb,
        ] {
            let q = cq.query();
            let h = hg(&q);
            assert!(h.is_alpha_acyclic(), "{} should be alpha-acyclic", q.name);
            assert!(h.is_beta_acyclic(), "{} should be beta-acyclic", q.name);
            assert_eq!(h.is_graph_forest(), Some(true), "{}", q.name);
        }
    }

    #[test]
    fn cliques_cycles_and_lollipops_are_beta_cyclic() {
        for cq in [
            CatalogQuery::ThreeClique,
            CatalogQuery::FourClique,
            CatalogQuery::FourCycle,
            CatalogQuery::TwoLollipop,
            CatalogQuery::ThreeLollipop,
        ] {
            let q = cq.query();
            let h = hg(&q);
            assert!(!h.is_beta_acyclic(), "{} should be beta-cyclic", q.name);
            assert_eq!(h.is_graph_forest(), Some(false), "{}", q.name);
        }
    }

    #[test]
    fn alpha_but_not_beta_acyclic_example() {
        // The classical example: three "petals" sharing a common triangle of
        // vertices plus a big edge covering all of them is alpha-acyclic, but the
        // triangle of pairwise overlaps alone is not beta-acyclic.
        let big: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        let e01: BTreeSet<usize> = [0, 1].into_iter().collect();
        let e12: BTreeSet<usize> = [1, 2].into_iter().collect();
        let e02: BTreeSet<usize> = [0, 2].into_iter().collect();
        let h = Hypergraph::new(3, vec![big.clone(), e01.clone(), e12.clone(), e02.clone()]);
        assert!(h.is_alpha_acyclic());
        assert!(!h.is_beta_acyclic());
        // Without the big edge it is neither.
        let h2 = Hypergraph::new(3, vec![e01, e12, e02]);
        assert!(!h2.is_alpha_acyclic());
        assert!(!h2.is_beta_acyclic());
    }

    #[test]
    fn nested_edges_are_beta_acyclic() {
        let e1: BTreeSet<usize> = [0].into_iter().collect();
        let e2: BTreeSet<usize> = [0, 1].into_iter().collect();
        let e3: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        let h = Hypergraph::new(3, vec![e1, e2, e3]);
        assert!(h.is_beta_acyclic());
        assert!(h.is_alpha_acyclic());
    }

    #[test]
    fn elimination_order_covers_all_vertices() {
        let q = CatalogQuery::FourPath.query();
        let h = hg(&q);
        let order = h.beta_elimination_order().expect("4-path is beta-acyclic");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..q.num_vars()).collect::<Vec<_>>());
    }

    #[test]
    fn unary_only_query_is_acyclic() {
        let q = QueryBuilder::new("unary").atom("v1", &["a"]).atom("v2", &["b"]).build();
        let h = hg(&q);
        assert!(h.is_alpha_acyclic());
        assert!(h.is_beta_acyclic());
        assert_eq!(h.is_graph_forest(), Some(true));
    }

    #[test]
    fn graph_adjacency_ignores_unary_atoms() {
        let q = CatalogQuery::ThreePath.query();
        let h = hg(&q);
        let adj = h.graph_adjacency();
        let a = q.var("a").unwrap();
        let b = q.var("b").unwrap();
        assert_eq!(adj[a], vec![b]);
    }
}
