//! Global attribute orders (GAOs), nested elimination orders (NEOs), and the
//! β-acyclic skeleton.
//!
//! Both join algorithms process variables in one *global attribute order* shared by
//! every index (Section 4.1). For Minesweeper the GAO additionally has to be a
//! *nested elimination order* when the query is β-acyclic, so that the set of CDS
//! nodes constraining each prefix is a chain (Proposition 4.2); the paper further
//! picks the NEO "with the longest path length" because longer equality prefixes give
//! the CDS more caching opportunities (Section 4.9, Table 4).
//!
//! For β-cyclic queries Minesweeper falls back to Idea 7: it chooses a β-acyclic
//! *skeleton* of the atoms (a spanning forest of the pattern graph plus every unary
//! atom); only skeleton atoms insert constraints into the CDS
//! ([`acyclic_skeleton`]).
//!
//! These helpers are defined for queries whose atoms are unary or binary — which
//! covers every graph-pattern query in the paper. (`is_neo` on a query with a wider
//! atom conservatively returns `false`.)

use crate::hypergraph::Hypergraph;
use crate::query::{Atom, Query, VarId};
use std::collections::VecDeque;

/// Whether `gao` is a nested elimination order for the (unary/binary) query `q`.
///
/// For a pattern graph this is the condition that every variable has **at most one
/// neighbour that precedes it** in the order: the CDS constraints that restrict a
/// variable then all carry equalities on the same earlier position (or none), so the
/// nodes generalising any prefix form a chain.
pub fn is_neo(q: &Query, gao: &[VarId]) -> bool {
    if q.atoms.iter().any(|a| a.arity() > 2) {
        return false;
    }
    let h = Hypergraph::of_query(q);
    let adj = h.graph_adjacency();
    let mut pos = vec![usize::MAX; q.num_vars()];
    for (i, &v) in gao.iter().enumerate() {
        pos[v] = i;
    }
    for &v in gao {
        let earlier_neighbors = adj[v].iter().filter(|&&u| pos[u] < pos[v]).count();
        if earlier_neighbors > 1 {
            return false;
        }
    }
    true
}

/// Selects the GAO for a query, following the paper's heuristics:
///
/// * β-acyclic (forest) pattern: the NEO that follows the longest path of the pattern
///   graph (path vertices first, in path order; remaining vertices appended in BFS
///   order from the path; other components likewise). This is the "NEO with the
///   longest path length" of Section 4.9.
/// * β-cyclic pattern: the natural variable order of the query (the order in which
///   the Datalog formulation introduces the variables), which for the lollipop
///   queries also puts the path prefix before the clique — what the hybrid algorithm
///   of Section 4.12 expects.
pub fn select_gao(q: &Query) -> Vec<VarId> {
    let h = Hypergraph::of_query(q);
    let n = q.num_vars();
    if h.is_graph_forest() != Some(true) {
        return (0..n).collect();
    }
    let adj = h.graph_adjacency();
    let mut visited = vec![false; n];
    let mut order: Vec<VarId> = Vec::with_capacity(n);

    // Component representatives, processed largest-diameter first.
    let mut components: Vec<Vec<VarId>> = Vec::new();
    {
        let mut seen = vec![false; n];
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([s]);
            seen[s] = true;
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &u in &adj[v] {
                    if !seen[u] {
                        seen[u] = true;
                        queue.push_back(u);
                    }
                }
            }
            components.push(comp);
        }
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));

    for comp in components {
        if comp.len() == 1 {
            let v = comp[0];
            if !visited[v] {
                visited[v] = true;
                order.push(v);
            }
            continue;
        }
        // Double BFS to find a diameter path of this tree component.
        let far = |start: VarId| -> (VarId, Vec<Option<VarId>>) {
            let mut dist = vec![usize::MAX; n];
            let mut pred = vec![None; n];
            let mut queue = VecDeque::from([start]);
            dist[start] = 0;
            let mut last = start;
            while let Some(v) = queue.pop_front() {
                last = v;
                for &u in &adj[v] {
                    if dist[u] == usize::MAX && comp.contains(&u) {
                        dist[u] = dist[v] + 1;
                        pred[u] = Some(v);
                        queue.push_back(u);
                    }
                }
            }
            (last, pred)
        };
        let (end_a, _) = far(comp[0]);
        let (end_b, pred) = far(end_a);
        // Reconstruct the path end_a .. end_b.
        let mut path = vec![end_b];
        while let Some(p) = pred[*path.last().unwrap()] {
            path.push(p);
        }
        path.reverse();

        for &v in &path {
            if !visited[v] {
                visited[v] = true;
                order.push(v);
            }
        }
        // Hang the rest of the component off the path in BFS order (each vertex is
        // enqueued by its unique already-ordered neighbour, so the result is a NEO).
        let mut queue: VecDeque<VarId> = path.iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if comp.contains(&u) && !visited[u] {
                    visited[u] = true;
                    order.push(u);
                    queue.push_back(u);
                }
            }
        }
    }
    // Variables that appear only in unary atoms (or nowhere) go last.
    for (v, &seen) in visited.iter().enumerate() {
        if !seen {
            order.push(v);
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// The column permutation that indexes `atom`'s relation consistently with `gao`:
/// output level `d` of the trie is the atom column holding the `d`-th of the atom's
/// variables in GAO order.
///
/// For example, for the triangle query with GAO `B, A, C`, the atom `R(A, B)` is
/// indexed in the `(B, A)` order, i.e. permutation `[1, 0]`.
pub fn atom_index_perm(atom: &Atom, gao: &[VarId]) -> Vec<usize> {
    let mut pos = vec![usize::MAX; gao.len()];
    for (i, &v) in gao.iter().enumerate() {
        pos[v] = i;
    }
    let mut cols: Vec<usize> = (0..atom.arity()).collect();
    cols.sort_by_key(|&c| pos[atom.vars[c]]);
    cols
}

/// The atom's variables reordered by GAO position (the variable of trie level `d`).
pub fn atom_gao_vars(atom: &Atom, gao: &[VarId]) -> Vec<VarId> {
    atom_index_perm(atom, gao).into_iter().map(|c| atom.vars[c]).collect()
}

/// Chooses a β-acyclic skeleton of the query for Idea 7: all unary atoms plus a
/// spanning forest of the binary atoms (greedy, in atom order, skipping any atom that
/// would close a cycle — including a second atom over the same variable pair).
///
/// Returns one flag per atom: `true` if the atom is part of the skeleton (its gaps
/// are inserted into the CDS), `false` if it only advances the frontier.
pub fn acyclic_skeleton(q: &Query) -> Vec<bool> {
    let n = q.num_vars();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, v: usize) -> usize {
        if parent[v] != v {
            let root = find(parent, parent[v]);
            parent[v] = root;
        }
        parent[v]
    }
    q.atoms
        .iter()
        .map(|atom| {
            if atom.arity() != 2 {
                return true;
            }
            let (a, b) = (atom.vars[0], atom.vars[1]);
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra == rb {
                false
            } else {
                parent[ra] = rb;
                true
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogQuery;
    use crate::query::QueryBuilder;

    #[test]
    fn four_path_neo_classification_matches_table4() {
        let q = CatalogQuery::FourPath.query();
        let v = |name: &str| q.var(name).unwrap();
        let order = |names: &[&str]| names.iter().map(|n| v(n)).collect::<Vec<_>>();
        // NEO GAOs from Table 4.
        for names in [
            ["a", "b", "c", "d", "e"],
            ["b", "a", "c", "d", "e"],
            ["b", "c", "a", "d", "e"],
            ["c", "b", "a", "d", "e"],
            ["c", "b", "d", "a", "e"],
        ] {
            assert!(is_neo(&q, &order(&names)), "{names:?} should be a NEO");
        }
        // non-NEO GAOs from Table 4.
        for names in [["a", "b", "d", "c", "e"], ["b", "a", "d", "c", "e"]] {
            assert!(!is_neo(&q, &order(&names)), "{names:?} should not be a NEO");
        }
    }

    #[test]
    fn selected_gao_for_four_path_is_the_path_order() {
        let q = CatalogQuery::FourPath.query();
        let gao = select_gao(&q);
        let names: Vec<&str> = gao.iter().map(|&v| q.var_names[v].as_str()).collect();
        assert!(names == ["a", "b", "c", "d", "e"] || names == ["e", "d", "c", "b", "a"]);
        assert!(is_neo(&q, &gao));
    }

    #[test]
    fn selected_gao_is_neo_for_all_acyclic_catalog_queries() {
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let gao = select_gao(&q);
            assert_eq!(gao.len(), q.num_vars());
            if !cq.is_cyclic() {
                assert!(is_neo(&q, &gao), "selected GAO for {} must be a NEO", q.name);
            }
        }
    }

    #[test]
    fn cyclic_queries_keep_natural_order() {
        let q = CatalogQuery::TwoLollipop.query();
        let gao = select_gao(&q);
        assert_eq!(gao, (0..q.num_vars()).collect::<Vec<_>>());
    }

    #[test]
    fn atom_perm_follows_gao() {
        // Triangle with GAO B, A, C: R(A,B) indexed as (B,A), S(B,C) as (B,C), T(A,C) as (A,C).
        let q = QueryBuilder::new("triangle")
            .atom("r", &["a", "b"])
            .atom("s", &["b", "c"])
            .atom("t", &["a", "c"])
            .build();
        let (a, b, c) = (q.var("a").unwrap(), q.var("b").unwrap(), q.var("c").unwrap());
        let gao = vec![b, a, c];
        assert_eq!(atom_index_perm(&q.atoms[0], &gao), vec![1, 0]);
        assert_eq!(atom_index_perm(&q.atoms[1], &gao), vec![0, 1]);
        assert_eq!(atom_index_perm(&q.atoms[2], &gao), vec![0, 1]);
        assert_eq!(atom_gao_vars(&q.atoms[0], &gao), vec![b, a]);
    }

    #[test]
    fn skeleton_of_acyclic_query_is_everything() {
        let q = CatalogQuery::FourPath.query();
        assert!(acyclic_skeleton(&q).iter().all(|&x| x));
    }

    #[test]
    fn skeleton_of_triangle_drops_one_edge() {
        let q = CatalogQuery::ThreeClique.query();
        let skel = acyclic_skeleton(&q);
        assert_eq!(skel.iter().filter(|&&x| x).count(), 2);
        // The skeleton must itself be a forest.
        let kept = q
            .atoms
            .iter()
            .zip(&skel)
            .filter(|(_, &k)| k)
            .map(|(a, _)| a.clone())
            .collect::<Vec<_>>();
        let sub = Query {
            name: "skel".into(),
            var_names: q.var_names.clone(),
            atoms: kept,
            filters: vec![],
        };
        assert_eq!(Hypergraph::of_query(&sub).is_graph_forest(), Some(true));
    }

    #[test]
    fn skeleton_of_lollipop_keeps_path_and_spanning_tree_of_clique() {
        let q = CatalogQuery::TwoLollipop.query();
        let skel = acyclic_skeleton(&q);
        // v1(a), edge(a,b), edge(b,c), edge(c,d), edge(d,e) are kept; edge(c,e) closes
        // the triangle and is dropped.
        assert_eq!(skel, vec![true, true, true, true, true, false]);
    }
}
