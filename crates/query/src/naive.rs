//! A naive reference join: backtracking search over atoms.
//!
//! This enumerator exists so that every real engine in the workspace (LeapFrog
//! TrieJoin, Minesweeper, the pairwise baselines) can be checked against an obviously
//! correct implementation on small instances, both in unit tests and in the
//! property-based tests. It is intentionally simple and makes no performance claims.

use crate::bind::Instance;
use crate::query::{Query, VarId};
use gj_storage::{Tuple, Val};

/// Enumerates the join result of `query` over `instance`, returning bindings indexed
/// by [`VarId`] in sorted order. Panics if a referenced relation is missing or has
/// the wrong arity (the reference engine is only used on well-formed test inputs).
pub fn naive_join(instance: &Instance, query: &Query) -> Vec<Tuple> {
    let n = query.num_vars();
    let mut binding: Vec<Option<Val>> = vec![None; n];
    let mut out = Vec::new();

    // Order atoms so that atoms sharing variables with earlier ones come early; plain
    // query order is fine for the benchmark queries, which are connected.
    fn recurse(
        instance: &Instance,
        query: &Query,
        atom_idx: usize,
        binding: &mut Vec<Option<Val>>,
        out: &mut Vec<Tuple>,
    ) {
        if atom_idx == query.num_atoms() {
            let full: Vec<Val> = binding.iter().map(|b| b.expect("all variables bound")).collect();
            if query.filters_satisfied(&full) {
                out.push(full);
            }
            return;
        }
        let atom = &query.atoms[atom_idx];
        let relation = instance
            .relation(&atom.relation)
            .unwrap_or_else(|| panic!("relation {} missing", atom.relation));
        assert_eq!(relation.arity(), atom.arity(), "arity mismatch for {}", atom.relation);
        for row in relation.iter() {
            let mut newly_bound: Vec<VarId> = Vec::new();
            let mut ok = true;
            for (col, &var) in atom.vars.iter().enumerate() {
                match binding[var] {
                    Some(v) if v == row[col] => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                    None => {
                        binding[var] = Some(row[col]);
                        newly_bound.push(var);
                    }
                }
            }
            if ok {
                recurse(instance, query, atom_idx + 1, binding, out);
            }
            for var in newly_bound {
                binding[var] = None;
            }
        }
    }

    // A variable bound by no atom would make the result ill-defined; the query
    // validator prevents it for catalog queries, and we assert it here for safety.
    for v in 0..n {
        assert!(
            query.atoms.iter().any(|a| a.contains(v)),
            "variable {} is not bound by any atom",
            query.var_names[v]
        );
    }
    recurse(instance, query, 0, &mut binding, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

/// Counts the join result of `query` over `instance`.
pub fn naive_count(instance: &Instance, query: &Query) -> u64 {
    naive_join(instance, query).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogQuery;
    use crate::query::QueryBuilder;
    use gj_storage::{Graph, Relation};

    fn triangle_instance() -> Instance {
        // Two triangles sharing edge (1,2): {0,1,2} and {1,2,3}, plus a dangling edge.
        let g = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst
    }

    #[test]
    fn counts_triangles_once_each() {
        let inst = triangle_instance();
        let q = CatalogQuery::ThreeClique.query();
        assert_eq!(naive_count(&inst, &q), 2);
    }

    #[test]
    fn enumerates_ordered_triangles() {
        let inst = triangle_instance();
        let q = CatalogQuery::ThreeClique.query();
        let rows = naive_join(&inst, &q);
        assert_eq!(rows, vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn respects_unary_sample_relations() {
        let mut inst = triangle_instance();
        inst.add_relation("v1", Relation::from_values(vec![0]));
        inst.add_relation("v2", Relation::from_values(vec![3]));
        let q = CatalogQuery::ThreePath.query();
        let rows = naive_join(&inst, &q);
        // Paths of length 3 from 0 to 3.
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r[0], 0);
            assert_eq!(r[3], 3);
        }
    }

    #[test]
    fn empty_relation_gives_empty_result() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::empty(2));
        let q = CatalogQuery::ThreeClique.query();
        assert_eq!(naive_count(&inst, &q), 0);
    }

    #[test]
    fn repeated_variable_across_atoms_joins_correctly() {
        let mut inst = Instance::new();
        inst.add_relation("r", Relation::from_pairs(vec![(1, 2), (2, 3)]));
        inst.add_relation("s", Relation::from_pairs(vec![(2, 5), (3, 7), (3, 9)]));
        let q = QueryBuilder::new("rs").atom("r", &["a", "b"]).atom("s", &["b", "c"]).build();
        let rows = naive_join(&inst, &q);
        assert_eq!(rows, vec![vec![1, 2, 5], vec![2, 3, 7], vec![2, 3, 9]]);
    }
}
