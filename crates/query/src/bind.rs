//! Instances and GAO-bound queries.
//!
//! An [`Instance`] is a named catalog of relations (the database). A [`BoundQuery`]
//! pairs a [`Query`] with a global attribute order and one GAO-consistent trie index
//! per atom — the exact input shape both LeapFrog TrieJoin and Minesweeper expect
//! (Section 4.1: the *GAO-consistency assumption*). Indexes are shared through
//! [`Arc`] and cached per `(relation, permutation)`, so a query like 4-clique that
//! mentions `edge` six times builds at most a handful of physical indexes.
//!
//! Binding can run against a caller-owned [`IndexCache`]
//! ([`BoundQuery::with_cache`]), in which case indexes built for one query are
//! reused by every later binding over the same relations — the backbone of the
//! prepared-query API in `gj-core` — and cache misses are built in parallel.

use crate::cache::IndexCache;
use crate::gao::{atom_gao_vars, atom_index_perm, select_gao};
use crate::query::{Query, VarId};
use gj_storage::{Relation, TrieIndex, Val};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A loader that materializes a relation on first access (e.g. reading a
/// `gj-store` extent through its buffer pool). Infallible by signature: loaders
/// that can fail report through a panic, which the prepare path catches at its
/// `catch_unwind` boundary and surfaces as a typed `WorkerPanicked` error.
pub type RelationLoader = Arc<dyn Fn() -> Relation + Send + Sync>;

/// One catalog slot: a resident relation, or a lazily hydrated one.
///
/// Hydration happens at most once per slot (enforced by `OnceLock`) and is
/// thread-safe, so a shared instance can be queried concurrently while slots
/// fill in. Cloning an unhydrated lazy slot clones the *loader* (both clones
/// hydrate independently); cloning a hydrated slot clones the relation.
enum Slot {
    Resident(Relation),
    Lazy { cell: OnceLock<Relation>, load: RelationLoader },
}

impl Slot {
    fn get(&self) -> &Relation {
        match self {
            Slot::Resident(r) => r,
            Slot::Lazy { cell, load } => cell.get_or_init(|| load()),
        }
    }

    fn is_resident(&self) -> bool {
        match self {
            Slot::Resident(_) => true,
            Slot::Lazy { cell, .. } => cell.get().is_some(),
        }
    }
}

impl Clone for Slot {
    fn clone(&self) -> Self {
        match self {
            Slot::Resident(r) => Slot::Resident(r.clone()),
            Slot::Lazy { cell, load } => match cell.get() {
                Some(r) => Slot::Resident(r.clone()),
                None => Slot::Lazy { cell: OnceLock::new(), load: Arc::clone(load) },
            },
        }
    }
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Resident(r) => f.debug_tuple("Resident").field(r).finish(),
            Slot::Lazy { cell, .. } => match cell.get() {
                Some(r) => f.debug_tuple("Lazy(hydrated)").field(r).finish(),
                None => f.write_str("Lazy(unhydrated)"),
            },
        }
    }
}

/// A database instance: a set of named relations.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    relations: BTreeMap<String, Slot>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Adds (or replaces) a relation under `name`.
    pub fn add_relation(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), Slot::Resident(relation));
    }

    /// Adds (or replaces) a relation under `name` whose contents are produced
    /// by `load` on first access (see [`RelationLoader`]). Until then the slot
    /// holds no data, so opening a large disk-backed catalog stays cheap.
    pub fn add_lazy_relation(&mut self, name: impl Into<String>, load: RelationLoader) {
        self.relations.insert(name.into(), Slot::Lazy { cell: OnceLock::new(), load });
    }

    /// Looks up a relation by name, hydrating a lazy slot on first access.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(Slot::get)
    }

    /// Whether `name`'s slot currently holds materialized data — `false` only
    /// for a lazy slot that has never been accessed. (Observability for tests
    /// and tools; never affects query results.)
    pub fn is_resident(&self, name: &str) -> bool {
        self.relations.get(name).is_some_and(Slot::is_resident)
    }

    /// Resolves the relation an atom refers to, checking existence and arity — the
    /// per-atom half of binding, shared by every engine's prepare path.
    pub fn atom_relation(&self, atom: &crate::query::Atom) -> Result<&Relation, String> {
        let relation = self
            .relation(&atom.relation)
            .ok_or_else(|| format!("relation {} not found in the instance", atom.relation))?;
        if relation.arity() != atom.arity() {
            return Err(format!(
                "relation {} has arity {} but the atom uses {} variables",
                atom.relation,
                relation.arity(),
                atom.arity()
            ));
        }
        Ok(relation)
    }

    /// Checks that `query` can be bound against this instance: the query itself is
    /// valid and every atom's relation exists with the right arity. This is exactly
    /// the validation [`BoundQuery::with_cache`] performs, without building indexes
    /// — used by engines that read relations directly (the pairwise baselines).
    pub fn validate_query(&self, query: &Query) -> Result<(), String> {
        query.validate()?;
        for atom in &query.atoms {
            self.atom_relation(atom)?;
        }
        Ok(())
    }

    /// The names of all stored relations.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total number of tuples across all relations (hydrates every lazy slot).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|s| s.get().len()).sum()
    }
}

/// One atom of a [`BoundQuery`]: the atom's variables in GAO order and the trie index
/// whose level `d` corresponds to `vars[d]`.
#[derive(Debug, Clone)]
pub struct BoundAtom {
    /// Index of the atom in the original [`Query::atoms`].
    pub atom_idx: usize,
    /// The atom's variables reordered by GAO position.
    pub vars: Vec<VarId>,
    /// GAO-consistent trie index over the atom's relation.
    pub index: Arc<TrieIndex>,
}

/// A query bound to an instance: GAO, per-atom GAO-consistent indexes, and filter
/// bookkeeping shared by every engine in this workspace.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The query being evaluated.
    pub query: Query,
    /// The global attribute order (a permutation of all `VarId`s).
    pub gao: Vec<VarId>,
    /// Position of each variable in the GAO (`var_pos[v]` is the GAO index of `v`).
    pub var_pos: Vec<usize>,
    /// One bound atom per query atom, in the query's atom order.
    pub atoms: Vec<BoundAtom>,
}

/// What binding against an [`IndexCache`] actually had to do: how many indexes were
/// missing from the cache (and therefore built), and how many worker threads the
/// builds were sharded across. A warm cache reports `indexes_built == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BindReport {
    /// Number of trie indexes built during this binding (cache misses).
    pub indexes_built: usize,
    /// Number of worker threads the missing builds were sharded across.
    pub build_threads: usize,
}

impl BoundQuery {
    /// Binds `query` against `instance` under the given GAO (or the GAO chosen by
    /// [`select_gao`] when `gao` is `None`), building every index into a private
    /// single-threaded cache.
    ///
    /// Fails if a referenced relation is missing or has the wrong arity, or if the
    /// GAO is not a permutation of the query's variables.
    pub fn new(
        instance: &Instance,
        query: &Query,
        gao: Option<Vec<VarId>>,
    ) -> Result<Self, String> {
        let cache = IndexCache::new();
        Ok(Self::with_cache(instance, query, gao, &cache, 1)?.0)
    }

    /// Binds `query` against `instance`, taking every trie index from `cache` and
    /// building the misses — sharded across up to `threads` worker threads, since
    /// each `sorted_row_order` + trie construction is independent of the others.
    ///
    /// This is the workhorse of the prepared-query API: with a database-level cache
    /// the first preparation pays for the index builds and every later preparation
    /// over the same relations reports `indexes_built == 0`.
    pub fn with_cache(
        instance: &Instance,
        query: &Query,
        gao: Option<Vec<VarId>>,
        cache: &IndexCache,
        threads: usize,
    ) -> Result<(Self, BindReport), String> {
        query.validate()?;
        let gao = gao.unwrap_or_else(|| select_gao(query));
        if gao.len() != query.num_vars() {
            return Err(format!(
                "GAO has {} entries but the query has {} variables",
                gao.len(),
                query.num_vars()
            ));
        }
        let mut var_pos = vec![usize::MAX; query.num_vars()];
        for (i, &v) in gao.iter().enumerate() {
            if v >= query.num_vars() || var_pos[v] != usize::MAX {
                return Err("GAO is not a permutation of the query variables".to_string());
            }
            var_pos[v] = i;
        }

        // Resolve every atom's relation and index permutation first, so the cache
        // misses can be built in one parallel batch before the atoms are assembled.
        let mut jobs: Vec<(&str, &Relation, Vec<usize>)> = Vec::with_capacity(query.num_atoms());
        for atom in &query.atoms {
            let relation = instance.atom_relation(atom)?;
            jobs.push((atom.relation.as_str(), relation, atom_index_perm(atom, &gao)));
        }
        let (indexes_built, build_threads) = cache.build_all(&jobs, threads);

        let mut atoms = Vec::with_capacity(query.num_atoms());
        for (atom_idx, (atom, (name, _, perm))) in query.atoms.iter().zip(&jobs).enumerate() {
            let index = cache
                .get(name, perm)
                .expect("build_all guarantees an index for every requested job");
            atoms.push(BoundAtom { atom_idx, vars: atom_gao_vars(atom, &gao), index });
        }
        let bq = BoundQuery { query: query.clone(), gao, var_pos, atoms };
        Ok((bq, BindReport { indexes_built, build_threads }))
    }

    /// Number of query variables.
    pub fn num_vars(&self) -> usize {
        self.gao.len()
    }

    /// Converts a binding indexed by GAO position into one indexed by `VarId`.
    pub fn binding_to_var_order(&self, gao_binding: &[Val]) -> Vec<Val> {
        let mut out = vec![0; gao_binding.len()];
        for (pos, &v) in self.gao.iter().enumerate() {
            out[v] = gao_binding[pos];
        }
        out
    }

    /// The atoms (by position in `self.atoms`) that contain the variable at GAO
    /// position `pos`.
    pub fn atoms_at_gao_pos(&self, pos: usize) -> Vec<usize> {
        let var = self.gao[pos];
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, ba)| ba.vars.contains(&var))
            .map(|(i, _)| i)
            .collect()
    }

    /// For each GAO position, the filters `(x, y)` (meaning `x < y`) of the query
    /// where this position holds the *later* of the two variables in the GAO; stored
    /// as `(other_gao_pos, other_is_smaller)` pairs so engines can check a filter as
    /// soon as both sides are bound.
    pub fn filters_by_gao_pos(&self) -> Vec<Vec<(usize, bool)>> {
        let mut per_pos: Vec<Vec<(usize, bool)>> = vec![Vec::new(); self.num_vars()];
        for &(x, y) in &self.query.filters {
            let (px, py) = (self.var_pos[x], self.var_pos[y]);
            if px < py {
                // y is bound later: when binding y, require binding[px] < value.
                per_pos[py].push((px, true));
            } else {
                // x is bound later: when binding x, require value < binding[py].
                per_pos[px].push((py, false));
            }
        }
        per_pos
    }

    /// Sizes of the atoms' relations, in atom order (for AGM-bound computations).
    pub fn atom_sizes(&self) -> Vec<u64> {
        self.atoms.iter().map(|a| a.index.num_rows() as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogQuery;
    use gj_storage::Graph;

    fn small_instance() -> Instance {
        let g = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values(vec![0, 1, 2, 3, 4]));
        inst.add_relation("v2", Relation::from_values(vec![0, 1, 2, 3, 4]));
        inst
    }

    #[test]
    fn lazy_slots_hydrate_once_on_first_access() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let mut inst = Instance::new();
        let counter = Arc::clone(&calls);
        inst.add_lazy_relation(
            "u",
            Arc::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                Relation::from_values(vec![1, 2, 3])
            }),
        );
        assert!(!inst.is_resident("u"), "untouched lazy slot holds no data");
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert_eq!(inst.relation("u").unwrap().len(), 3);
        assert_eq!(inst.relation("u").unwrap().len(), 3);
        assert!(inst.is_resident("u"));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "loader ran exactly once");
        // A clone of the unhydrated slot re-runs the loader; a clone of the
        // hydrated slot does not.
        let clone = inst.clone();
        assert_eq!(clone.relation("u").unwrap().len(), 3);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lazy_slots_bind_like_resident_ones() {
        let g = Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let edge = g.edge_relation();
        let mut inst = Instance::new();
        let source = edge.clone();
        inst.add_lazy_relation("edge", Arc::new(move || source.clone()));
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(bq.atoms.len(), 3);
        assert!(inst.is_resident("edge"), "binding hydrated the slot");
    }

    #[test]
    fn binding_caches_indexes_per_relation_and_perm() {
        let inst = small_instance();
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        // All three edge atoms are indexed in natural order under GAO a,b,c, so they
        // share one physical index.
        assert!(Arc::ptr_eq(&bq.atoms[0].index, &bq.atoms[1].index));
        assert!(Arc::ptr_eq(&bq.atoms[0].index, &bq.atoms[2].index));
    }

    #[test]
    fn with_cache_reuses_indexes_across_bindings() {
        let inst = small_instance();
        let cache = IndexCache::new();
        let q = CatalogQuery::FourClique.query();
        let (cold, cold_report) = BoundQuery::with_cache(&inst, &q, None, &cache, 2).unwrap();
        assert!(cold_report.indexes_built > 0);
        let (warm, warm_report) = BoundQuery::with_cache(&inst, &q, None, &cache, 2).unwrap();
        assert_eq!(warm_report.indexes_built, 0, "second binding must be fully warm");
        for (a, b) in cold.atoms.iter().zip(&warm.atoms) {
            assert!(Arc::ptr_eq(&a.index, &b.index), "warm binding must share physical indexes");
        }
        // A different query over the same relation in the same column orders is warm
        // too.
        let (_, report) =
            BoundQuery::with_cache(&inst, &CatalogQuery::ThreeClique.query(), None, &cache, 2)
                .unwrap();
        assert_eq!(report.indexes_built, 0);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let inst = Instance::new();
        let q = CatalogQuery::ThreeClique.query();
        assert!(BoundQuery::new(&inst, &q, None).is_err());
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::from_values(vec![1, 2, 3]));
        let q = CatalogQuery::ThreeClique.query();
        assert!(BoundQuery::new(&inst, &q, None).is_err());
    }

    #[test]
    fn invalid_gao_is_an_error() {
        let inst = small_instance();
        let q = CatalogQuery::ThreeClique.query();
        assert!(BoundQuery::new(&inst, &q, Some(vec![0, 0, 1])).is_err());
        assert!(BoundQuery::new(&inst, &q, Some(vec![0, 1])).is_err());
    }

    #[test]
    fn binding_conversion_roundtrips() {
        let inst = small_instance();
        let q = CatalogQuery::ThreePath.query();
        // Force a non-trivial GAO: d, c, b, a.
        let gao = vec![3, 2, 1, 0];
        let bq = BoundQuery::new(&inst, &q, Some(gao)).unwrap();
        let gao_binding = vec![40, 30, 20, 10]; // d=40, c=30, b=20, a=10
        assert_eq!(bq.binding_to_var_order(&gao_binding), vec![10, 20, 30, 40]);
    }

    #[test]
    fn filters_by_gao_pos_split_correctly() {
        let inst = small_instance();
        let q = CatalogQuery::ThreeClique.query(); // a<b, b<c with natural GAO
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let per_pos = bq.filters_by_gao_pos();
        assert!(per_pos[0].is_empty());
        assert_eq!(per_pos[1], vec![(0, true)]);
        assert_eq!(per_pos[2], vec![(1, true)]);
        // Reversed GAO c,b,a: both filters now have their *first* variable later.
        let bq = BoundQuery::new(&inst, &q, Some(vec![2, 1, 0])).unwrap();
        let per_pos = bq.filters_by_gao_pos();
        assert_eq!(per_pos[1], vec![(0, false)]); // binding b requires b < c
        assert_eq!(per_pos[2], vec![(1, false)]); // binding a requires a < b
    }

    #[test]
    fn atoms_at_gao_pos_matches_membership() {
        let inst = small_instance();
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        // Whatever GAO was selected, the atoms reported for position `p` must be
        // exactly the atoms that mention the variable `gao[p]`.
        for pos in 0..bq.num_vars() {
            let var = bq.gao[pos];
            let expected: Vec<usize> = q
                .atoms
                .iter()
                .enumerate()
                .filter(|(_, a)| a.contains(var))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(bq.atoms_at_gao_pos(pos), expected);
        }
    }
}
