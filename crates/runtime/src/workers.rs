//! Panic-isolated scoped worker threads.
//!
//! The workspace lint gate (`no-direct-thread-spawn-outside-runtime`) funnels
//! every thread spawn through this crate so panic isolation is never skipped by
//! accident. [`scoped_workers`] is the general-purpose entry point for callers
//! outside the morsel driver — e.g. `gj-bench`'s concurrent-session load
//! generator: it runs a closure on `n` scoped threads, catches panics at each
//! worker boundary, and returns one typed result per worker.

use crate::exec::{panic_payload, ExecError};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f(worker_index)` on `threads` scoped OS threads and joins them all.
///
/// Each worker's panic (if any) is caught at the thread boundary and surfaced
/// as [`ExecError::WorkerPanicked`] in that worker's slot — one worker blowing
/// up never takes down the caller or the other workers. `threads` is clamped
/// to ≥ 1; results are indexed by worker.
pub fn scoped_workers<T, F>(threads: usize, f: F) -> Vec<Result<T, ExecError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    let mut results: Vec<Result<T, ExecError>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|i| scope.spawn(move || catch_unwind(AssertUnwindSafe(|| f(i)))))
            .collect();
        for handle in handles {
            let joined = match handle.join() {
                Ok(caught) => caught,
                Err(payload) => Err(payload),
            };
            results.push(
                joined.map_err(|payload| ExecError::WorkerPanicked {
                    payload: panic_payload(payload),
                }),
            );
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_worker() {
        let results = scoped_workers(4, |i| i * 10);
        let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, [0, 10, 20, 30]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(scoped_workers(0, |i| i).len(), 1);
    }

    #[test]
    fn one_panicking_worker_does_not_poison_the_rest() {
        let results = scoped_workers(3, |i| {
            assert!(i != 1, "worker 1 blows up");
            i
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[2], Ok(2));
        match &results[1] {
            Err(ExecError::WorkerPanicked { payload }) => {
                assert!(payload.contains("worker 1 blows up"), "{payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}
