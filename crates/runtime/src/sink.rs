//! The unified execution sink protocol.
//!
//! Every engine behind `PreparedQuery::run` (in `gj-core`) pushes its output rows —
//! re-ordered into **variable-id order** — into a [`Sink`]. The sink answers with
//! [`ControlFlow`]: `Continue` to keep the search going, `Break` to terminate it
//! early. LFTJ and Minesweeper propagate the break through their search loops
//! immediately (no further binding is explored, no further free tuple is probed);
//! the pairwise baselines stop emitting from their streamed final join.
//!
//! The concrete sinks here give every engine the same derived operations for free:
//! [`CountSink`] (count rows), [`CollectSink`] (materialise all rows), [`FirstK`]
//! (the first `k` rows in emission order) and [`ExistsSink`] (stop at the first
//! row). Closures `FnMut(&[Val]) -> ControlFlow<()>` are sinks too. All four also
//! implement [`ParallelSink`](crate::ParallelSink), so the same sink value can be
//! driven serially or through the morsel runtime.
//!
//! ```
//! use gj_runtime::{FirstK, Sink};
//!
//! let mut first = FirstK::new(2);
//! for row in [[0, 1, 2], [1, 2, 3], [2, 3, 4]] {
//!     if first.push(&row).is_break() {
//!         break;
//!     }
//! }
//! assert_eq!(first.into_rows(), vec![vec![0, 1, 2], vec![1, 2, 3]]);
//! ```

use gj_storage::Val;
use std::ops::ControlFlow;

/// A consumer of query output rows (bindings in variable-id order).
///
/// Engines call [`push`](Sink::push) once per output row and stop the search as
/// soon as it answers [`ControlFlow::Break`] — early termination is part of the
/// protocol, not an afterthought. Implement it to stream rows anywhere (and wrap
/// the sink in [`Ordered`](crate::Ordered) to use it under parallel execution):
///
/// ```
/// use gj_runtime::{Sink, Val};
/// use std::ops::ControlFlow;
///
/// /// Sums the first column, giving up once the sum passes a cap.
/// struct CappedSum {
///     sum: Val,
///     cap: Val,
/// }
///
/// impl Sink for CappedSum {
///     fn push(&mut self, row: &[Val]) -> ControlFlow<()> {
///         self.sum += row[0];
///         if self.sum >= self.cap {
///             ControlFlow::Break(())
///         } else {
///             ControlFlow::Continue(())
///         }
///     }
/// }
///
/// let mut sink = CappedSum { sum: 0, cap: 9 };
/// let rows: &[&[Val]] = &[&[4, 0], &[5, 1], &[6, 2]];
/// let mut delivered = 0;
/// for row in rows {
///     delivered += 1;
///     if sink.push(row).is_break() {
///         break;
///     }
/// }
/// assert_eq!((delivered, sink.sum), (2, 9), "the third row is never visited");
/// ```
pub trait Sink {
    /// Receives one output row; return [`ControlFlow::Break`] to stop the execution.
    fn push(&mut self, binding: &[Val]) -> ControlFlow<()>;
}

/// Any `FnMut(&[Val]) -> ControlFlow<()>` closure is a sink.
impl<F: FnMut(&[Val]) -> ControlFlow<()>> Sink for F {
    fn push(&mut self, binding: &[Val]) -> ControlFlow<()> {
        self(binding)
    }
}

/// Counts the rows pushed into it.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink {
    pub(crate) rows: u64,
}

impl CountSink {
    /// Creates a sink with a zero count.
    pub fn new() -> Self {
        CountSink::default()
    }

    /// Number of rows received so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

impl Sink for CountSink {
    fn push(&mut self, _binding: &[Val]) -> ControlFlow<()> {
        self.rows += 1;
        ControlFlow::Continue(())
    }
}

/// Materialises every pushed row, in the engine's emission order.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    rows: Vec<Vec<Val>>,
}

impl CollectSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The rows received so far.
    pub fn rows(&self) -> &[Vec<Val>] {
        &self.rows
    }

    /// Consumes the sink, returning the rows.
    pub fn into_rows(self) -> Vec<Vec<Val>> {
        self.rows
    }
}

impl Sink for CollectSink {
    fn push(&mut self, binding: &[Val]) -> ControlFlow<()> {
        self.rows.push(binding.to_vec());
        ControlFlow::Continue(())
    }
}

/// Keeps the first `limit` rows (in the engine's emission order) and then stops the
/// execution.
#[derive(Debug, Clone, Default)]
pub struct FirstK {
    pub(crate) limit: usize,
    rows: Vec<Vec<Val>>,
}

impl FirstK {
    /// Creates a sink that stops after `limit` rows.
    pub fn new(limit: usize) -> Self {
        FirstK { limit, rows: Vec::new() }
    }

    /// The rows received so far.
    pub fn rows(&self) -> &[Vec<Val>] {
        &self.rows
    }

    /// Consumes the sink, returning the rows.
    pub fn into_rows(self) -> Vec<Vec<Val>> {
        self.rows
    }
}

impl Sink for FirstK {
    fn push(&mut self, binding: &[Val]) -> ControlFlow<()> {
        if self.rows.len() < self.limit {
            self.rows.push(binding.to_vec());
        }
        if self.rows.len() < self.limit {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    }
}

/// Stops the execution at the very first row.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExistsSink {
    pub(crate) found: bool,
}

impl ExistsSink {
    /// Creates a sink that has seen nothing yet.
    pub fn new() -> Self {
        ExistsSink::default()
    }

    /// Whether at least one row was pushed.
    pub fn found(&self) -> bool {
        self.found
    }
}

impl Sink for ExistsSink {
    fn push(&mut self, _binding: &[Val]) -> ControlFlow<()> {
        self.found = true;
        ControlFlow::Break(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut impl Sink, rows: &[&[Val]]) -> usize {
        let mut delivered = 0;
        for row in rows {
            delivered += 1;
            if sink.push(row).is_break() {
                break;
            }
        }
        delivered
    }

    #[test]
    fn count_sink_counts_everything() {
        let mut sink = CountSink::new();
        assert_eq!(feed(&mut sink, &[&[1], &[2], &[3]]), 3);
        assert_eq!(sink.rows(), 3);
    }

    #[test]
    fn collect_sink_keeps_emission_order() {
        let mut sink = CollectSink::new();
        feed(&mut sink, &[&[2, 1], &[1, 2]]);
        assert_eq!(sink.rows(), &[vec![2, 1], vec![1, 2]]);
    }

    #[test]
    fn first_k_stops_exactly_at_the_limit() {
        let mut sink = FirstK::new(2);
        assert_eq!(feed(&mut sink, &[&[1], &[2], &[3]]), 2);
        assert_eq!(sink.into_rows(), vec![vec![1], vec![2]]);
        // A zero limit never accepts anything.
        let mut zero = FirstK::new(0);
        assert_eq!(feed(&mut zero, &[&[1]]), 1);
        assert!(zero.rows().is_empty());
    }

    #[test]
    fn exists_sink_breaks_immediately() {
        let mut sink = ExistsSink::new();
        assert!(!sink.found());
        assert_eq!(feed(&mut sink, &[&[1], &[2]]), 1);
        assert!(sink.found());
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = Vec::new();
        let mut sink = |b: &[Val]| {
            seen.push(b.to_vec());
            ControlFlow::Continue(())
        };
        feed(&mut sink, &[&[7]]);
        assert_eq!(seen, vec![vec![7]]);
    }
}
