//! The shard-and-merge layer over the [`Sink`] protocol.
//!
//! Parallel execution cannot push rows from many workers into one `&mut` sink, so a
//! [`ParallelSink`] splits the work in two: each morsel gets a private
//! [`ShardSink`] that a single worker fills without any synchronisation, and the
//! driver *absorbs* completed shards back into the sink **in morsel order**. Because
//! morsels tile the first GAO attribute in increasing order and engines emit each
//! morsel in their serial order, the absorbed row stream is identical to the serial
//! emission — `par_collect` returns exactly what `collect` returns, and `first_k`
//! under parallel execution is still the serial prefix.
//!
//! Early termination propagates in both directions:
//!
//! * a shard answering `Break` stops its own morsel (e.g. a `first_k` shard that
//!   already holds `k` rows — no morsel ever needs more);
//! * [`ParallelSink::absorb`] answering `Break` (the merged prefix satisfied the
//!   sink) trips the queue's stop flag via the driver, so unclaimed morsels are
//!   never run;
//! * a shard reporting [`wants_global_stop`](ShardSink::wants_global_stop) stops
//!   every worker immediately — `exists` needs *any* row, not the first one, so it
//!   must not wait for the morsel-order merge.
//!
//! [`CountSink`] additionally opts into the counting fast path
//! ([`ParallelSink::COUNT_ONLY`]): the driver asks the engine for per-morsel counts
//! ([`MorselSource::count_morsel`](crate::MorselSource)) and no row is ever
//! materialised. Arbitrary user sinks run in parallel through [`Ordered`], which
//! buffers each morsel's rows and replays them in serial order.

use crate::sink::{CollectSink, CountSink, ExistsSink, FirstK, Sink};
use gj_storage::Val;
use std::ops::ControlFlow;

/// A sink that can be driven by the parallel morsel runtime.
///
/// The driver calls [`shard`](Self::shard) once per morsel up front, hands each
/// shard to the worker that claims the morsel, and then [`absorb`](Self::absorb)s
/// completed shards in morsel order (never skipping one, never out of order).
pub trait ParallelSink: Sink + Send {
    /// Per-morsel accumulator, filled by exactly one worker at a time.
    type Shard: ShardSink;

    /// When `true`, the driver skips row emission entirely and feeds the engine's
    /// per-morsel counts to [`ShardSink::push_count`] instead — the zero
    /// materialisation path for counting sinks.
    const COUNT_ONLY: bool = false;

    /// Creates an empty shard for one morsel.
    fn shard(&self) -> Self::Shard;

    /// Merges one completed shard (in morsel order). Returns the number of rows
    /// delivered into the sink and whether the sink is satisfied
    /// ([`ControlFlow::Break`] stops the whole parallel run).
    fn absorb(&mut self, shard: Self::Shard) -> (u64, ControlFlow<()>);
}

/// The per-morsel half of a [`ParallelSink`]: a single-owner row accumulator.
pub trait ShardSink: Send {
    /// Receives one output row of the morsel; `Break` stops this morsel only.
    fn push(&mut self, row: &[Val]) -> ControlFlow<()>;

    /// Receives a whole morsel's output count at once (counting fast path; only
    /// called when the owning sink sets [`ParallelSink::COUNT_ONLY`]).
    fn push_count(&mut self, _rows: u64) {
        // gj-lint: allow(no-panic-in-engines) — protocol guard: COUNT_ONLY sinks must override; silently dropping counts would corrupt results
        unreachable!("push_count is only driven for COUNT_ONLY parallel sinks");
    }

    /// Whether every other worker should stop too, before the ordered merge reaches
    /// this shard (`exists`-style sinks: any row anywhere answers the query).
    fn wants_global_stop(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------------

/// Shard of [`CountSink`]: a plain counter.
#[derive(Debug, Default)]
pub struct CountShard {
    rows: u64,
}

impl ShardSink for CountShard {
    fn push(&mut self, _row: &[Val]) -> ControlFlow<()> {
        self.rows += 1;
        ControlFlow::Continue(())
    }

    fn push_count(&mut self, rows: u64) {
        self.rows += rows;
    }
}

/// Shard of the row-delivering sinks: rows stored in one flat buffer (no per-row
/// allocation on the worker side), optionally capped at `limit` rows.
#[derive(Debug)]
pub struct RowShard {
    buf: Vec<Val>,
    width: usize,
    rows: usize,
    limit: usize,
}

impl RowShard {
    /// A shard that accepts every row of its morsel.
    pub fn unbounded() -> Self {
        RowShard { buf: Vec::new(), width: 0, rows: 0, limit: usize::MAX }
    }

    /// A shard that stops its morsel after `limit` rows — a morsel can never
    /// contribute more than `limit` rows to a `first_k(limit)` answer.
    pub fn capped(limit: usize) -> Self {
        RowShard { buf: Vec::new(), width: 0, rows: 0, limit }
    }

    /// The buffered rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Val]> {
        // `width` is 0 only while no row was pushed; chunks_exact(0) would panic.
        self.buf.chunks_exact(self.width.max(1)).take(self.rows)
    }
}

impl ShardSink for RowShard {
    fn push(&mut self, row: &[Val]) -> ControlFlow<()> {
        if self.rows < self.limit {
            debug_assert!(self.width == 0 || self.width == row.len());
            self.width = row.len();
            self.buf.extend_from_slice(row);
            self.rows += 1;
        }
        if self.rows < self.limit {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    }
}

/// Shard of [`ExistsSink`]: one bit, with the global-stop hint set as soon as any
/// row is seen.
#[derive(Debug, Default)]
pub struct ExistsShard {
    found: bool,
}

impl ShardSink for ExistsShard {
    fn push(&mut self, _row: &[Val]) -> ControlFlow<()> {
        self.found = true;
        ControlFlow::Break(())
    }

    fn wants_global_stop(&self) -> bool {
        self.found
    }
}

// ---------------------------------------------------------------------------------
// ParallelSink implementations
// ---------------------------------------------------------------------------------

impl ParallelSink for CountSink {
    type Shard = CountShard;
    const COUNT_ONLY: bool = true;

    fn shard(&self) -> CountShard {
        CountShard::default()
    }

    fn absorb(&mut self, shard: CountShard) -> (u64, ControlFlow<()>) {
        self.rows += shard.rows;
        (shard.rows, ControlFlow::Continue(()))
    }
}

/// Replays a shard's buffered rows into a serial sink, stopping at the sink's break.
fn replay(sink: &mut impl Sink, shard: &RowShard) -> (u64, ControlFlow<()>) {
    let mut delivered = 0;
    for row in shard.iter() {
        delivered += 1;
        if sink.push(row).is_break() {
            return (delivered, ControlFlow::Break(()));
        }
    }
    (delivered, ControlFlow::Continue(()))
}

impl ParallelSink for CollectSink {
    type Shard = RowShard;

    fn shard(&self) -> RowShard {
        RowShard::unbounded()
    }

    fn absorb(&mut self, shard: RowShard) -> (u64, ControlFlow<()>) {
        replay(self, &shard)
    }
}

impl ParallelSink for FirstK {
    type Shard = RowShard;

    fn shard(&self) -> RowShard {
        RowShard::capped(self.limit)
    }

    fn absorb(&mut self, shard: RowShard) -> (u64, ControlFlow<()>) {
        replay(self, &shard)
    }
}

impl ParallelSink for ExistsSink {
    type Shard = ExistsShard;

    fn shard(&self) -> ExistsShard {
        ExistsShard::default()
    }

    fn absorb(&mut self, shard: ExistsShard) -> (u64, ControlFlow<()>) {
        if shard.found {
            self.found = true;
            (1, ControlFlow::Break(()))
        } else {
            (0, ControlFlow::Continue(()))
        }
    }
}

/// Adapter that makes *any* serial [`Sink`] parallel-capable: each morsel's rows are
/// buffered in a [`RowShard`] and replayed into the inner sink in morsel order, so
/// the inner sink observes exactly the serial emission order.
#[derive(Debug, Default)]
pub struct Ordered<S>(pub S);

impl<S> Ordered<S> {
    /// Wraps a serial sink for parallel execution.
    pub fn new(sink: S) -> Self {
        Ordered(sink)
    }

    /// Consumes the adapter, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.0
    }
}

impl<S: Sink> Sink for Ordered<S> {
    fn push(&mut self, binding: &[Val]) -> ControlFlow<()> {
        self.0.push(binding)
    }
}

impl<S: Sink + Send> ParallelSink for Ordered<S> {
    type Shard = RowShard;

    fn shard(&self) -> RowShard {
        RowShard::unbounded()
    }

    fn absorb(&mut self, shard: RowShard) -> (u64, ControlFlow<()>) {
        replay(&mut self.0, &shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_shards_store_rows_flat_and_replay_them() {
        let mut shard = RowShard::unbounded();
        assert!(shard.push(&[1, 2]).is_continue());
        assert!(shard.push(&[3, 4]).is_continue());
        let rows: Vec<Vec<Val>> = shard.iter().map(<[Val]>::to_vec).collect();
        assert_eq!(rows, vec![vec![1, 2], vec![3, 4]]);
        let mut collect = CollectSink::new();
        let (delivered, flow) = collect.absorb(shard);
        assert_eq!(delivered, 2);
        assert!(flow.is_continue());
        assert_eq!(collect.rows().len(), 2);
    }

    #[test]
    fn capped_shards_break_their_morsel_at_the_limit() {
        let mut shard = RowShard::capped(2);
        assert!(shard.push(&[1]).is_continue());
        assert!(shard.push(&[2]).is_break());
        assert!(shard.push(&[3]).is_break());
        assert_eq!(shard.iter().count(), 2);
        // Absorbing two shards of 2 into first_k(3) stops mid-second-shard.
        let mut first = FirstK::new(3);
        let mut a = RowShard::capped(3);
        let mut b = RowShard::capped(3);
        for v in [1, 2] {
            let _ = a.push(&[v]);
        }
        for v in [3, 4] {
            let _ = b.push(&[v]);
        }
        assert!(first.absorb(a).1.is_continue());
        let (delivered, flow) = first.absorb(b);
        assert_eq!(delivered, 1);
        assert!(flow.is_break());
        assert_eq!(first.into_rows(), vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn count_shards_take_whole_morsel_counts() {
        let mut sink = CountSink::new();
        let mut shard = sink.shard();
        shard.push_count(41);
        assert!(shard.push(&[7]).is_continue());
        let (rows, flow) = sink.absorb(shard);
        assert_eq!(rows, 42);
        assert!(flow.is_continue());
        assert_eq!(sink.rows(), 42);
        const { assert!(CountSink::COUNT_ONLY) };
    }

    #[test]
    fn exists_shards_request_a_global_stop() {
        let mut sink = ExistsSink::new();
        let mut shard = sink.shard();
        assert!(!shard.wants_global_stop());
        assert!(shard.push(&[1]).is_break());
        assert!(shard.wants_global_stop());
        let (_, flow) = sink.absorb(shard);
        assert!(flow.is_break());
        assert!(sink.found());
        // An empty shard leaves the sink unsatisfied.
        let mut sink = ExistsSink::new();
        let empty = sink.shard();
        assert!(sink.absorb(empty).1.is_continue());
        assert!(!sink.found());
    }

    #[test]
    fn ordered_wraps_any_serial_sink() {
        let mut seen = Vec::new();
        {
            let mut ordered = Ordered::new(|b: &[Val]| {
                seen.push(b.to_vec());
                ControlFlow::Continue(())
            });
            let mut shard = ordered.shard();
            let _ = shard.push(&[5, 6]);
            assert!(ordered.absorb(shard).1.is_continue());
        }
        assert_eq!(seen, vec![vec![5, 6]]);
    }
}
