//! # gj-runtime
//!
//! The morsel-driven parallel execution runtime shared by every engine in this
//! workspace — the generalisation of the paper's Section 4.10 multi-threading
//! (partition the output space on the first GAO attribute, work-steal jobs from a
//! shared pool) from a count-only Minesweeper special case into infrastructure that
//! LFTJ, Minesweeper and any future engine drive through one protocol.
//!
//! The runtime is built from four pieces:
//!
//! * [`morsel`] — quantile-based partitioning of the first GAO attribute into
//!   [`Morsel`]s (half-open value ranges that tile the output space);
//! * [`queue`] — a std-only [`JobQueue`]: workers claim the next unclaimed morsel
//!   with a single `fetch_add` (the same work-stealing behaviour the paper gets from
//!   the LogicBlox job pool), plus a shared stop flag for early termination;
//! * [`sink`] — the unified [`Sink`] execution protocol (rows in,
//!   [`ControlFlow`](std::ops::ControlFlow) out) and its concrete sinks, shared by
//!   serial and parallel execution;
//! * [`psink`] / [`drive()`] — the shard-and-merge layer: every [`ParallelSink`]
//!   hands out one [`ShardSink`] per morsel, workers fill shards independently, and
//!   the merge absorbs them **in morsel order**, which makes the parallel row stream
//!   identical to the serial emission order (not merely a permutation of it).
//!
//! Engines plug in by implementing [`MorselSource`]: a range-restricted execution of
//! one morsel, plus an optional counting fast path. `gj-lftj` restricts the root
//! leapfrog intersection, `gj-minesweeper` restricts the CDS frontier; the runtime
//! never needs to know how a search is actually performed.
//!
//! Per-worker engine state lives for the whole worker loop and is bracketed by two
//! lifecycle hooks: [`MorselSource::morsel_done`] (harvest what one morsel taught
//! the worker — Minesweeper's CDS constraint carry-over) and
//! [`MorselSource::retire_worker`] (reclaim the worker when the loop ends — fold
//! statistics into run totals, or park warmed caches in a [`WorkerPool`] embedded
//! in the prepared plan so the *next* execution starts warm too, which is how the
//! pairwise baselines keep their merge-join sort permutations across reruns).
//!
//! Early termination propagates across workers: a sink that answers
//! [`ControlFlow::Break`](std::ops::ControlFlow::Break) during the merge (`first_k`
//! reached, `exists` answered) trips the queue's stop flag, workers stop claiming
//! morsels, and in-flight morsels abort at their next row.
//!
//! Execution is fault-tolerant end to end: [`try_drive`] threads an [`ExecCtx`]
//! (budget monitor + stop flag) into every [`MorselSource`] call, engines poll it
//! at a coarse stride through an [`ExecWatch`], and worker panics are caught at
//! the worker boundary and surfaced as typed [`ExecError`]s — see [`exec`].
//!
//! ```
//! use gj_runtime::{drive, CountSink, ExecCtx, JobQueue, Morsel, MorselSource, Val};
//! use std::ops::ControlFlow;
//!
//! /// A toy engine: "outputs" every value of its domain, range-restricted.
//! struct Iota(Val);
//! impl MorselSource for Iota {
//!     type Worker = ();
//!     fn worker(&self) {}
//!     fn run_morsel(
//!         &self,
//!         _w: &mut (),
//!         m: Morsel,
//!         ctx: &ExecCtx<'_>,
//!         emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
//!     ) {
//!         let mut watch = ctx.watch();
//!         for v in m.lo.max(0)..m.hi.min(self.0) {
//!             if watch.tick() || emit(&[v]).is_break() {
//!                 return;
//!             }
//!         }
//!     }
//! }
//!
//! let morsels = [Morsel::new(-1, 40), Morsel::new(40, 70), Morsel::new(70, Val::MAX)];
//! let mut count = CountSink::new();
//! let report = drive(&Iota(100), &morsels, 3, &mut count);
//! assert_eq!(count.rows(), 100);
//! assert_eq!(report.morsels, 3);
//! let _ = JobQueue::new(0);
//! ```

pub mod drive;
pub mod exec;
pub mod morsel;
pub mod pool;
pub mod psink;
pub mod queue;
pub mod sink;
pub mod workers;

pub use drive::{drive, try_drive, DriveReport, MorselSource};
pub use exec::{
    panic_payload, CancelToken, ExecCtx, ExecError, ExecMonitor, ExecWatch, QueryBudget,
    CHECK_STRIDE,
};
pub use morsel::{partition_first_attribute, partition_values, Morsel};
pub use pool::WorkerPool;
pub use psink::{Ordered, ParallelSink, ShardSink};
pub use queue::JobQueue;
pub use sink::{CollectSink, CountSink, ExistsSink, FirstK, Sink};
pub use workers::scoped_workers;

/// Re-exported value type, so engine-independent callers need only this crate.
pub use gj_storage::Val;
