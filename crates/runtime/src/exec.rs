//! Typed abort errors, cooperative cancellation, and query budgets.
//!
//! Everything that can end an execution *early but cleanly* lives here:
//!
//! * [`ExecError`] — the typed abort reasons ([`BudgetExceeded`](ExecError::BudgetExceeded),
//!   [`DeadlineExceeded`](ExecError::DeadlineExceeded), [`Cancelled`](ExecError::Cancelled),
//!   [`WorkerPanicked`](ExecError::WorkerPanicked)) that `try_*` APIs surface instead
//!   of panics or silent truncation;
//! * [`CancelToken`] — a cloneable atomic flag another thread can trip at any time;
//! * [`QueryBudget`] — the per-execution limits (wall-clock deadline, cancel token,
//!   row cap, optional fault-injection registry) handed to the `try_*` entry points;
//! * [`ExecMonitor`] — the per-run shared state the budget compiles into: a sticky
//!   stop flag plus the *first* abort reason, checked cooperatively;
//! * [`ExecCtx`] / [`ExecWatch`] — how the checks reach engine inner loops. A
//!   context is threaded into [`MorselSource::run_morsel`](crate::MorselSource) and
//!   the serial executors; engines derive a [`ExecWatch`] from it and call
//!   [`tick`](ExecWatch::tick) once per search step. The watch only *polls* the
//!   shared state every [`CHECK_STRIDE`] ticks, so the per-step cost is a local
//!   counter decrement and cancellation latency stays bounded by one stride.
//!
//! The monitor records only the **first** abort reason (later trips are ignored):
//! when a deadline fires on one worker while another panics, the surfaced error is
//! whichever tripped first, and both workers stop at their next check.

use gj_storage::fault::{sites, FailpointHit, FailpointRegistry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::queue::JobQueue;

/// How many engine inner-loop steps pass between polls of the shared stop state.
///
/// Large enough that the per-step cost is a branch on a local counter, small enough
/// that cancellation latency through any engine is a few thousand trivial steps
/// (microseconds to low milliseconds).
pub const CHECK_STRIDE: u32 = 1024;

/// Why an execution was aborted before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The run exceeded its row budget ([`QueryBudget::with_max_rows`]), or a
    /// forced budget trip was injected through a failpoint.
    BudgetExceeded {
        /// Rows delivered when the budget tripped.
        rows: u64,
        /// The configured budget (0 for an injected trip with no row cap).
        budget: u64,
    },
    /// The wall-clock deadline ([`QueryBudget::with_timeout`]) passed mid-run.
    DeadlineExceeded,
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// A worker panicked; the panic was caught at the worker boundary and shared
    /// state was left reusable.
    WorkerPanicked {
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// The serving layer's admission queue was full: the query was rejected
    /// *before* execution started (see `gj-service`). Retry later or shed load.
    Saturated {
        /// Queries executing or queued when the rejection happened.
        active: usize,
        /// Total admission capacity (concurrent slots + queue depth).
        capacity: usize,
    },
}

impl ExecError {
    /// Short machine-readable label ("budget" / "deadline" / "cancelled" /
    /// "panic" / "saturated"), used by bench outcome cells and abort-parity
    /// assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::BudgetExceeded { .. } => "budget",
            ExecError::DeadlineExceeded => "deadline",
            ExecError::Cancelled => "cancelled",
            ExecError::WorkerPanicked { .. } => "panic",
            ExecError::Saturated { .. } => "saturated",
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BudgetExceeded { rows, budget } => {
                write!(f, "row budget exceeded ({rows} rows delivered, budget {budget})")
            }
            ExecError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ExecError::Cancelled => write!(f, "cancelled"),
            ExecError::WorkerPanicked { payload } => write!(f, "worker panicked: {payload}"),
            ExecError::Saturated { active, capacity } => {
                write!(f, "service saturated ({active} in flight, capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Renders a caught panic payload (`Box<dyn Any>`) to a string.
pub fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A cloneable cancellation flag, trippable from any thread.
///
/// Clones share one flag: cancelling any clone cancels them all. Hand a clone to
/// the [`QueryBudget`] of a run and keep one to cancel it from another thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether any clone has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Per-execution limits, generalising the row-count-only `ExecLimits` of the
/// pairwise baselines: a wall-clock deadline, a cancel token, a delivered-row cap,
/// and (in tests) a fault-injection registry.
///
/// The default budget is unlimited. Budgets are cheap to clone and are read once
/// per execution — the deadline clock starts when the run starts, not when the
/// budget is built.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    timeout: Option<Duration>,
    cancel: Option<CancelToken>,
    max_rows: Option<u64>,
    failpoints: Option<Arc<FailpointRegistry>>,
}

impl QueryBudget {
    /// An unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aborts the run with [`ExecError::DeadlineExceeded`] once `timeout` of
    /// wall-clock time has passed since the run started.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Aborts the run with [`ExecError::Cancelled`] once `token` is cancelled.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Aborts the run with [`ExecError::BudgetExceeded`] once `max_rows` rows have
    /// been delivered to the sink.
    pub fn with_max_rows(mut self, max_rows: u64) -> Self {
        self.max_rows = Some(max_rows);
        self
    }

    /// Attaches a fault-injection registry (test harness only).
    pub fn with_failpoints(mut self, failpoints: Arc<FailpointRegistry>) -> Self {
        self.failpoints = Some(failpoints);
        self
    }

    /// The attached fault-injection registry, if any.
    pub fn failpoints(&self) -> Option<&Arc<FailpointRegistry>> {
        self.failpoints.as_ref()
    }
}

/// The shared per-run state a [`QueryBudget`] compiles into: sticky stop flag,
/// first abort reason, delivered-row counter, and the resolved deadline instant.
///
/// One monitor is created per execution and shared (by reference) across its
/// workers; `trip` records the *first* reason and every later check observes the
/// stop flag.
#[derive(Debug)]
pub struct ExecMonitor {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    max_rows: Option<u64>,
    rows: AtomicU64,
    stopped: AtomicBool,
    reason: Mutex<Option<ExecError>>,
    failpoints: Option<Arc<FailpointRegistry>>,
}

impl ExecMonitor {
    /// Compiles `budget` into a monitor; the deadline clock starts now.
    pub fn new(budget: &QueryBudget) -> Self {
        ExecMonitor {
            cancel: budget.cancel.clone(),
            deadline: budget.timeout.map(|t| Instant::now() + t),
            max_rows: budget.max_rows,
            rows: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
            reason: Mutex::new(None),
            failpoints: budget.failpoints.clone(),
        }
    }

    /// A monitor that never trips on its own (panics can still be recorded).
    pub fn unlimited() -> Self {
        ExecMonitor::new(&QueryBudget::default())
    }

    /// Records an abort reason (first one wins) and trips the stop flag.
    pub fn trip(&self, reason: ExecError) {
        let mut slot = self.reason.lock().unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(reason);
        drop(slot);
        self.stopped.store(true, Ordering::Relaxed);
    }

    /// Whether some check already tripped the monitor.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Relaxed)
    }

    /// Polls the budget: returns `true` (and trips) when the run must abort —
    /// already stopped, cancelled, or past the deadline.
    pub fn check(&self) -> bool {
        if self.is_stopped() {
            return true;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.trip(ExecError::Cancelled);
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.trip(ExecError::DeadlineExceeded);
            return true;
        }
        false
    }

    /// Accounts `n` delivered rows; returns `true` (and trips with
    /// [`ExecError::BudgetExceeded`]) when the row budget is exhausted.
    pub fn note_rows(&self, n: u64) -> bool {
        let Some(budget) = self.max_rows else {
            self.rows.fetch_add(n, Ordering::Relaxed);
            return false;
        };
        let rows = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        if rows > budget {
            self.trip(ExecError::BudgetExceeded { rows, budget });
            return true;
        }
        false
    }

    /// Trips with a forced budget error (injected via a failpoint).
    pub fn trip_budget(&self) {
        let rows = self.rows.load(Ordering::Relaxed);
        let budget = self.max_rows.unwrap_or(0);
        self.trip(ExecError::BudgetExceeded { rows, budget });
    }

    /// Takes the recorded abort reason, if any (leaves `None` behind).
    pub fn take_reason(&self) -> Option<ExecError> {
        self.reason.lock().unwrap_or_else(PoisonError::into_inner).take()
    }

    /// The attached fault-injection registry, if any.
    pub fn failpoints(&self) -> Option<&Arc<FailpointRegistry>> {
        self.failpoints.as_ref()
    }
}

/// The execution context threaded from the driver (or a serial entry point) into
/// engine code: which monitor and which job queue to consult at check points.
///
/// `ExecCtx::none()` is the zero-cost context for infallible paths — a watch built
/// from it decrements a local counter and never takes a branch further.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecCtx<'a> {
    monitor: Option<&'a ExecMonitor>,
    queue: Option<&'a JobQueue>,
}

impl<'a> ExecCtx<'a> {
    /// A context with nothing to check (infallible serial paths).
    pub fn none() -> ExecCtx<'static> {
        ExecCtx { monitor: None, queue: None }
    }

    /// A context that checks `monitor` (serial `try_*` paths).
    pub fn with_monitor(monitor: &'a ExecMonitor) -> Self {
        ExecCtx { monitor: Some(monitor), queue: None }
    }

    /// A context that checks both `monitor` and the driver's stop flag (parallel
    /// workers).
    pub fn for_drive(monitor: &'a ExecMonitor, queue: &'a JobQueue) -> Self {
        ExecCtx { monitor: Some(monitor), queue: Some(queue) }
    }

    /// The monitor this context checks, if any.
    pub fn monitor(&self) -> Option<&'a ExecMonitor> {
        self.monitor
    }

    /// An immediate (stride-free) stop check, for per-row call sites that are not
    /// hot enough to need a stride.
    pub fn should_stop(&self) -> bool {
        self.queue.is_some_and(JobQueue::is_stopped) || self.monitor.is_some_and(ExecMonitor::check)
    }

    /// Builds the stride-counting watch engines tick from their inner loops.
    pub fn watch(&self) -> ExecWatch<'a> {
        ExecWatch {
            monitor: self.monitor,
            queue: self.queue,
            countdown: CHECK_STRIDE,
            stopped: false,
        }
    }
}

/// A per-loop stop probe: [`tick`](Self::tick) is called once per engine search
/// step and polls the shared state every [`CHECK_STRIDE`] ticks.
///
/// The result is sticky: once a poll observes a stop, every later tick returns
/// `true` without polling again.
#[derive(Debug)]
pub struct ExecWatch<'a> {
    monitor: Option<&'a ExecMonitor>,
    queue: Option<&'a JobQueue>,
    countdown: u32,
    stopped: bool,
}

impl ExecWatch<'_> {
    /// Whether this watch can ever trip: a watch with neither a monitor nor a
    /// stop-flag queue always ticks `false`. Engines with very tight inner loops
    /// may branch on this once and run a tick-free monomorphisation.
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.monitor.is_none() && self.queue.is_none()
    }

    /// Registers one engine step; returns `true` when the engine must unwind its
    /// search and stop emitting.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if self.countdown > 0 {
            self.countdown -= 1;
            return false;
        }
        self.countdown = CHECK_STRIDE;
        self.poll()
    }

    #[cold]
    fn poll(&mut self) -> bool {
        if self.queue.is_some_and(JobQueue::is_stopped) {
            self.stopped = true;
            return true;
        }
        let Some(monitor) = self.monitor else {
            return false;
        };
        if let Some(fp) = monitor.failpoints() {
            match fp.hit(sites::JOIN_STEP) {
                // gj-lint: allow(no-panic-in-engines) — fault-injection failpoint: the panic IS the fault under test
                Some(FailpointHit::Panic) => panic!("failpoint panic: {}", sites::JOIN_STEP),
                Some(FailpointHit::Trip) => monitor.trip_budget(),
                None => {}
            }
        }
        if monitor.check() {
            if let Some(queue) = self.queue {
                queue.stop();
            }
            self.stopped = true;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_storage::fault::FailAction;

    #[test]
    fn cancel_token_clones_share_one_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn monitor_records_the_first_reason_only() {
        let monitor = ExecMonitor::unlimited();
        monitor.trip(ExecError::Cancelled);
        monitor.trip(ExecError::DeadlineExceeded);
        assert!(monitor.is_stopped());
        assert_eq!(monitor.take_reason(), Some(ExecError::Cancelled));
        assert_eq!(monitor.take_reason(), None);
    }

    #[test]
    fn cancellation_is_observed_by_check() {
        let token = CancelToken::new();
        let budget = QueryBudget::new().with_cancel_token(token.clone());
        let monitor = ExecMonitor::new(&budget);
        assert!(!monitor.check());
        token.cancel();
        assert!(monitor.check());
        assert_eq!(monitor.take_reason(), Some(ExecError::Cancelled));
    }

    #[test]
    fn zero_timeout_trips_the_deadline_immediately() {
        let budget = QueryBudget::new().with_timeout(Duration::ZERO);
        let monitor = ExecMonitor::new(&budget);
        assert!(monitor.check());
        assert_eq!(monitor.take_reason(), Some(ExecError::DeadlineExceeded));
    }

    #[test]
    fn row_budget_trips_after_the_cap() {
        let budget = QueryBudget::new().with_max_rows(3);
        let monitor = ExecMonitor::new(&budget);
        assert!(!monitor.note_rows(2));
        assert!(!monitor.note_rows(1), "exactly at the cap is still fine");
        assert!(monitor.note_rows(1));
        match monitor.take_reason() {
            Some(ExecError::BudgetExceeded { rows, budget }) => {
                assert_eq!((rows, budget), (4, 3));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn watch_latency_is_bounded_by_one_stride() {
        let token = CancelToken::new();
        let budget = QueryBudget::new().with_cancel_token(token.clone());
        let monitor = ExecMonitor::new(&budget);
        let ctx = ExecCtx::with_monitor(&monitor);
        let mut watch = ctx.watch();
        token.cancel();
        let mut ticks = 0u64;
        while !watch.tick() {
            ticks += 1;
            assert!(ticks <= u64::from(CHECK_STRIDE) + 1, "stop not seen within one stride");
        }
        assert!(watch.tick(), "the stop is sticky");
    }

    #[test]
    fn none_ctx_never_stops() {
        let ctx = ExecCtx::none();
        let mut watch = ctx.watch();
        for _ in 0..(CHECK_STRIDE * 3) {
            assert!(!watch.tick());
        }
        assert!(!ctx.should_stop());
    }

    #[test]
    fn join_step_trip_failpoint_forces_a_budget_error() {
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm(sites::JOIN_STEP, FailAction::Trip);
        let budget = QueryBudget::new().with_failpoints(fp);
        let monitor = ExecMonitor::new(&budget);
        let ctx = ExecCtx::with_monitor(&monitor);
        let mut watch = ctx.watch();
        let mut ticks = 0u64;
        while !watch.tick() {
            ticks += 1;
            assert!(ticks <= u64::from(CHECK_STRIDE) + 1);
        }
        assert!(matches!(monitor.take_reason(), Some(ExecError::BudgetExceeded { .. })));
    }
}
