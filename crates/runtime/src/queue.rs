//! The shared job queue: `fetch_add` work stealing plus a cross-worker stop flag.
//!
//! Workers claim the next unclaimed job index with a single atomic `fetch_add` — the
//! same work-stealing behaviour a channel or the LogicBlox job pool would give,
//! without any external dependency (the workspace is std-only). The queue also
//! carries the shared **stop flag** that propagates early termination across
//! workers: when a sink answers `Break` during the merge (`first_k` satisfied,
//! `exists` answered), the driver trips the flag, no further job is handed out, and
//! in-flight morsels abort at their next emitted row.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A shared pool of `len` jobs, claimed in index order, with a stop flag.
#[derive(Debug, Default)]
pub struct JobQueue {
    next: AtomicUsize,
    len: usize,
    stop: AtomicBool,
}

impl JobQueue {
    /// Creates a queue over job indices `0..len`.
    pub fn new(len: usize) -> Self {
        JobQueue { next: AtomicUsize::new(0), len, stop: AtomicBool::new(false) }
    }

    /// Claims the next unclaimed job, or `None` when the pool is drained or stopped.
    ///
    /// Jobs are handed out in increasing index order — the invariant the ordered
    /// shard merge relies on: when the queue stops, the *unclaimed* jobs are exactly
    /// a suffix of the pool, so the claimed prefix is still merged gap-free.
    pub fn claim(&self) -> Option<usize> {
        if self.is_stopped() {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }

    /// Trips the stop flag: no further job will be claimed, and cooperative workers
    /// abort their current job at the next check.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether the stop flag has been tripped.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Number of jobs in the pool.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool was created empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_every_job_exactly_once_across_threads() {
        let queue = JobQueue::new(1000);
        let seen: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while let Some(i) = queue.claim() {
                        seen[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stop_prevents_further_claims() {
        let queue = JobQueue::new(10);
        assert_eq!(queue.claim(), Some(0));
        queue.stop();
        assert!(queue.is_stopped());
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn empty_queue_claims_nothing() {
        let queue = JobQueue::new(0);
        assert!(queue.is_empty());
        assert_eq!(queue.claim(), None);
    }
}
