//! A reclaim pool for per-worker engine state.
//!
//! The driver creates one [`MorselSource::Worker`](crate::MorselSource::Worker) per
//! worker thread and, since the lifecycle hooks landed, hands it back through
//! [`retire_worker`](crate::MorselSource::retire_worker) when the worker's loop
//! ends. A [`WorkerPool`] is the natural home for those retired workers: a prepared
//! plan embeds one, [`MorselSource::worker`](crate::MorselSource::worker) pops a
//! recycled worker (warm caches and all) instead of building a cold one, and
//! `retire_worker` pushes it back. Because the pool lives in the *plan* — not in
//! the per-execution morsel source — worker state survives not only across the
//! morsels of one run but across **repeated executions** of the same prepared
//! query: the pairwise baselines keep their merge-join left sort permutations this
//! way, so a warm parallel rerun skips every left sort the cold run paid for.
//!
//! The pool is a plain mutex-guarded stack: acquisition order is unspecified, and
//! workers must therefore be interchangeable (any worker must produce correct
//! results for any morsel — caches may differ, answers may not).

use std::sync::{Mutex, MutexGuard, PoisonError};

/// A mutex-guarded stack of reusable per-worker states.
///
/// Cloning a `WorkerPool` yields a fresh **empty** pool: pooled workers are caches,
/// and caches do not follow clones (a cloned plan starts cold, exactly like a newly
/// prepared one).
///
/// The pool is panic-tolerant by construction: the lock is held only around plain
/// `Vec` push/pop (never across user code — `acquire_or` runs its `fresh` closure
/// *after* releasing the lock), and poisoning left behind by a panicked worker
/// thread is recovered, so a crashed query never makes the pool unusable for the
/// next one.
#[derive(Debug, Default)]
pub struct WorkerPool<W> {
    workers: Mutex<Vec<W>>,
}

impl<W> WorkerPool<W> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        WorkerPool { workers: Mutex::new(Vec::new()) }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<W>> {
        // A poisoned pool holds parked workers, which are caches of valid state —
        // the panic that poisoned the lock cannot have corrupted them mid-push.
        self.workers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pops a retired worker, or builds a fresh one with `fresh` when the pool is
    /// empty (first execution, or more threads than ever retired). `fresh` runs
    /// without the pool lock held, so a panicking constructor cannot poison the
    /// pool.
    pub fn acquire_or(&self, fresh: impl FnOnce() -> W) -> W {
        let recycled = self.lock().pop();
        recycled.unwrap_or_else(fresh)
    }

    /// Returns a worker (and its warmed caches) to the pool for later executions.
    pub fn release(&self, worker: W) {
        self.lock().push(worker);
    }

    /// Number of workers currently parked in the pool.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the pool holds no parked worker.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<W> Clone for WorkerPool<W> {
    fn clone(&self) -> Self {
        WorkerPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_pooled_workers_and_falls_back_to_fresh() {
        let pool: WorkerPool<Vec<u32>> = WorkerPool::new();
        assert!(pool.is_empty());
        let fresh = pool.acquire_or(|| vec![1]);
        assert_eq!(fresh, vec![1]);
        pool.release(vec![2, 3]);
        assert_eq!(pool.len(), 1);
        let recycled = pool.acquire_or(|| vec![1]);
        assert_eq!(recycled, vec![2, 3], "the pooled worker wins over the fresh closure");
        assert!(pool.is_empty());
    }

    #[test]
    fn clones_start_cold() {
        let pool: WorkerPool<u8> = WorkerPool::new();
        pool.release(7);
        let clone = pool.clone();
        assert!(clone.is_empty(), "caches do not follow clones");
        assert_eq!(pool.len(), 1);
    }

    /// The PR 6 contract, pinned per structure: a panicked worker may poison the
    /// pool's mutex, but the next query must see byte-identical pool contents —
    /// the lock is never held across user code, so the parked workers are intact.
    #[test]
    fn a_poisoned_pool_serves_byte_identical_workers() {
        let pool: WorkerPool<Vec<u32>> = WorkerPool::new();
        pool.release(vec![1, 2, 3]);
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.workers.lock().unwrap();
            panic!("worker dies while holding the pool lock");
        }));
        assert!(unwind.is_err());
        assert!(pool.workers.is_poisoned(), "the panic must actually poison the mutex");
        assert_eq!(pool.len(), 1, "a poisoned pool still counts its workers");
        let worker = pool.acquire_or(Vec::new);
        assert_eq!(worker, vec![1, 2, 3], "recovered state is byte-identical");
        pool.release(worker);
        assert_eq!(pool.len(), 1, "release works on a poisoned pool too");
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let pool: WorkerPool<usize> = WorkerPool::new();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let pool = &pool;
                scope.spawn(move || pool.release(i));
            }
        });
        assert_eq!(pool.len(), 4, "every thread's release lands in the shared pool");
        let mut drained: Vec<usize> = (0..4).map(|_| pool.acquire_or(|| 99)).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }
}
