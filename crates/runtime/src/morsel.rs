//! Morsels: quantile-based partitioning of the first GAO attribute.
//!
//! The paper's multi-threaded results (Section 4.10, Table 5) come from splitting the
//! output space on the first GAO attribute into `threads × granularity` jobs at
//! quantiles of the values actually present in the data. This module lifts that
//! partitioning out of Minesweeper (where it was a count-only special case) so every
//! engine can share it: a [`Morsel`] is a half-open value range `[lo, hi)` of the
//! first GAO attribute, and [`partition_first_attribute`] tiles the whole axis with
//! them.
//!
//! Quantiles of the *present* values (rather than an even split of the value range)
//! keep morsels balanced under skew — a power-law graph's dense low-degree prefix
//! gets as many morsels as its sparse tail. The granularity factor `f` (the paper
//! uses `f = 1` for acyclic and `f = 8` for cyclic queries) over-splits the domain so
//! the job pool can work-steal around stragglers.

use gj_query::BoundQuery;
use gj_storage::{Val, NEG_INF, POS_INF};

/// One unit of parallel work: the query restricted to first-GAO-attribute values in
/// `[lo, hi)`. Morsels produced by [`partition_first_attribute`] tile the axis, so
/// running every morsel visits each output tuple exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Inclusive lower end of the first-attribute range.
    pub lo: Val,
    /// Exclusive upper end of the first-attribute range.
    pub hi: Val,
}

impl Morsel {
    /// Creates the morsel `[lo, hi)`.
    pub fn new(lo: Val, hi: Val) -> Self {
        Morsel { lo, hi }
    }

    /// The whole axis as a single morsel (the serial fallback).
    pub fn whole_axis() -> Self {
        Morsel { lo: NEG_INF, hi: POS_INF }
    }
}

/// Splits the domain of the first GAO attribute into at most `parts` morsels whose
/// boundaries are values present in the data, covering the whole axis.
///
/// Returns a single [`Morsel::whole_axis`] when the query has no variables, no atom
/// leads with the first GAO variable, or the first attribute has too few distinct
/// values to split — callers should fall back to serial execution when the result
/// has fewer than two morsels.
pub fn partition_first_attribute(bq: &BoundQuery, parts: usize) -> Vec<Morsel> {
    let Some(&first_var) = bq.gao.first() else {
        return vec![Morsel::whole_axis()];
    };
    // Any atom containing the first GAO variable has it as its first index level.
    let Some(atom) = bq.atoms.iter().find(|a| a.vars.first() == Some(&first_var)) else {
        return vec![Morsel::whole_axis()];
    };
    // Merged first-level keys: a delta-carrying index may hold live keys outside
    // the base trie's min/max, and dropping them from the quantile set would
    // (with unlucky boundaries) still tile the axis — but a boundary set that
    // ignores delta-only keys skews load; worse, slicing the *base* level alone
    // here used to be the only reader assuming index == base.
    partition_values(&atom.index.first_level_values(), parts)
}

/// Splits a **sorted, distinct** slice of attribute values into at most `parts`
/// morsels whose boundaries are values from the slice, covering the whole axis —
/// the quantile core of [`partition_first_attribute`], exposed for engines whose
/// partition axis is not a trie level (the pairwise baseline partitions the first
/// column of its plan's base relation). The first morsel starts at [`NEG_INF`],
/// so the tiling covers arbitrary signed domains; engines whose search encodes
/// "before everything" differently clamp at their own boundary (Minesweeper's
/// frontier clamps a morsel's `lo` to the paper's `-1` natural-number
/// convention). Callers should fall back to serial execution when the result has
/// fewer than two morsels.
pub fn partition_values(values: &[Val], parts: usize) -> Vec<Morsel> {
    debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "values must be sorted and distinct");
    if values.is_empty() || parts <= 1 {
        return vec![Morsel::whole_axis()];
    }
    let parts = parts.min(values.len());
    let mut morsels = Vec::with_capacity(parts);
    let mut start = NEG_INF;
    for k in 1..parts {
        let boundary = values[k * values.len() / parts];
        if boundary > start {
            morsels.push(Morsel::new(start, boundary));
            start = boundary;
        }
    }
    morsels.push(Morsel::new(start, POS_INF));
    morsels
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{CatalogQuery, Instance};
    use gj_storage::{Graph, Relation};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst
    }

    #[test]
    fn partitions_tile_the_axis_without_overlap() {
        let inst = random_instance(14, 40, 0.2);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        for parts in [2, 3, 7, 64] {
            let morsels = partition_first_attribute(&bq, parts);
            assert!(!morsels.is_empty());
            assert_eq!(morsels[0].lo, NEG_INF);
            assert_eq!(morsels.last().unwrap().hi, POS_INF);
            for w in morsels.windows(2) {
                assert_eq!(w[0].hi, w[1].lo, "morsels must tile the axis");
                assert!(w[0].lo < w[0].hi);
            }
        }
    }

    #[test]
    fn negative_boundaries_keep_the_tiling_well_formed() {
        // Signed domains: quantile boundaries may be negative; the tiling must
        // still cover the whole axis with strictly increasing, non-inverted
        // morsels starting at NEG_INF.
        for parts in [2, 3, 5, 16] {
            let morsels = partition_values(&[-20, -5, -1, 0, 3, 9], parts);
            assert_eq!(morsels[0].lo, NEG_INF);
            assert_eq!(morsels.last().unwrap().hi, POS_INF);
            for w in morsels.windows(2) {
                assert_eq!(w[0].hi, w[1].lo, "morsels must tile the axis");
                assert!(w[0].lo < w[0].hi, "no inverted morsels");
            }
        }
    }

    #[test]
    fn degenerate_inputs_fall_back_to_one_morsel() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::empty(2));
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(partition_first_attribute(&bq, 8), vec![Morsel::whole_axis()]);
        // parts <= 1 never splits.
        let inst = random_instance(3, 20, 0.3);
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(partition_first_attribute(&bq, 1), vec![Morsel::whole_axis()]);
    }

    #[test]
    fn never_produces_more_morsels_than_distinct_values() {
        // Three distinct first-attribute values can make at most three morsels.
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::from_pairs(vec![(1, 2), (5, 6), (9, 1)]));
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let morsels = partition_first_attribute(&bq, 16);
        assert!(morsels.len() <= 3, "{morsels:?}");
    }
}
