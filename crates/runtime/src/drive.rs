//! The morsel driver: scoped workers, a shared job pool, and the ordered merge.
//!
//! [`try_drive`] is the runtime's engine-independent core. It spawns `threads`
//! scoped worker threads (std-only, no external thread pool); each worker
//! repeatedly claims the next unclaimed morsel from the [`JobQueue`], runs it
//! through the engine's [`MorselSource`] into the morsel's private shard, and hands
//! the completed shard to the merger. The merger absorbs shards strictly **in
//! morsel order** — shards finishing out of order wait in a pending map — so the
//! sink observes the serial emission stream regardless of scheduling.
//!
//! Per-worker engine state ([`MorselSource::Worker`]) lives for the whole worker
//! loop: an engine can keep its executor, search buffers, or constraint store alive
//! across every morsel the worker claims, instead of re-allocating per job.
//!
//! Two lifecycle hooks bracket that state. After a worker finishes one morsel the
//! driver calls [`MorselSource::morsel_done`] — the engine's chance to *harvest*
//! whatever the morsel taught it into worker state that benefits the next morsel
//! (Minesweeper moves the globally-valid gap constraints it discovered into its
//! carry-over ledger there). When a worker's loop ends the driver calls
//! [`MorselSource::retire_worker`] with the worker state by value — the engine's
//! chance to *reclaim* it: fold per-worker statistics into run totals, or return
//! expensive caches to a [`WorkerPool`](crate::WorkerPool) so the next execution of
//! the same prepared plan starts warm instead of cold.
//!
//! # Fault tolerance
//!
//! Each worker's whole loop runs under `catch_unwind`: a panic anywhere in engine
//! code trips the queue's stop flag, is recorded as
//! [`ExecError::WorkerPanicked`] on the shared [`ExecMonitor`], and surfaces as a
//! typed `Err` from [`try_drive`] — never as a propagated panic, and never leaving
//! a poisoned lock behind (every shared lock here recovers from poisoning). The
//! monitor is additionally polled at every morsel boundary, and engines poll it
//! *inside* morsels through the [`ExecCtx`] the driver threads into
//! [`MorselSource::run_morsel`] / [`count_morsel`](MorselSource::count_morsel), so
//! cancellations and deadlines are honored with bounded latency even during one
//! long morsel. The legacy [`drive`] wrapper keeps the infallible signature for
//! callers without a budget (and re-raises worker panics like the scoped join
//! used to).

use crate::exec::{panic_payload, ExecCtx, ExecError, ExecMonitor};
use crate::morsel::Morsel;
use crate::psink::{ParallelSink, ShardSink};
use crate::queue::JobQueue;
use gj_storage::fault::{sites, FailpointHit};
use gj_storage::Val;
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// A range-restricted engine execution: everything the runtime needs to drive an
/// engine in parallel.
///
/// Implementations run the query restricted to first-GAO-attribute values in
/// `[morsel.lo, morsel.hi)` and emit every output row **in variable-id order** (the
/// sink protocol's row shape), in the engine's serial emission order.
pub trait MorselSource: Sync {
    /// Reusable per-worker state (executor, scratch buffers, constraint store);
    /// created once per worker thread and carried across every claimed morsel.
    type Worker;

    /// Creates the state for one worker thread.
    ///
    /// Sources whose workers carry expensive caches should pull from a
    /// [`WorkerPool`](crate::WorkerPool) here (and give the worker back in
    /// [`retire_worker`](Self::retire_worker)), so the caches survive across
    /// repeated executions of the same prepared plan, not just across the morsels
    /// of one run.
    fn worker(&self) -> Self::Worker;

    /// Lifecycle hook: called by the driver after `worker` finished `morsel`
    /// (after [`run_morsel`](Self::run_morsel) / [`count_morsel`](Self::count_morsel)
    /// returned, before the shard is merged or the next morsel is claimed).
    ///
    /// This is where an engine harvests what the morsel taught it into state that
    /// carries over: Minesweeper moves the value-independent gap constraints
    /// discovered during the morsel into the ledger that re-seeds its reset CDS
    /// for the next range. The default does nothing.
    fn morsel_done(&self, _worker: &mut Self::Worker, _morsel: Morsel) {}

    /// Lifecycle hook: called by the driver exactly once per worker, when its loop
    /// ends (no more morsels, or the run stopped early). Receives the worker state
    /// by value so the source can reclaim it — fold per-worker statistics into run
    /// totals, or return the worker (with its warmed caches) to a
    /// [`WorkerPool`](crate::WorkerPool) shared by later executions. The default
    /// drops the worker.
    fn retire_worker(&self, _worker: Self::Worker) {}

    /// Runs one morsel, emitting rows until exhaustion, until `emit` breaks, or
    /// until the engine's [`ExecWatch`](crate::ExecWatch) (derived from `ctx`)
    /// observes a stop — engines must poll `ctx` inside long searches so a tripped
    /// stop flag, cancel token or deadline is honored with bounded latency.
    fn run_morsel(
        &self,
        worker: &mut Self::Worker,
        morsel: Morsel,
        ctx: &ExecCtx<'_>,
        emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
    );

    /// Counting fast path: the number of output rows in one morsel. Engines with a
    /// dedicated counting mode (e.g. Minesweeper's batch counting) should override
    /// this; the default enumerates and counts. The same in-loop polling duty as
    /// [`run_morsel`](Self::run_morsel) applies — a stopped run may return a
    /// partial count (the driver discards it).
    fn count_morsel(&self, worker: &mut Self::Worker, morsel: Morsel, ctx: &ExecCtx<'_>) -> u64 {
        let mut rows = 0;
        self.run_morsel(worker, morsel, ctx, &mut |_| {
            rows += 1;
            ControlFlow::Continue(())
        });
        rows
    }
}

/// What a parallel run did, for `RunStats` in `gj-core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Number of morsels the output space was partitioned into.
    pub morsels: usize,
    /// Worker threads spawned.
    pub threads: usize,
    /// Rows delivered into the sink by the ordered merge.
    pub rows: u64,
    /// Morsels actually executed (smaller than `morsels` under early termination).
    pub morsels_run: usize,
}

/// The ordered merge: absorbs completed shards into the sink in morsel order.
struct Merger<'s, K: ParallelSink> {
    sink: &'s mut K,
    /// Next morsel index the sink is waiting for.
    next: usize,
    /// Completed shards that finished ahead of `next`.
    pending: BTreeMap<usize, K::Shard>,
    rows: u64,
    satisfied: bool,
}

impl<'s, K: ParallelSink> Merger<'s, K> {
    fn new(sink: &'s mut K) -> Self {
        Merger { sink, next: 0, pending: BTreeMap::new(), rows: 0, satisfied: false }
    }

    /// Registers morsel `job`'s completed shard and absorbs every shard that is now
    /// contiguous with the absorbed prefix. Returns `Break` once the sink is
    /// satisfied (sticky).
    fn complete(&mut self, job: usize, shard: K::Shard) -> ControlFlow<()> {
        self.pending.insert(job, shard);
        while let Some(shard) = self.pending.remove(&self.next) {
            self.next += 1;
            if self.satisfied {
                continue; // the sink broke earlier: drop trailing shards
            }
            let (rows, flow) = self.sink.absorb(shard);
            self.rows += rows;
            self.satisfied = flow.is_break();
        }
        if self.satisfied {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// One worker's claim/run/merge loop. Runs under `catch_unwind` in [`try_drive`];
/// everything here must leave shared state consistent if it unwinds.
fn worker_loop<S: MorselSource, K: ParallelSink>(
    source: &S,
    morsels: &[Morsel],
    queue: &JobQueue,
    shards: &[Mutex<Option<K::Shard>>],
    merger: &Mutex<Merger<'_, K>>,
    monitor: &ExecMonitor,
) {
    let mut worker = source.worker();
    let ctx = ExecCtx::for_drive(monitor, queue);
    loop {
        // Morsel-boundary checks: budget state, then the claim failpoint.
        if monitor.check() {
            queue.stop();
            break;
        }
        if let Some(fp) = monitor.failpoints() {
            match fp.hit(sites::MORSEL_CLAIM) {
                // gj-lint: allow(no-panic-in-engines) — fault-injection failpoint: the panic IS the fault under test
                Some(FailpointHit::Panic) => panic!("failpoint panic: {}", sites::MORSEL_CLAIM),
                Some(FailpointHit::Trip) => {
                    monitor.trip_budget();
                    queue.stop();
                    break;
                }
                None => {}
            }
        }
        let Some(job) = queue.claim() else { break };
        let mut shard = shards[job]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            // gj-lint: allow(no-panic-in-engines) — double-claim means corrupt results; aborting the worker is the safe outcome
            .expect("every job is claimed exactly once");
        if K::COUNT_ONLY {
            let count = source.count_morsel(&mut worker, morsels[job], &ctx);
            // Counting runs see the row budget at morsel granularity: no row is
            // materialised, so the count is noted when the morsel completes.
            if monitor.note_rows(count) {
                queue.stop();
            }
            shard.push_count(count);
        } else {
            source.run_morsel(&mut worker, morsels[job], &ctx, &mut |row| {
                if queue.is_stopped() {
                    return ControlFlow::Break(());
                }
                if monitor.note_rows(1) {
                    queue.stop();
                    return ControlFlow::Break(());
                }
                let flow = shard.push(row);
                if shard.wants_global_stop() {
                    queue.stop();
                }
                flow
            });
        }
        source.morsel_done(&mut worker, morsels[job]);
        if let Some(fp) = monitor.failpoints() {
            match fp.hit(sites::SHARD_MERGE) {
                // gj-lint: allow(no-panic-in-engines) — fault-injection failpoint: the panic IS the fault under test
                Some(FailpointHit::Panic) => panic!("failpoint panic: {}", sites::SHARD_MERGE),
                Some(FailpointHit::Trip) => {
                    monitor.trip_budget();
                    queue.stop();
                    break;
                }
                None => {}
            }
        }
        let merged = merger.lock().unwrap_or_else(PoisonError::into_inner).complete(job, shard);
        if merged.is_break() {
            queue.stop();
        }
    }
    source.retire_worker(worker);
}

/// Runs `morsels` of `source` on `threads` worker threads under `monitor`, merging
/// every morsel's output into `sink` in morsel order.
///
/// With a single thread or a single morsel this still goes through the worker loop
/// (one worker, in-order completion), so serial and parallel execution share one
/// code path; callers that want the engine's serial fast path should branch before
/// calling.
///
/// # Errors
///
/// Returns the first [`ExecError`] tripped on `monitor` — a cancel, deadline or
/// row-budget abort, or a worker panic (caught at the worker boundary; the panic
/// payload rides in the error and shared state stays reusable). On an `Err` the
/// sink holds a meaningless prefix of the output and must be discarded.
pub fn try_drive<S: MorselSource, K: ParallelSink>(
    source: &S,
    morsels: &[Morsel],
    threads: usize,
    sink: &mut K,
    monitor: &ExecMonitor,
) -> Result<DriveReport, ExecError> {
    let n = morsels.len();
    let threads = threads.max(1).min(n.max(1));
    let queue = JobQueue::new(n);
    // One shard per morsel, created up front (shard creation needs `&sink`, which is
    // mutably borrowed by the merger below).
    let shards: Vec<Mutex<Option<K::Shard>>> =
        (0..n).map(|_| Mutex::new(Some(sink.shard()))).collect();
    let merger = Mutex::new(Merger::new(sink));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let shards = &shards;
            let merger = &merger;
            scope.spawn(move || {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    worker_loop(source, morsels, queue, shards, merger, monitor);
                }));
                if let Err(payload) = caught {
                    monitor.trip(ExecError::WorkerPanicked { payload: panic_payload(payload) });
                    queue.stop();
                }
            });
        }
    });

    let merger = merger.into_inner().unwrap_or_else(PoisonError::into_inner);
    let report = DriveReport { morsels: n, threads, rows: merger.rows, morsels_run: merger.next };
    match monitor.take_reason() {
        Some(reason) => Err(reason),
        None => Ok(report),
    }
}

/// Infallible wrapper around [`try_drive`] with an unlimited monitor, for callers
/// without a budget.
///
/// # Panics
///
/// Re-raises a worker panic as a panic in the calling thread (matching the old
/// scoped-join behaviour); no other [`ExecError`] can occur without a budget.
pub fn drive<S: MorselSource, K: ParallelSink>(
    source: &S,
    morsels: &[Morsel],
    threads: usize,
    sink: &mut K,
) -> DriveReport {
    let monitor = ExecMonitor::unlimited();
    match try_drive(source, morsels, threads, sink, &monitor) {
        Ok(report) => report,
        // gj-lint: allow(no-panic-in-engines) — documented infallible wrapper ("# Panics"); limit-free runs cannot abort
        Err(err) => panic!("{err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CancelToken, QueryBudget};
    use crate::sink::{CollectSink, CountSink, ExistsSink, FirstK};
    use gj_storage::fault::{FailAction, FailpointRegistry};
    use gj_storage::POS_INF;
    use std::sync::Arc;

    /// A toy source that emits `(v, v)` for every v in the morsel ∩ [0, n).
    struct Iota {
        n: Val,
    }

    impl MorselSource for Iota {
        type Worker = Vec<Val>;

        fn worker(&self) -> Vec<Val> {
            vec![0; 2]
        }

        fn run_morsel(
            &self,
            scratch: &mut Vec<Val>,
            m: Morsel,
            ctx: &ExecCtx<'_>,
            emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
        ) {
            let mut watch = ctx.watch();
            for v in m.lo.max(0)..m.hi.min(self.n) {
                if watch.tick() {
                    return;
                }
                scratch[0] = v;
                scratch[1] = v;
                if emit(scratch).is_break() {
                    return;
                }
            }
        }
    }

    fn tile(bounds: &[Val]) -> Vec<Morsel> {
        let mut lo = -1;
        let mut morsels = Vec::new();
        for &b in bounds {
            morsels.push(Morsel::new(lo, b));
            lo = b;
        }
        morsels.push(Morsel::new(lo, POS_INF));
        morsels
    }

    #[test]
    fn counts_add_up_across_workers() {
        let source = Iota { n: 1000 };
        let morsels = tile(&[100, 300, 301, 999]);
        for threads in [1, 2, 4, 8] {
            let mut sink = CountSink::new();
            let report = drive(&source, &morsels, threads, &mut sink);
            assert_eq!(sink.rows(), 1000, "threads {threads}");
            assert_eq!(report.rows, 1000);
            assert_eq!(report.morsels, 5);
            assert_eq!(report.morsels_run, 5);
        }
    }

    #[test]
    fn collect_preserves_the_serial_emission_order() {
        let source = Iota { n: 200 };
        let morsels = tile(&[13, 50, 51, 120, 180]);
        let expected: Vec<Vec<Val>> = (0..200).map(|v| vec![v, v]).collect();
        for threads in [2, 7] {
            let mut sink = CollectSink::new();
            drive(&source, &morsels, threads, &mut sink);
            assert_eq!(sink.into_rows(), expected, "threads {threads}");
        }
    }

    #[test]
    fn first_k_is_the_serial_prefix_and_skips_trailing_morsels() {
        let source = Iota { n: 10_000 };
        let morsels = tile(&(1..100).map(|i| i * 100).collect::<Vec<_>>());
        let mut sink = FirstK::new(7);
        let report = drive(&source, &morsels, 4, &mut sink);
        assert_eq!(sink.into_rows(), (0..7).map(|v| vec![v, v]).collect::<Vec<_>>());
        assert!(
            report.morsels_run < report.morsels,
            "early termination must leave morsels unclaimed ({report:?})"
        );
    }

    #[test]
    fn exists_stops_early_on_any_row() {
        let source = Iota { n: 1_000_000 };
        let morsels = tile(&(1..200).map(|i| i * 5000).collect::<Vec<_>>());
        let mut sink = ExistsSink::new();
        let report = drive(&source, &morsels, 8, &mut sink);
        assert!(sink.found());
        assert!(report.morsels_run <= report.morsels);
    }

    #[test]
    fn empty_domain_yields_nothing() {
        let source = Iota { n: 0 };
        let morsels = tile(&[10]);
        let mut sink = CollectSink::new();
        let report = drive(&source, &morsels, 4, &mut sink);
        assert!(sink.rows().is_empty());
        assert_eq!(report.rows, 0);
        assert_eq!(report.morsels_run, 2);
    }

    #[test]
    fn more_threads_than_morsels_is_fine() {
        let source = Iota { n: 50 };
        let mut sink = CountSink::new();
        let report = drive(&source, &[Morsel::whole_axis()], 16, &mut sink);
        assert_eq!(sink.rows(), 50);
        assert_eq!(report.threads, 1, "threads are clamped to the morsel count");
    }

    #[test]
    fn cancelled_token_surfaces_as_a_typed_error() {
        let source = Iota { n: 100_000 };
        let morsels = tile(&[50_000]);
        let token = CancelToken::new();
        token.cancel();
        let budget = QueryBudget::new().with_cancel_token(token);
        let monitor = ExecMonitor::new(&budget);
        let mut sink = CountSink::new();
        let err = try_drive(&source, &morsels, 2, &mut sink, &monitor).unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
    }

    #[test]
    fn row_budget_aborts_the_run() {
        let source = Iota { n: 10_000 };
        let morsels = tile(&[2000, 4000, 6000, 8000]);
        let budget = QueryBudget::new().with_max_rows(10);
        let monitor = ExecMonitor::new(&budget);
        let mut sink = CollectSink::new();
        let err = try_drive(&source, &morsels, 4, &mut sink, &monitor).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }), "{err:?}");
    }

    #[test]
    fn counting_runs_see_the_row_budget_at_morsel_granularity() {
        // COUNT_ONLY materialises nothing, so the budget is noted per completed
        // morsel rather than per row — it must still abort the run.
        let source = Iota { n: 10_000 };
        let morsels = tile(&(1..10).map(|i| i * 1000).collect::<Vec<_>>());
        let budget = QueryBudget::new().with_max_rows(10);
        let monitor = ExecMonitor::new(&budget);
        let mut sink = CountSink::new();
        let err = try_drive(&source, &morsels, 4, &mut sink, &monitor).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }), "{err:?}");
    }

    #[test]
    fn worker_panic_is_caught_and_typed() {
        struct Bomb;
        impl MorselSource for Bomb {
            type Worker = ();
            fn worker(&self) {}
            fn run_morsel(
                &self,
                _w: &mut (),
                m: Morsel,
                _ctx: &ExecCtx<'_>,
                _emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
            ) {
                if m.lo >= 10 {
                    panic!("engine bug at {}", m.lo);
                }
            }
        }
        let morsels = tile(&[10, 20, 30]);
        let monitor = ExecMonitor::unlimited();
        let mut sink = CollectSink::new();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = try_drive(&Bomb, &morsels, 2, &mut sink, &monitor);
        std::panic::set_hook(prev);
        match result {
            Err(ExecError::WorkerPanicked { payload }) => {
                assert!(payload.contains("engine bug"), "{payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn morsel_claim_failpoints_fire_in_the_driver() {
        let source = Iota { n: 1000 };
        let morsels = tile(&[250, 500, 750]);
        let fp = Arc::new(FailpointRegistry::new());
        fp.arm_after(sites::MORSEL_CLAIM, FailAction::Trip, 1, 1);
        let budget = QueryBudget::new().with_failpoints(fp.clone());
        let monitor = ExecMonitor::new(&budget);
        let mut sink = CountSink::new();
        let err = try_drive(&source, &morsels, 1, &mut sink, &monitor).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }));
        assert_eq!(fp.fired().as_deref(), Some(sites::MORSEL_CLAIM));
    }

    #[test]
    fn counting_path_honors_the_stop_flag_inside_a_single_morsel() {
        // One huge morsel on the COUNT_ONLY path: only the in-engine watch can see
        // the cancel, so a bounded number of ticks later the run must abort.
        let source = Iota { n: Val::MAX };
        let morsels = [Morsel::whole_axis()];
        let token = CancelToken::new();
        let budget = QueryBudget::new().with_cancel_token(token.clone());
        let monitor = ExecMonitor::new(&budget);
        let mut sink = CountSink::new();
        // Cancel once the single morsel is already running: only the in-engine
        // watch can observe it (the morsel would otherwise run for years).
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            token.cancel();
        });
        let err = try_drive(&source, &morsels, 1, &mut sink, &monitor).unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err, ExecError::Cancelled);
    }

    /// A sink whose first `absorb` panics — *while the worker holds the merger
    /// mutex*, poisoning it mid-run.
    struct PoisonOnFirstAbsorb {
        inner: CollectSink,
        armed: bool,
    }

    impl crate::sink::Sink for PoisonOnFirstAbsorb {
        fn push(&mut self, row: &[Val]) -> ControlFlow<()> {
            crate::sink::Sink::push(&mut self.inner, row)
        }
    }

    impl ParallelSink for PoisonOnFirstAbsorb {
        type Shard = <CollectSink as ParallelSink>::Shard;

        fn shard(&self) -> Self::Shard {
            self.inner.shard()
        }

        fn absorb(&mut self, shard: Self::Shard) -> (u64, ControlFlow<()>) {
            if self.armed {
                self.armed = false;
                panic!("absorb dies while holding the merger lock");
            }
            self.inner.absorb(shard)
        }
    }

    /// The poison-tolerance contract at the shard-merge mutex: an `absorb` that
    /// panics poisons the merger lock mid-run, the fault surfaces as a typed
    /// [`ExecError::WorkerPanicked`], and a fresh run over the same source is
    /// byte-identical to the serial answer — nothing sticks.
    #[test]
    fn a_poisoned_merger_surfaces_worker_panicked_and_reruns_byte_identical() {
        let source = Iota { n: 400 };
        let morsels = tile(&[100, 200, 300]);
        let budget = QueryBudget::new();
        let monitor = ExecMonitor::new(&budget);
        let mut sink = PoisonOnFirstAbsorb { inner: CollectSink::new(), armed: true };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = try_drive(&source, &morsels, 4, &mut sink, &monitor);
        std::panic::set_hook(prev);
        match result {
            Err(ExecError::WorkerPanicked { payload }) => {
                assert!(payload.contains("merger lock"), "{payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }

        let mut serial = CollectSink::new();
        drive(&source, &morsels, 1, &mut serial);
        let expected = serial.into_rows();
        let rerun_monitor = ExecMonitor::new(&budget);
        let mut rerun = CollectSink::new();
        let report = try_drive(&source, &morsels, 4, &mut rerun, &rerun_monitor)
            .expect("the fault must not stick to source or morsels");
        assert_eq!(rerun.into_rows(), expected, "byte-identical after the poisoned run");
        assert_eq!(report.rows, 400);
    }
}
