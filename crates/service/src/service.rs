//! The [`Service`]: one shared database, many concurrent sessions.
//!
//! A service owns an `Arc<Database>` behind an epoch-stamped `RwLock`.
//! Sessions read by cloning the `Arc` (a snapshot: queries never see a
//! half-applied update), updates copy-on-write the database and swap the
//! `Arc` under the write lock, bumping the epoch. Because every clone of a
//! [`Database`](graphjoin::Database) shares one
//! [`IndexCache`](graphjoin::IndexCache), trie indexes built by any session
//! warm all the others.
//!
//! Execution is bounded on two axes: the admission [`Gate`] caps concurrent
//! queries (typed [`ExecError::Saturated`](gj_runtime::ExecError) rejections
//! past capacity), and every query runs under a
//! [`QueryBudget`](gj_runtime::QueryBudget) — the session default or a caller
//! override carrying deadlines, row caps and a
//! [`CancelToken`](gj_runtime::CancelToken).

use crate::admission::Gate;
use crate::history::{check_history, HistoryLog, SessionEvent};
use gj_runtime::QueryBudget;
use gj_storage::Relation;
use graphjoin::{Database, Engine, EngineError, Query};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queries allowed to execute concurrently (clamped to at least 1).
    pub max_concurrent: usize,
    /// Callers allowed to wait for a slot before admission rejects with
    /// `ExecError::Saturated`.
    pub queue_depth: usize,
    /// Worker threads each admitted query executes on.
    pub exec_threads: usize,
    /// Budget applied to queries issued without an explicit one.
    pub default_budget: QueryBudget,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let parallelism =
            std::thread::available_parallelism().map(usize::from).unwrap_or(4).clamp(1, 8);
        ServiceConfig {
            max_concurrent: parallelism,
            queue_depth: 2 * parallelism,
            exec_threads: 1,
            default_budget: QueryBudget::new(),
        }
    }
}

/// Shared state behind every session of one service.
#[derive(Debug)]
struct ServiceInner {
    /// Epoch-stamped current database. The pair is swapped atomically under
    /// the write lock so a reader always sees a consistent (epoch, snapshot).
    db: RwLock<(u64, Arc<Database>)>,
    gate: Gate,
    history: HistoryLog,
    next_session: AtomicU64,
    config: ServiceConfig,
}

impl ServiceInner {
    fn snapshot(&self) -> (u64, Arc<Database>) {
        let guard = self.db.read().unwrap_or_else(PoisonError::into_inner);
        (guard.0, Arc::clone(&guard.1))
    }
}

/// A concurrent serving layer over one shared [`Database`].
///
/// Cheap to clone; all clones (and all [`Session`]s) share the same database,
/// admission gate and history log.
#[derive(Debug, Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Creates a service over `db` with the given configuration.
    pub fn new(db: impl Into<Arc<Database>>, config: ServiceConfig) -> Self {
        let gate = Gate::new(config.max_concurrent, config.queue_depth);
        Service {
            inner: Arc::new(ServiceInner {
                db: RwLock::new((0, db.into())),
                gate,
                history: HistoryLog::new(),
                next_session: AtomicU64::new(0),
                config,
            }),
        }
    }

    /// Creates a service with [`ServiceConfig::default`].
    pub fn with_defaults(db: impl Into<Arc<Database>>) -> Self {
        Self::new(db, ServiceConfig::default())
    }

    /// Opens a new session. Sessions are `Send` and independent: hand one to
    /// each client thread.
    pub fn session(&self) -> Session {
        Session {
            inner: Arc::clone(&self.inner),
            id: self.inner.next_session.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(0),
        }
    }

    /// Replaces relation `name` for all *future* snapshots and returns the new
    /// epoch. In-flight queries keep their old snapshot. The update event is
    /// recorded while the write lock is held, so log order is epoch order.
    pub fn update_relation(&self, name: impl Into<String>, relation: Relation) -> u64 {
        let name = name.into();
        let mut guard = self.inner.db.write().unwrap_or_else(PoisonError::into_inner);
        let mut next = (*guard.1).clone();
        next.add_relation(name.clone(), relation.clone());
        guard.0 += 1;
        guard.1 = Arc::new(next);
        let epoch = guard.0;
        self.inner.history.record(SessionEvent::Update { epoch, name, relation });
        epoch
    }

    /// Applies one incremental edit batch to relation `name` (`ins` rows
    /// enter, `del` rows leave — see [`Database::edit_rows`]) and returns the
    /// resulting epoch. The database is copied-on-write under the write lock:
    /// the copy's cached trie indexes absorb the edit through their delta
    /// layers (no rebuild), in-flight queries keep their old snapshot, and
    /// the resulting relation is recorded as an update event so
    /// [`verify_history`](Self::verify_history) replays it exactly. A batch
    /// that changes nothing returns the current epoch without bumping it.
    pub fn edit_relation(
        &self,
        name: &str,
        ins: &[Vec<i64>],
        del: &[Vec<i64>],
    ) -> Result<u64, EngineError> {
        self.apply_edit(name, |db| db.edit_rows(name, ins, del))
    }

    /// Incrementally inserts rows into relation `name` for all future
    /// snapshots (see [`edit_relation`](Self::edit_relation)).
    pub fn insert_rows(&self, name: &str, rows: &[Vec<i64>]) -> Result<u64, EngineError> {
        self.edit_relation(name, rows, &[])
    }

    /// Incrementally deletes rows from relation `name` for all future
    /// snapshots (see [`edit_relation`](Self::edit_relation)).
    pub fn delete_rows(&self, name: &str, rows: &[Vec<i64>]) -> Result<u64, EngineError> {
        self.edit_relation(name, &[], rows)
    }

    /// Incrementally inserts undirected edges (both orientations of the
    /// `"edge"` relation; the attached graph view grows to fit new
    /// endpoints). Returns the resulting epoch.
    pub fn insert_edges(&self, edges: &[(u32, u32)]) -> Result<u64, EngineError> {
        self.apply_edit("edge", |db| db.insert_edges(edges))
    }

    /// Incrementally deletes undirected edges (both orientations leave the
    /// `"edge"` relation). Returns the resulting epoch.
    pub fn delete_edges(&self, edges: &[(u32, u32)]) -> Result<u64, EngineError> {
        self.apply_edit("edge", |db| db.delete_edges(edges))
    }

    /// Shared copy-on-write edit path: runs `edit` against a clone of the
    /// current database, and publishes the clone (bumping the epoch and
    /// recording the resulting relation) only if it changed something. The
    /// edit validates before any state is touched, so a rejected batch leaves
    /// the service exactly as it was.
    fn apply_edit(
        &self,
        name: &str,
        edit: impl FnOnce(&mut Database) -> Result<usize, EngineError>,
    ) -> Result<u64, EngineError> {
        let mut guard = self.inner.db.write().unwrap_or_else(PoisonError::into_inner);
        let mut next = (*guard.1).clone();
        let changed = edit(&mut next)?;
        if changed == 0 {
            return Ok(guard.0);
        }
        let relation = next
            .instance()
            .relation(name)
            .cloned()
            .ok_or_else(|| EngineError::Edit(format!("edited relation {name:?} vanished")))?;
        guard.0 += 1;
        guard.1 = Arc::new(next);
        let epoch = guard.0;
        self.inner.history.record(SessionEvent::Update { epoch, name: name.to_string(), relation });
        Ok(epoch)
    }

    /// The current snapshot (epoch advances as updates land).
    pub fn snapshot(&self) -> Arc<Database> {
        self.inner.snapshot().1
    }

    /// The current epoch: 0 at creation, +1 per update.
    pub fn epoch(&self) -> u64 {
        self.inner.snapshot().0
    }

    /// Queries currently executing or queued for admission.
    pub fn in_flight(&self) -> usize {
        self.inner.gate.in_flight()
    }

    /// A point-in-time copy of the recorded history.
    pub fn history(&self) -> Vec<SessionEvent> {
        self.inner.history.events()
    }

    /// Black-box serializability check: replays the recorded history against
    /// `base` (the state this service was created over) on a single thread
    /// and verifies every session read. See [`check_history`].
    pub fn verify_history(&self, base: &Database) -> Result<(), String> {
        check_history(base, &self.history())
    }
}

/// One client's handle on a [`Service`]: issues queries against the current
/// snapshot, under admission control and a per-query budget.
#[derive(Debug)]
pub struct Session {
    inner: Arc<ServiceInner>,
    id: u64,
    seq: AtomicU64,
}

impl Session {
    /// This session's service-unique id (also recorded in the history log).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Counts the answers of `query` under the service's default budget.
    pub fn count(&self, query: &Query, engine: &Engine) -> Result<u64, EngineError> {
        let budget = self.inner.config.default_budget.clone();
        self.count_with(query, engine, &budget)
    }

    /// Counts the answers of `query` under an explicit `budget` (deadline,
    /// row cap, cancel token).
    ///
    /// The full pipeline: admission (may reject with a typed
    /// `ExecError::Saturated`), snapshot the current (epoch, database) pair,
    /// prepare against the shared index cache, execute on the service's
    /// worker threads, and — only on success — record the read in the
    /// history log.
    pub fn count_with(
        &self,
        query: &Query,
        engine: &Engine,
        budget: &QueryBudget,
    ) -> Result<u64, EngineError> {
        let _permit = self.inner.gate.admit().map_err(EngineError::Exec)?;
        let (epoch, db) = self.inner.snapshot();
        let prepared = db.prepare(query, engine)?;
        let count = prepared.try_par_count(self.inner.config.exec_threads, budget)?;
        self.record_read(epoch, query, engine, count);
        Ok(count)
    }

    /// Collects the answers of `query` under the service's default budget.
    /// The read is recorded by its row count.
    pub fn collect(&self, query: &Query, engine: &Engine) -> Result<Vec<Vec<i64>>, EngineError> {
        let budget = self.inner.config.default_budget.clone();
        self.collect_with(query, engine, &budget)
    }

    /// [`collect`](Self::collect) under an explicit budget.
    pub fn collect_with(
        &self,
        query: &Query,
        engine: &Engine,
        budget: &QueryBudget,
    ) -> Result<Vec<Vec<i64>>, EngineError> {
        let _permit = self.inner.gate.admit().map_err(EngineError::Exec)?;
        let (epoch, db) = self.inner.snapshot();
        let prepared = db.prepare(query, engine)?;
        let rows = prepared.try_collect(budget)?;
        self.record_read(epoch, query, engine, rows.len() as u64);
        Ok(rows)
    }

    fn record_read(&self, epoch: u64, query: &Query, engine: &Engine, count: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.history.record(SessionEvent::Read {
            session: self.id,
            seq,
            epoch,
            query: query.clone(),
            engine: engine.clone(),
            count,
        });
    }
}
