//! Session-history recording and black-box serializability checking.
//!
//! The service appends one [`SessionEvent`] per successful read and per
//! update. Updates are recorded *while holding the database write lock*, so
//! their position in the log is their epoch order; reads record the epoch of
//! the snapshot they executed against. [`check_history`] then replays the
//! updates into a chain of epoch snapshots and re-executes every read
//! serially: the history is valid iff each read's count matches what a
//! single-threaded client would have seen at that epoch. This is a black-box
//! checker — it exercises the public prepare/execute surface only.

use gj_storage::Relation;
use graphjoin::{Database, Engine, Query};
use std::sync::{Mutex, PoisonError};

/// One entry in a service's history log.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// A successful read: `session`'s `seq`-th query, executed against the
    /// snapshot of `epoch`, observed `count` rows.
    Read {
        /// Session that issued the query.
        session: u64,
        /// Per-session sequence number of the query.
        seq: u64,
        /// Database epoch the query's snapshot was taken at.
        epoch: u64,
        /// The query that ran.
        query: Query,
        /// Engine it ran on.
        engine: Engine,
        /// Row count the session observed.
        count: u64,
    },
    /// A committed update: replacing relation `name` produced `epoch`.
    Update {
        /// The epoch this update produced (first update produces epoch 1).
        epoch: u64,
        /// Relation replaced.
        name: String,
        /// Its new contents.
        relation: Relation,
    },
}

/// A thread-safe, append-only log of [`SessionEvent`]s.
#[derive(Debug, Default)]
pub struct HistoryLog {
    events: Mutex<Vec<SessionEvent>>,
}

impl HistoryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn record(&self, event: SessionEvent) {
        self.lock().push(event);
    }

    /// A point-in-time copy of the whole log.
    pub fn events(&self) -> Vec<SessionEvent> {
        self.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SessionEvent>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Verifies a concurrent history against serial re-execution.
///
/// `base` must be the database state at epoch 0 (before any recorded update).
/// Replays every [`SessionEvent::Update`] in log order to materialise the
/// snapshot chain, then re-runs every [`SessionEvent::Read`] against its
/// epoch's snapshot on a single thread and compares counts. Returns a
/// human-readable description of the first divergence.
pub fn check_history(base: &Database, events: &[SessionEvent]) -> Result<(), String> {
    let mut snapshots: Vec<Database> = vec![base.clone()];
    for event in events {
        if let SessionEvent::Update { epoch, name, relation } = event {
            if *epoch as usize != snapshots.len() {
                return Err(format!(
                    "update '{name}' recorded at epoch {epoch}, expected epoch {}: \
                     updates must be logged in epoch order",
                    snapshots.len()
                ));
            }
            let mut next = snapshots[snapshots.len() - 1].clone();
            next.add_relation(name.clone(), relation.clone());
            snapshots.push(next);
        }
    }
    for event in events {
        if let SessionEvent::Read { session, seq, epoch, query, engine, count } = event {
            let snapshot = snapshots.get(*epoch as usize).ok_or_else(|| {
                format!(
                    "session {session} read at epoch {epoch}, but only {} epochs exist",
                    snapshots.len()
                )
            })?;
            let serial = snapshot
                .count(query, engine)
                .map_err(|e| format!("serial re-execution of '{}' failed: {e}", query.name))?;
            if serial != *count {
                return Err(format!(
                    "session {session} query #{seq} ('{}', {engine:?}) at epoch {epoch}: \
                     observed {count}, serial replay says {serial}",
                    query.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_storage::Graph;
    use graphjoin::CatalogQuery;

    fn base() -> Database {
        let mut db = Database::new();
        db.add_graph(Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]));
        db
    }

    #[test]
    fn valid_history_passes() {
        let db = base();
        let q = CatalogQuery::ThreeClique.query();
        let events = vec![
            SessionEvent::Read {
                session: 1,
                seq: 0,
                epoch: 0,
                query: q.clone(),
                engine: Engine::Lftj,
                count: 2,
            },
            SessionEvent::Update {
                epoch: 1,
                name: "edge".into(),
                relation: Relation::from_flat(2, vec![0, 1, 1, 0, 1, 2, 2, 1, 0, 2, 2, 0]),
            },
            SessionEvent::Read {
                session: 2,
                seq: 0,
                epoch: 1,
                query: q,
                engine: Engine::Lftj,
                count: 1,
            },
        ];
        check_history(&db, &events).unwrap();
    }

    #[test]
    fn wrong_count_is_reported() {
        let db = base();
        let q = CatalogQuery::ThreeClique.query();
        let events = vec![SessionEvent::Read {
            session: 7,
            seq: 3,
            epoch: 0,
            query: q,
            engine: Engine::Lftj,
            count: 999,
        }];
        let err = check_history(&db, &events).unwrap_err();
        assert!(err.contains("session 7"), "diagnostic names the session: {err}");
        assert!(err.contains("999"), "diagnostic includes the bad count: {err}");
    }

    #[test]
    fn out_of_order_updates_are_rejected() {
        let db = base();
        let events = vec![SessionEvent::Update {
            epoch: 5,
            name: "x".into(),
            relation: Relation::from_values(vec![1]),
        }];
        assert!(check_history(&db, &events).is_err());
    }

    #[test]
    fn reads_at_unknown_epochs_are_rejected() {
        let db = base();
        let events = vec![SessionEvent::Read {
            session: 1,
            seq: 0,
            epoch: 3,
            query: CatalogQuery::ThreeClique.query(),
            engine: Engine::Lftj,
            count: 2,
        }];
        assert!(check_history(&db, &events).is_err());
    }
}
