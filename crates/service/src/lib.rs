//! # gj-service
//!
//! A concurrent serving layer over the `graphjoin` engine: many sessions,
//! one shared snapshot-versioned [`Database`](graphjoin::Database), bounded
//! admission, typed rejections, and a black-box serializability checker.
//!
//! * [`Service`] owns the current database behind an epoch-stamped lock;
//!   [`Service::session`] hands out independent [`Session`] handles that
//!   execute queries against consistent snapshots (an update never tears a
//!   running query). All snapshots share one
//!   [`IndexCache`](graphjoin::IndexCache), so indexes built by any session
//!   warm the rest.
//! * [`Gate`] bounds concurrency: `max_concurrent` executing queries plus a
//!   `queue_depth` wait queue, with immediate typed
//!   [`ExecError::Saturated`](gj_runtime::ExecError) rejections past that —
//!   the service sheds load, it never queues unboundedly or panics.
//! * Every query runs under a [`QueryBudget`](gj_runtime::QueryBudget):
//!   deadlines, row caps and per-query cancellation via
//!   [`CancelToken`](gj_runtime::CancelToken) all surface as typed
//!   `EngineError::Exec` aborts.
//! * [`HistoryLog`] records every successful read and every update;
//!   [`check_history`] replays the log serially and verifies that each
//!   session observed exactly what some single serial order of the updates
//!   would have produced.
//!
//! ```
//! use gj_service::{Service, ServiceConfig};
//! use graphjoin::{CatalogQuery, Database, Engine};
//! use gj_storage::Graph;
//!
//! let mut db = Database::new();
//! db.add_graph(Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]));
//! let base = db.clone();
//!
//! let service = Service::new(db, ServiceConfig::default());
//! let session = service.session();
//! let q = CatalogQuery::ThreeClique.query();
//! assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), 2);
//!
//! // Every read was recorded; the checker replays them serially.
//! service.verify_history(&base).unwrap();
//! ```

/// Bounded admission: the [`Gate`], its RAII [`Permit`]s, typed rejections.
pub mod admission;
/// History recording ([`HistoryLog`]) and the serial replay checker.
pub mod history;
/// Seeded traffic-mix traces ([`TrafficOp`]) and their concurrent replay.
pub mod replay;
/// The [`Service`] / [`Session`] surface over one shared database.
pub mod service;

pub use admission::{Gate, Permit};
pub use history::{check_history, HistoryLog, SessionEvent};
pub use replay::{generate_trace, replay, replay_verified, ReplayReport, TraceConfig, TrafficOp};
pub use service::{Service, ServiceConfig, Session};

#[cfg(test)]
mod tests {
    use super::*;
    use gj_runtime::{CancelToken, ExecError, QueryBudget};
    use gj_storage::{Graph, Relation};
    use graphjoin::{CatalogQuery, Database, Engine, EngineError};

    fn sample() -> Database {
        let mut db = Database::new();
        db.add_graph(Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]));
        db
    }

    #[test]
    fn sessions_share_the_snapshot_and_record_history() {
        let db = sample();
        let base = db.clone();
        let service = Service::with_defaults(db);
        let q = CatalogQuery::ThreeClique.query();
        let s1 = service.session();
        let s2 = service.session();
        assert_eq!(s1.count(&q, &Engine::Lftj).unwrap(), 2);
        assert_eq!(s2.count(&q, &Engine::minesweeper()).unwrap(), 2);
        assert_eq!(s2.collect(&q, &Engine::Lftj).unwrap().len(), 2);
        assert_eq!(service.history().len(), 3);
        service.verify_history(&base).unwrap();
    }

    #[test]
    fn updates_bump_the_epoch_and_future_reads_see_them() {
        let db = sample();
        let base = db.clone();
        let service = Service::with_defaults(db);
        let q = CatalogQuery::ThreeClique.query();
        let session = service.session();
        assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), 2);
        assert_eq!(service.epoch(), 0);
        // Shrink the edge relation to a single (bidirectional) triangle.
        let epoch = service.update_relation(
            "edge",
            Relation::from_flat(2, vec![0, 1, 1, 0, 1, 2, 2, 1, 0, 2, 2, 0]),
        );
        assert_eq!(epoch, 1);
        assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), 1);
        service.verify_history(&base).unwrap();
    }

    #[test]
    fn incremental_edits_version_the_snapshot_and_replay_serially() {
        let db = sample();
        let base = db.clone();
        let service = Service::with_defaults(db);
        let q = CatalogQuery::ThreeClique.query();
        let session = service.session();
        assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), 2);
        let before = service.snapshot();

        // Walk the triangle count through a delete, an edge insert, and a
        // raw-row re-insert, reading after each edit.
        assert_eq!(service.delete_edges(&[(1, 2)]).unwrap(), 1);
        assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), 0);
        assert_eq!(service.insert_edges(&[(0, 3)]).unwrap(), 2);
        assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), 2, "{{0, 1, 3}} and {{0, 2, 3}}");
        assert_eq!(service.edit_relation("edge", &[vec![1, 2], vec![2, 1]], &[]).unwrap(), 3);
        assert_eq!(session.count(&q, &Engine::Lftj).unwrap(), 4);

        // A no-op batch does not bump the epoch or pollute the history.
        assert_eq!(service.insert_rows("edge", &[vec![0, 1]]).unwrap(), 3);
        assert_eq!(service.epoch(), 3);
        // A malformed batch is rejected atomically.
        assert!(service.delete_rows("nope", &[vec![1]]).is_err());
        assert_eq!(service.epoch(), 3);

        // The pre-edit snapshot still answers with the old state, and the
        // whole interleaving is serially consistent.
        assert_eq!(before.count(&q, &Engine::Lftj).unwrap(), 2);
        service.verify_history(&base).unwrap();
    }

    #[test]
    fn snapshots_are_stable_across_updates() {
        let db = sample();
        let service = Service::with_defaults(db);
        let before = service.snapshot();
        service.update_relation("edge", Relation::from_flat(2, vec![0, 1, 1, 0]));
        let q = CatalogQuery::ThreeClique.query();
        // The pre-update snapshot still answers with the old state.
        assert_eq!(before.count(&q, &Engine::Lftj).unwrap(), 2);
        assert_eq!(service.snapshot().count(&q, &Engine::Lftj).unwrap(), 0);
    }

    #[test]
    fn cancellation_and_budgets_surface_as_typed_errors() {
        let db = sample();
        let service = Service::with_defaults(db);
        let session = service.session();
        let q = CatalogQuery::ThreeClique.query();
        let token = CancelToken::new();
        token.cancel();
        let budget = QueryBudget::new().with_cancel_token(token);
        match session.count_with(&q, &Engine::Lftj, &budget) {
            Err(EngineError::Exec(e)) => assert_eq!(e.kind(), "cancelled"),
            other => panic!("expected a cancelled abort, got {other:?}"),
        }
        // A cancelled read is not recorded: the history stays serially valid.
        assert!(service.history().is_empty());
    }

    #[test]
    fn saturation_rejections_are_typed_and_capacity_recovers() {
        let db = sample();
        let base = db.clone();
        let service = Service::new(
            db,
            ServiceConfig { max_concurrent: 1, queue_depth: 0, ..ServiceConfig::default() },
        );
        let probe = service.session();
        let q = CatalogQuery::ThreeClique.query();
        std::thread::scope(|s| {
            let svc = service.clone();
            let query = q.clone();
            // The blocker is a contender too: with one slot and no queue its
            // own admissions can lose the race, so it tolerates Saturated.
            let blocker = s.spawn(move || {
                let session = svc.session();
                for _ in 0..64 {
                    match session.count(&query, &Engine::Lftj) {
                        Ok(n) => assert_eq!(n, 2),
                        Err(EngineError::Exec(ExecError::Saturated { .. })) => {}
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                }
            });
            // Race admissions against the blocker; with one slot and no queue
            // every loser of the race gets a typed Saturated rejection.
            for _ in 0..256 {
                match probe.count(&q, &Engine::Lftj) {
                    Ok(n) => assert_eq!(n, 2),
                    Err(EngineError::Exec(ExecError::Saturated { active, capacity })) => {
                        assert!(active >= capacity, "rejection only at capacity");
                    }
                    Err(other) => panic!("unexpected error: {other:?}"),
                }
            }
            blocker.join().unwrap();
        });
        // Capacity recovered, the service still answers, and everything that
        // did succeed is serially consistent.
        assert_eq!(service.in_flight(), 0);
        assert_eq!(probe.count(&q, &Engine::Lftj).unwrap(), 2);
        service.verify_history(&base).unwrap();
    }
}
