//! Traffic-mix replay: seeded interleavings of reads and incremental edits.
//!
//! The serving layer's history checker ([`check_history`](crate::check_history))
//! is only as strong as the traffic driven through it. This module generates a
//! deterministic *traffic trace* — a shuffled mix of pattern queries and
//! `insert/delete` edit batches over named relations — and replays it through a
//! [`Service`] from several concurrent sessions. Saturation rejections and
//! deliberately-cancelled reads are tolerated (and counted); everything that
//! succeeds must afterwards pass the serial-replay history check.
//!
//! The trace generator samples edit rows from the *current* database contents:
//! deletes pick existing rows, inserts re-shape existing rows by perturbing
//! their first column, so batches stay inside the relation's value regime
//! without the generator having to know the schema.

use crate::service::Service;
use gj_runtime::{CancelToken, ExecError, QueryBudget};
use graphjoin::{Database, Engine, EngineError, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of a traffic trace.
#[derive(Debug, Clone)]
pub enum TrafficOp {
    /// Count the answers of `query` through `engine`. When `cancel` is set the
    /// read runs under a pre-cancelled token: it must abort with a typed
    /// `cancelled` error and must *not* be recorded in the history.
    Read {
        /// The pattern query to count.
        query: Query,
        /// The engine that executes it.
        engine: Engine,
        /// Run under a pre-cancelled budget (abort path coverage).
        cancel: bool,
    },
    /// Apply one incremental edit batch to `relation`.
    Edit {
        /// The relation the batch targets.
        relation: String,
        /// Rows entering the relation.
        ins: Vec<Vec<i64>>,
        /// Rows leaving the relation.
        del: Vec<Vec<i64>>,
    },
}

/// Shape knobs for [`generate_trace`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Total operations in the trace.
    pub ops: usize,
    /// Fraction of operations that are edit batches (the rest are reads).
    pub edit_fraction: f64,
    /// Fraction of *reads* issued with a pre-cancelled token.
    pub cancel_fraction: f64,
    /// Maximum rows per edit batch (inserts and deletes each).
    pub max_batch: usize,
    /// Seed; traces are deterministic per (database, config).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { ops: 120, edit_fraction: 0.25, cancel_fraction: 0.1, max_batch: 4, seed: 7 }
    }
}

/// Tallies from one [`replay`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Reads that completed and were recorded in the history.
    pub reads: u64,
    /// Total rows counted across completed reads.
    pub read_rows: u64,
    /// Edit batches applied.
    pub edits: u64,
    /// Reads shed with a typed `Saturated` rejection.
    pub saturated: u64,
    /// Reads aborted by their pre-cancelled budget.
    pub cancelled: u64,
    /// The service epoch after the replay.
    pub final_epoch: u64,
}

/// Generates a deterministic traffic trace over `db`.
///
/// `queries` supplies the read mix (each read picks one entry uniformly);
/// `edit_relations` names the relations edit batches may target. Relations
/// that are missing or empty in `db` are skipped when sampling edit rows, so
/// a trace never contains an unapplicable batch.
pub fn generate_trace(
    db: &Database,
    queries: &[(Query, Engine)],
    edit_relations: &[&str],
    config: &TraceConfig,
) -> Vec<TrafficOp> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ops = Vec::with_capacity(config.ops);
    if queries.is_empty() && edit_relations.is_empty() {
        return ops;
    }
    // Tombstone pool per relation: rows deleted earlier in the trace are
    // preferred re-inserts, so the relation drifts instead of shrinking.
    let mut deleted: Vec<(String, Vec<i64>)> = Vec::new();
    for _ in 0..config.ops {
        let want_edit =
            !edit_relations.is_empty() && rng.gen_bool(config.edit_fraction.clamp(0.0, 1.0));
        if !want_edit && !queries.is_empty() {
            let (query, engine) = &queries[rng.gen_range(0..queries.len())];
            let cancel = rng.gen_bool(config.cancel_fraction.clamp(0.0, 1.0));
            ops.push(TrafficOp::Read { query: query.clone(), engine: engine.clone(), cancel });
            continue;
        }
        if edit_relations.is_empty() {
            continue;
        }
        let relation = edit_relations[rng.gen_range(0..edit_relations.len())];
        let Some(rel) = db.instance().relation(relation) else { continue };
        if rel.is_empty() {
            continue;
        }
        let batch = 1 + rng.gen_range(0..config.max_batch.max(1));
        let mut del = Vec::with_capacity(batch);
        for _ in 0..batch {
            let i = rng.gen_range(0..rel.len());
            if let Some(row) = rel.iter().nth(i) {
                del.push(row.to_vec());
            }
        }
        let mut ins = Vec::with_capacity(batch);
        for _ in 0..batch {
            // Prefer re-inserting a previously deleted row of this relation.
            if let Some(pos) = deleted.iter().position(|(r, _)| r == relation) {
                if rng.gen_bool(0.5) {
                    ins.push(deleted.swap_remove(pos).1);
                    continue;
                }
            }
            // Otherwise perturb an existing row's first column a little: the
            // new row stays in the relation's value regime.
            let i = rng.gen_range(0..rel.len());
            if let Some(row) = rel.iter().nth(i) {
                let mut row = row.to_vec();
                row[0] += rng.gen_range(1..4i64);
                ins.push(row);
            }
        }
        for row in &del {
            deleted.push((relation.to_string(), row.clone()));
        }
        ops.push(TrafficOp::Edit { relation: relation.to_string(), ins, del });
    }
    ops
}

/// Replays `trace` through `service` on `workers` concurrent sessions
/// (operations round-robin across workers) and aggregates a [`ReplayReport`].
///
/// Tolerated, counted outcomes: `Saturated` admissions rejections and the
/// aborts of deliberately-cancelled reads. Any other error — and any worker
/// panic — fails the replay.
pub fn replay(
    service: &Service,
    trace: &[TrafficOp],
    workers: usize,
) -> Result<ReplayReport, EngineError> {
    let worker_reports =
        gj_runtime::scoped_workers(workers.max(1), |w| -> Result<ReplayReport, EngineError> {
            let session = service.session();
            let mut report = ReplayReport::default();
            for op in trace.iter().skip(w).step_by(workers.max(1)) {
                match op {
                    TrafficOp::Read { query, engine, cancel } => {
                        let result = if *cancel {
                            let token = CancelToken::new();
                            token.cancel();
                            let budget = QueryBudget::new().with_cancel_token(token);
                            session.count_with(query, engine, &budget)
                        } else {
                            session.count(query, engine)
                        };
                        match result {
                            Ok(count) => {
                                report.reads += 1;
                                report.read_rows += count;
                            }
                            Err(EngineError::Exec(ExecError::Saturated { .. })) => {
                                report.saturated += 1;
                            }
                            Err(EngineError::Exec(e)) if *cancel && e.kind() == "cancelled" => {
                                report.cancelled += 1;
                            }
                            Err(other) => return Err(other),
                        }
                    }
                    TrafficOp::Edit { relation, ins, del } => {
                        service.edit_relation(relation, ins, del)?;
                        report.edits += 1;
                    }
                }
            }
            Ok(report)
        });
    let mut total = ReplayReport::default();
    for worker in worker_reports {
        let report = worker.map_err(EngineError::Exec)??;
        total.reads += report.reads;
        total.read_rows += report.read_rows;
        total.edits += report.edits;
        total.saturated += report.saturated;
        total.cancelled += report.cancelled;
    }
    total.final_epoch = service.epoch();
    Ok(total)
}

/// [`replay`] plus the gate: runs the trace, then verifies the recorded
/// history against `base` (the database the service was created over) with
/// the serial-replay checker. Returns the report only if the whole
/// interleaving is serially consistent.
pub fn replay_verified(
    service: &Service,
    base: &Database,
    trace: &[TrafficOp],
    workers: usize,
) -> Result<ReplayReport, EngineError> {
    let report = replay(service, trace, workers)?;
    service.verify_history(base).map_err(EngineError::Edit)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use gj_storage::Graph;
    use graphjoin::CatalogQuery;

    fn sample() -> Database {
        let mut db = Database::new();
        db.add_graph(Graph::new_undirected(
            6,
            vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (3, 5)],
        ));
        db
    }

    #[test]
    fn traces_are_deterministic_and_respect_the_mix() {
        let db = sample();
        let queries = vec![(CatalogQuery::ThreeClique.query(), Engine::Lftj)];
        let config = TraceConfig { ops: 200, edit_fraction: 0.3, ..TraceConfig::default() };
        let a = generate_trace(&db, &queries, &["edge"], &config);
        let b = generate_trace(&db, &queries, &["edge"], &config);
        assert_eq!(a.len(), 200);
        assert_eq!(
            a.iter().map(|op| matches!(op, TrafficOp::Edit { .. })).collect::<Vec<_>>(),
            b.iter().map(|op| matches!(op, TrafficOp::Edit { .. })).collect::<Vec<_>>(),
        );
        let edits = a.iter().filter(|op| matches!(op, TrafficOp::Edit { .. })).count();
        assert!(edits > 20 && edits < 120, "edit mix off: {edits}/200");
        assert!(generate_trace(&db, &[], &[], &config).is_empty());
    }

    #[test]
    fn replay_applies_edits_and_passes_the_history_gate() {
        let db = sample();
        let base = db.clone();
        let queries = vec![
            (CatalogQuery::ThreeClique.query(), Engine::Lftj),
            (CatalogQuery::ThreeClique.query(), Engine::minesweeper()),
        ];
        let config = TraceConfig { ops: 60, seed: 11, ..TraceConfig::default() };
        let trace = generate_trace(&db, &queries, &["edge"], &config);
        let service = Service::new(db, ServiceConfig::default());
        let report = replay_verified(&service, &base, &trace, 3).unwrap();
        assert!(report.reads > 0, "no reads completed");
        assert!(report.edits > 0, "no edits applied");
        assert_eq!(report.final_epoch, service.epoch());
        assert_eq!(
            report.reads + report.cancelled + report.saturated + report.edits,
            trace.len() as u64
        );
    }
}
