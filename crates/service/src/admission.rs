//! Bounded admission control for the serving layer.
//!
//! A [`Gate`] enforces two limits: at most `max_active` queries execute at
//! once, and at most `queue_depth` callers may *wait* for a slot. A caller
//! beyond both limits is rejected immediately with
//! [`ExecError::Saturated`](gj_runtime::ExecError) — the service sheds load
//! with a typed error
//! instead of queueing unboundedly or panicking.
//!
//! Admission hands out RAII [`Permit`]s: dropping a permit releases its slot
//! and wakes one waiter, so a panicking query (caught at the engine's worker
//! boundary) can never leak capacity.

use gj_runtime::ExecError;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Mutable gate state: how many permits are out, how many callers are parked.
#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// A bounded admission gate: `max_active` concurrent slots plus a
/// `queue_depth`-bounded wait queue, rejections typed as
/// [`ExecError::Saturated`].
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_active: usize,
    queue_depth: usize,
}

impl Gate {
    /// Creates a gate with `max_active` concurrent slots and room for
    /// `queue_depth` waiters. Both are clamped to at least one slot total
    /// (`max_active >= 1`).
    pub fn new(max_active: usize, queue_depth: usize) -> Self {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            queue_depth,
        }
    }

    /// Total admission capacity: concurrent slots plus queue depth.
    pub fn capacity(&self) -> usize {
        self.max_active + self.queue_depth
    }

    /// Queries currently executing or parked waiting for a slot.
    pub fn in_flight(&self) -> usize {
        let st = self.lock();
        st.active + st.waiting
    }

    /// Acquires an execution slot, blocking in the bounded wait queue if all
    /// slots are busy. Returns [`ExecError::Saturated`] without blocking when
    /// the queue is full too; the caller may retry later.
    pub fn admit(&self) -> Result<Permit<'_>, ExecError> {
        let mut st = self.lock();
        if st.active < self.max_active {
            st.active += 1;
            return Ok(Permit { gate: self });
        }
        if st.waiting >= self.queue_depth {
            return Err(ExecError::Saturated {
                active: st.active + st.waiting,
                capacity: self.capacity(),
            });
        }
        st.waiting += 1;
        while st.active >= self.max_active {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.waiting -= 1;
        st.active += 1;
        Ok(Permit { gate: self })
    }

    fn release(&self) {
        let mut st = self.lock();
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.cv.notify_one();
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An admitted execution slot; dropping it releases the slot and wakes one
/// parked waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_rejects_typed() {
        let gate = Gate::new(2, 1);
        let p1 = gate.admit().unwrap();
        let p2 = gate.admit().unwrap();
        assert_eq!(gate.in_flight(), 2);
        // Third caller would have to wait; simulate a full queue by parking a
        // real waiter from another thread, then overflow from this one.
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let _p = gate.admit().unwrap(); // parks until p1 drops
            });
            // Wait until the waiter is actually parked.
            while gate.in_flight() < 3 {
                std::thread::yield_now();
            }
            let err = gate.admit().unwrap_err();
            match err {
                ExecError::Saturated { active, capacity } => {
                    assert_eq!(active, 3);
                    assert_eq!(capacity, 3);
                }
                other => panic!("expected Saturated, got {other:?}"),
            }
            drop(p1);
            waiter.join().unwrap();
        });
        assert_eq!(gate.in_flight(), 1, "only p2 is still held");
        drop(p2);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn dropping_a_permit_wakes_a_waiter() {
        let gate = Gate::new(1, 4);
        let p = gate.admit().unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| gate.admit().map(drop).is_ok());
            while gate.in_flight() < 2 {
                std::thread::yield_now();
            }
            drop(p);
            assert!(h.join().unwrap());
        });
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_max_active_is_clamped_to_one() {
        let gate = Gate::new(0, 0);
        let p = gate.admit().unwrap();
        assert!(gate.admit().is_err());
        drop(p);
        assert!(gate.admit().is_ok());
    }
}
