//! Domain values and tuples.
//!
//! The paper treats attribute domains as the natural numbers `N` and uses `-1` and
//! `±∞` as sentinels inside Minesweeper (the moving frontier starts at `(-1, …, -1)`
//! and gap intervals may be open at `-∞`/`+∞`). Using a signed 64-bit integer keeps
//! all of those representable without a wrapper enum.

/// A single domain value (a node identifier in the graph workloads).
pub type Val = i64;

/// A tuple of domain values.
pub type Tuple = Vec<Val>;

/// Sentinel for `-∞`: strictly smaller than every legal data value.
pub const NEG_INF: Val = i64::MIN;

/// Sentinel for `+∞`: strictly larger than every legal data value.
pub const POS_INF: Val = i64::MAX;

/// Returns `true` if `v` is a legal data value (strictly between the sentinels).
#[inline]
pub fn is_finite(v: Val) -> bool {
    v > NEG_INF && v < POS_INF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the contract here
    fn sentinels_bracket_all_data_values() {
        assert!(NEG_INF < -1);
        assert!(POS_INF > 0);
        assert!(is_finite(0));
        assert!(is_finite(-1));
        assert!(!is_finite(NEG_INF));
        assert!(!is_finite(POS_INF));
    }
}
