//! Flat trie indexes and trie iterators.
//!
//! Both LeapFrog TrieJoin and Minesweeper assume every input relation is indexed by a
//! search tree consistent with the global attribute order (GAO) — Section 4.1 and
//! Figure 1 of the paper. We store that search tree as a *flat trie*: one sorted value
//! array per level plus child-range offsets, the same layout used by in-memory
//! worst-case-optimal join systems. The layout gives:
//!
//! * cache-friendly, allocation-free iteration for the LFTJ iterator interface
//!   (`open` / `up` / `next` / `seek`), and
//! * `O(log)` per-level prefix probes with greatest-lower-bound / least-upper-bound
//!   answers, which is exactly what Minesweeper's `seekGap` (Idea 3) needs to build a
//!   maximal gap box around a free tuple.

use crate::relation::Relation;
use crate::value::{Val, NEG_INF, POS_INF};

/// A trie (prefix tree) index over a [`Relation`] in a chosen attribute order.
///
/// Level `d` stores one entry per distinct length-`d+1` prefix of the (permuted)
/// relation; the entry records the last value of that prefix. `child_start[d][i]`
/// gives the index in level `d+1` where the children of entry `i` begin, so the
/// children of entry `i` occupy `child_start[d][i] .. child_start[d][i + 1]`.
///
/// The example of Figure 1 in the paper — `R(A2, A4, A5)` indexed in the order
/// `A2, A4, A5` — produces level 0 = `[5, 7, 10]`, level 1 = `[1, 4, 9, 4]`, and
/// level 2 = `[4, 7, 12, 6, 8, 13, 1]`.
#[derive(Debug, Clone)]
pub struct TrieIndex {
    arity: usize,
    num_rows: usize,
    /// Column permutation used to build the index: output level `d` corresponds to
    /// source column `perm[d]` of the original relation.
    perm: Vec<usize>,
    /// Largest value in the underlying relation, cached at build time (probe loops —
    /// Minesweeper binds it per free tuple — must not rescan the levels).
    max_value: Option<Val>,
    values: Vec<Vec<Val>>,
    child_start: Vec<Vec<usize>>,
}

/// Result of probing a trie index with a full projected tuple (Minesweeper, Idea 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The whole tuple is present in the relation.
    Found,
    /// The prefix of length `depth` is present but extending it with the probed value
    /// is not. `(lower, upper)` is the maximal open interval around the probed value
    /// that contains no value extending that prefix; the ends are `NEG_INF` /
    /// `POS_INF` when the probe falls before the first or after the last child.
    Gap { depth: usize, lower: Val, upper: Val },
}

impl TrieIndex {
    /// Builds a trie index over `relation`, indexing the columns in the order given by
    /// `perm` (`perm[d]` is the source column that becomes trie level `d`).
    ///
    /// `perm` must be a permutation of `0..relation.arity()`.
    ///
    /// The build is **zero-materialization**: it sorts a row-index permutation of the
    /// relation's flat buffer ([`Relation::sorted_row_order`] — a no-op for the
    /// identity permutation, since relations store their rows sorted) and streams the
    /// trie levels directly out of the buffer through that order. No permuted copy of
    /// the relation is ever created, so building the six GAO-consistent `edge`
    /// indexes of a 4-clique query allocates only the level arrays themselves.
    pub fn build(relation: &Relation, perm: &[usize]) -> Self {
        let arity = relation.arity();
        // sorted_row_order validates that perm is a permutation of 0..arity.
        let order = relation.sorted_row_order(perm);

        let mut values: Vec<Vec<Val>> = vec![Vec::new(); arity];
        let mut child_start: Vec<Vec<usize>> = vec![Vec::new(); arity.saturating_sub(1)];
        if arity > 0 {
            // The deepest level has one entry per row (rows are distinct, and they
            // stay distinct under a full column permutation).
            values[arity - 1].reserve_exact(relation.len());
        }

        let mut prev: Option<&[Val]> = None;
        for &ri in &order {
            let row = relation.row(ri as usize);
            // First level at which this row differs from the previous one, in the
            // permuted attribute order.
            let diverge = match prev {
                None => 0,
                Some(p) => {
                    let mut d = 0;
                    while d < arity && p[perm[d]] == row[perm[d]] {
                        d += 1;
                    }
                    d
                }
            };
            for d in diverge..arity {
                if d > 0 {
                    // A new entry at level d opens under the current last entry of
                    // level d-1; record where its children start.
                    if child_start[d - 1].len() < values[d - 1].len() {
                        child_start[d - 1].push(values[d].len());
                    }
                }
                values[d].push(row[perm[d]]);
            }
            prev = Some(row);
        }
        // Close the offset arrays with a final sentinel.
        for d in 0..arity.saturating_sub(1) {
            child_start[d].push(values[d + 1].len());
        }

        TrieIndex {
            arity,
            num_rows: relation.len(),
            perm: perm.to_vec(),
            max_value: relation.max_value(),
            values,
            child_start,
        }
    }

    /// Builds a trie index over a relation in its natural column order.
    pub fn build_natural(relation: &Relation) -> Self {
        let perm: Vec<usize> = (0..relation.arity()).collect();
        Self::build(relation, &perm)
    }

    /// Number of indexed attributes (trie depth).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows in the underlying relation.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The column permutation this index was built with.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The distinct values at trie level `d` (grouped by parent, each group sorted).
    pub fn level_values(&self, d: usize) -> &[Val] {
        &self.values[d]
    }

    /// The largest value appearing anywhere in the relation, or `None` when it is
    /// empty. Minesweeper uses this to bound its search: values beyond the data
    /// cannot appear in any output tuple. Cached at build time — calling it per
    /// bind is free.
    pub fn max_value(&self) -> Option<Val> {
        self.max_value
    }

    /// The range of entries at level 0 (children of the conceptual root).
    pub fn root_range(&self) -> (usize, usize) {
        (0, self.values.first().map_or(0, Vec::len))
    }

    /// The range of children (at level `depth + 1`) of entry `idx` at level `depth`.
    pub fn children_range(&self, depth: usize, idx: usize) -> (usize, usize) {
        let cs = &self.child_start[depth];
        (cs[idx], cs[idx + 1])
    }

    /// The raw child-offset array of level `d` (one entry per level-`d` value plus a
    /// closing sentinel). Exposed so equivalence tests can compare two builds
    /// structurally; engine code should use [`TrieIndex::children_range`].
    pub fn child_offsets(&self, d: usize) -> &[usize] {
        &self.child_start[d]
    }

    /// Locates the node reached by following `prefix` from the root.
    ///
    /// Returns the `(lo, hi)` range of that node's children at level `prefix.len()`,
    /// or `None` if the prefix is not present in the relation. An empty prefix returns
    /// the root range. A full-length prefix cannot be located this way (it has no
    /// children); use [`TrieIndex::contains`] instead.
    pub fn prefix_range(&self, prefix: &[Val]) -> Option<(usize, usize)> {
        assert!(prefix.len() < self.arity, "prefix must be shorter than the arity");
        let (mut lo, mut hi) = self.root_range();
        for (d, &v) in prefix.iter().enumerate() {
            let idx = self.find_in(d, lo, hi, v)?;
            let (clo, chi) = self.children_range(d, idx);
            lo = clo;
            hi = chi;
        }
        Some((lo, hi))
    }

    /// Whether the full tuple `t` (of length `arity`) is present.
    pub fn contains(&self, t: &[Val]) -> bool {
        matches!(self.probe(t), ProbeResult::Found)
    }

    /// Probes the index with a full tuple `t` in index (GAO-projected) order.
    ///
    /// This is Minesweeper's `seekGap`: walk the trie level by level; at the first
    /// level `d` where `t[d]` is absent among the children of the matched prefix,
    /// return the maximal open gap interval `(lower, upper)` around `t[d]` at that
    /// level. If every level matches, the tuple is in the relation.
    pub fn probe(&self, t: &[Val]) -> ProbeResult {
        assert_eq!(t.len(), self.arity, "probe tuple must have the index arity");
        let (mut lo, mut hi) = self.root_range();
        for (d, &tv) in t.iter().enumerate() {
            match self.find_in(d, lo, hi, tv) {
                Some(idx) => {
                    if d + 1 < self.arity {
                        let (clo, chi) = self.children_range(d, idx);
                        lo = clo;
                        hi = chi;
                    }
                }
                None => {
                    let vals = &self.values[d][lo..hi];
                    // partition_point: number of values < tv in the node.
                    let pos = vals.partition_point(|&x| x < tv);
                    let lower = if pos == 0 { NEG_INF } else { vals[pos - 1] };
                    let upper = if pos == vals.len() { POS_INF } else { vals[pos] };
                    return ProbeResult::Gap { depth: d, lower, upper };
                }
            }
        }
        ProbeResult::Found
    }

    /// Binary search for `v` among the entries `lo..hi` of level `d`.
    fn find_in(&self, d: usize, lo: usize, hi: usize, v: Val) -> Option<usize> {
        let vals = &self.values[d][lo..hi];
        vals.binary_search(&v).ok().map(|i| lo + i)
    }

    /// Creates a fresh [`TrieIterator`] positioned at the root.
    pub fn iter(&self) -> TrieIterator<'_> {
        TrieIterator::new(self)
    }
}

/// LeapFrog TrieJoin iterator over a [`TrieIndex`].
///
/// Implements the interface of Veldhuizen's LFTJ paper:
///
/// * [`open`](TrieIterator::open) — descend to the first child of the current node;
/// * [`up`](TrieIterator::up) — return to the parent;
/// * [`key`](TrieIterator::key) — the value at the current position;
/// * [`next`](TrieIterator::next) — advance to the next sibling;
/// * [`seek`](TrieIterator::seek) — advance to the least sibling `>= v` (galloping +
///   binary search);
/// * [`at_end`](TrieIterator::at_end) — whether the current level is exhausted.
#[derive(Debug, Clone)]
pub struct TrieIterator<'a> {
    index: &'a TrieIndex,
    /// One frame per open level: (current position, lo, hi) within `values[depth]`.
    stack: Vec<(usize, usize, usize)>,
    /// Set when `next`/`seek` runs past `hi` at the current level.
    at_end: bool,
}

impl<'a> TrieIterator<'a> {
    /// Creates an iterator positioned at the root (no level open).
    pub fn new(index: &'a TrieIndex) -> Self {
        TrieIterator { index, stack: Vec::with_capacity(index.arity()), at_end: false }
    }

    /// The number of currently open levels (0 = at root).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Whether the iterator has run past the last sibling at the current level.
    pub fn at_end(&self) -> bool {
        self.at_end
    }

    /// The value at the current position. Panics if no level is open or the level is
    /// exhausted.
    pub fn key(&self) -> Val {
        assert!(!self.at_end, "key() called on an exhausted level");
        let &(pos, _, _) = self.stack.last().expect("key() called at the root");
        self.index.values[self.stack.len() - 1][pos]
    }

    /// Opens the next trie level, positioning at the first child of the current node.
    ///
    /// At the root this opens level 0. Panics if the maximum depth is already open or
    /// if the current level is exhausted.
    pub fn open(&mut self) {
        assert!(self.stack.len() < self.index.arity(), "open() past the last level");
        assert!(!self.at_end, "open() on an exhausted level");
        let (lo, hi) = if self.stack.is_empty() {
            self.index.root_range()
        } else {
            let depth = self.stack.len() - 1;
            let &(pos, _, _) = self.stack.last().unwrap();
            self.index.children_range(depth, pos)
        };
        self.stack.push((lo, lo, hi));
        self.at_end = lo >= hi;
    }

    /// Closes the current level and returns to the parent position.
    pub fn up(&mut self) {
        self.stack.pop().expect("up() called at the root");
        self.at_end = false;
    }

    /// Advances to the next sibling. Sets `at_end` when the level is exhausted.
    pub fn next(&mut self) {
        assert!(!self.at_end, "next() on an exhausted level");
        let frame = self.stack.last_mut().expect("next() called at the root");
        frame.0 += 1;
        self.at_end = frame.0 >= frame.2;
    }

    /// Positions at the least sibling with value `>= v`, or exhausts the level.
    ///
    /// `seek` never moves backwards; seeking to a value smaller than the current key
    /// is a no-op (as specified by the LFTJ iterator contract).
    pub fn seek(&mut self, v: Val) {
        assert!(!self.at_end, "seek() on an exhausted level");
        let depth = self.stack.len() - 1;
        let frame = self.stack.last_mut().expect("seek() called at the root");
        let values = &self.index.values[depth];
        if values[frame.0] >= v {
            return;
        }
        // Gallop forward to find a bracket, then binary search inside it.
        let mut step = 1;
        let mut lo = frame.0;
        let mut hi = frame.0 + 1;
        while hi < frame.2 && values[hi] < v {
            lo = hi;
            hi = (hi + step).min(frame.2);
            step *= 2;
        }
        let off = values[lo..hi.min(frame.2)].partition_point(|&x| x < v);
        frame.0 = lo + off;
        // If the bracket ended before finding >= v, continue from there.
        while frame.0 < frame.2 && values[frame.0] < v {
            frame.0 += 1;
        }
        self.at_end = frame.0 >= frame.2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The relation of Figure 1 in the paper: R(A2, A4, A5).
    fn figure1_relation() -> Relation {
        Relation::from_rows(
            3,
            vec![
                vec![5, 1, 4],
                vec![5, 1, 7],
                vec![5, 1, 12],
                vec![7, 4, 6],
                vec![7, 9, 8],
                vec![7, 9, 13],
                vec![10, 4, 1],
            ],
        )
    }

    #[test]
    fn figure1_trie_levels() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert_eq!(idx.level_values(0), &[5, 7, 10]);
        assert_eq!(idx.level_values(1), &[1, 4, 9, 4]);
        assert_eq!(idx.level_values(2), &[4, 7, 12, 6, 8, 13, 1]);
        assert_eq!(idx.children_range(0, 0), (0, 1)); // 5 -> {1}
        assert_eq!(idx.children_range(0, 1), (1, 3)); // 7 -> {4, 9}
        assert_eq!(idx.children_range(0, 2), (3, 4)); // 10 -> {4}
        assert_eq!(idx.children_range(1, 0), (0, 3)); // (5,1) -> {4,7,12}
        assert_eq!(idx.children_range(1, 2), (4, 6)); // (7,9) -> {8,13}
    }

    #[test]
    fn probe_reproduces_paper_gap_examples() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        // Section 4.2: free tuple projected to (6, 3, 7) -> gap between A2 = 5 and 7.
        assert_eq!(idx.probe(&[6, 3, 7]), ProbeResult::Gap { depth: 0, lower: 5, upper: 7 });
        // Free tuple projected to (7, 5, 8) -> band inside A2 = 7, 4 < A4 < 9.
        assert_eq!(idx.probe(&[7, 5, 8]), ProbeResult::Gap { depth: 1, lower: 4, upper: 9 });
        // A present tuple is Found.
        assert_eq!(idx.probe(&[7, 9, 13]), ProbeResult::Found);
    }

    #[test]
    fn probe_open_ends_use_sentinels() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert_eq!(idx.probe(&[1, 0, 0]), ProbeResult::Gap { depth: 0, lower: NEG_INF, upper: 5 });
        assert_eq!(
            idx.probe(&[20, 0, 0]),
            ProbeResult::Gap { depth: 0, lower: 10, upper: POS_INF }
        );
        // Last level gap: prefix (5,1) exists, value 20 is past 12.
        assert_eq!(
            idx.probe(&[5, 1, 20]),
            ProbeResult::Gap { depth: 2, lower: 12, upper: POS_INF }
        );
    }

    #[test]
    fn prefix_range_walks_the_trie() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert_eq!(idx.prefix_range(&[]), Some((0, 3)));
        assert_eq!(idx.prefix_range(&[7]), Some((1, 3)));
        assert_eq!(idx.prefix_range(&[7, 9]), Some((4, 6)));
        assert_eq!(idx.prefix_range(&[6]), None);
        assert_eq!(idx.prefix_range(&[7, 5]), None);
    }

    #[test]
    fn contains_full_tuples() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert!(idx.contains(&[10, 4, 1]));
        assert!(!idx.contains(&[10, 4, 2]));
    }

    #[test]
    fn build_with_permutation_reorders_levels() {
        // Index R(A,B) by (B,A).
        let r = Relation::from_pairs(vec![(1, 10), (2, 10), (2, 20)]);
        let idx = TrieIndex::build(&r, &[1, 0]);
        assert_eq!(idx.level_values(0), &[10, 20]);
        assert_eq!(idx.level_values(1), &[1, 2, 2]);
        assert!(idx.contains(&[10, 1]));
        assert!(idx.contains(&[20, 2]));
        assert!(!idx.contains(&[20, 1]));
    }

    #[test]
    fn iterator_walks_figure1() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        let mut it = idx.iter();
        it.open();
        assert_eq!(it.key(), 5);
        it.next();
        assert_eq!(it.key(), 7);
        it.open();
        assert_eq!(it.key(), 4);
        it.next();
        assert_eq!(it.key(), 9);
        it.open();
        assert_eq!(it.key(), 8);
        it.next();
        assert_eq!(it.key(), 13);
        it.next();
        assert!(it.at_end());
        it.up();
        assert_eq!(it.key(), 9);
        it.up();
        assert_eq!(it.key(), 7);
        it.next();
        assert_eq!(it.key(), 10);
        it.next();
        assert!(it.at_end());
    }

    #[test]
    fn iterator_seek_moves_forward_only() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        let mut it = idx.iter();
        it.open();
        it.seek(6);
        assert_eq!(it.key(), 7);
        // Seeking backwards is a no-op.
        it.seek(1);
        assert_eq!(it.key(), 7);
        it.seek(8);
        assert_eq!(it.key(), 10);
        it.seek(11);
        assert!(it.at_end());
    }

    #[test]
    fn iterator_on_empty_relation() {
        let idx = TrieIndex::build_natural(&Relation::empty(2));
        let mut it = idx.iter();
        it.open();
        assert!(it.at_end());
    }

    #[test]
    fn unary_relation_trie() {
        let r = Relation::from_values(vec![3, 1, 4, 1, 5]);
        let idx = TrieIndex::build_natural(&r);
        assert_eq!(idx.level_values(0), &[1, 3, 4, 5]);
        assert_eq!(idx.probe(&[2]), ProbeResult::Gap { depth: 0, lower: 1, upper: 3 });
        assert_eq!(idx.probe(&[4]), ProbeResult::Found);
        let mut it = idx.iter();
        it.open();
        it.seek(4);
        assert_eq!(it.key(), 4);
    }

    #[test]
    fn seek_gallop_long_runs() {
        let r = Relation::from_values((0..1000).map(|i| i * 3).collect::<Vec<_>>());
        let idx = TrieIndex::build_natural(&r);
        let mut it = idx.iter();
        it.open();
        for target in [1, 100, 101, 2500, 2997] {
            it.seek(target);
            assert!(!it.at_end());
            let expected = ((target + 2) / 3) * 3; // least multiple of 3 >= target
            assert_eq!(it.key(), expected, "seek({target})");
        }
        it.seek(2998);
        assert!(it.at_end());
    }
}
