//! Flat trie indexes, delta layers, and trie iterators.
//!
//! Both LeapFrog TrieJoin and Minesweeper assume every input relation is indexed by a
//! search tree consistent with the global attribute order (GAO) — Section 4.1 and
//! Figure 1 of the paper. We store that search tree as a *flat trie*: one sorted value
//! array per level plus child-range offsets, the same layout used by in-memory
//! worst-case-optimal join systems. The layout gives:
//!
//! * cache-friendly, allocation-free iteration for the LFTJ iterator interface
//!   (`open` / `up` / `next` / `seek`), and
//! * `O(log)` per-level prefix probes with greatest-lower-bound / least-upper-bound
//!   answers, which is exactly what Minesweeper's `seekGap` (Idea 3) needs to build a
//!   maximal gap box around a free tuple.
//!
//! # Delta layers (incremental maintenance)
//!
//! A [`TrieIndex`] is an immutable **base** trie (`TrieCore`, shared through an
//! `Arc` by every updated version of the index) plus an optional **delta layer**: two
//! small sorted tries holding inserted rows and tombstoned deletes
//! ([`TrieIndex::with_edits`]). The logical content is `(base \ deletes) ∪ inserts`,
//! and the merge happens *lazily at the iterator level*: [`TrieIterator`] and
//! [`TrieIndex::probe`] walk base and insert tries in lockstep, presenting one sorted
//! stream with tombstoned leaves skipped, so every engine sees the updated relation
//! without the base ever being rebuilt. An edit batch therefore costs
//! O(delta × permutations) instead of O(relation × permutations); the
//! [`IndexCache`](../../gj_query/struct.IndexCache.html) folds deltas back into a
//! fresh base once they cross its compaction threshold.

use crate::relation::Relation;
use crate::value::{Val, NEG_INF, POS_INF};
use std::borrow::Cow;
use std::sync::Arc;

/// The immutable flat-trie layer: one sorted value array per level plus child-range
/// offsets. Level `d` stores one entry per distinct length-`d+1` prefix of the
/// (permuted) relation; `child_start[d][i]` gives the index in level `d+1` where the
/// children of entry `i` begin, so the children of entry `i` occupy
/// `child_start[d][i] .. child_start[d][i + 1]`.
///
/// The example of Figure 1 in the paper — `R(A2, A4, A5)` indexed in the order
/// `A2, A4, A5` — produces level 0 = `[5, 7, 10]`, level 1 = `[1, 4, 9, 4]`, and
/// level 2 = `[4, 7, 12, 6, 8, 13, 1]`.
#[derive(Debug, Clone)]
struct TrieCore {
    arity: usize,
    num_rows: usize,
    values: Vec<Vec<Val>>,
    child_start: Vec<Vec<usize>>,
}

impl TrieCore {
    /// Builds the flat trie over `relation` in the column order given by `perm`.
    ///
    /// The build is **zero-materialization**: it sorts a row-index permutation of the
    /// relation's flat buffer ([`Relation::sorted_row_order`] — a no-op for the
    /// identity permutation, since relations store their rows sorted) and streams the
    /// trie levels directly out of the buffer through that order. No permuted copy of
    /// the relation is ever created.
    fn build(relation: &Relation, perm: &[usize]) -> Self {
        let arity = relation.arity();
        // sorted_row_order validates that perm is a permutation of 0..arity.
        let order = relation.sorted_row_order(perm);

        let mut values: Vec<Vec<Val>> = vec![Vec::new(); arity];
        let mut child_start: Vec<Vec<usize>> = vec![Vec::new(); arity.saturating_sub(1)];
        if arity > 0 {
            // The deepest level has one entry per row (rows are distinct, and they
            // stay distinct under a full column permutation).
            values[arity - 1].reserve_exact(relation.len());
        }

        let mut prev: Option<&[Val]> = None;
        for &ri in &order {
            let row = relation.row(ri as usize);
            // First level at which this row differs from the previous one, in the
            // permuted attribute order.
            let diverge = match prev {
                None => 0,
                Some(p) => {
                    let mut d = 0;
                    while d < arity && p[perm[d]] == row[perm[d]] {
                        d += 1;
                    }
                    d
                }
            };
            for d in diverge..arity {
                if d > 0 {
                    // A new entry at level d opens under the current last entry of
                    // level d-1; record where its children start.
                    if child_start[d - 1].len() < values[d - 1].len() {
                        child_start[d - 1].push(values[d].len());
                    }
                }
                values[d].push(row[perm[d]]);
            }
            prev = Some(row);
        }
        // Close the offset arrays with a final sentinel.
        for d in 0..arity.saturating_sub(1) {
            child_start[d].push(values[d + 1].len());
        }

        TrieCore { arity, num_rows: relation.len(), values, child_start }
    }

    fn root_range(&self) -> (usize, usize) {
        (0, self.values.first().map_or(0, Vec::len))
    }

    fn children_range(&self, depth: usize, idx: usize) -> (usize, usize) {
        let cs = &self.child_start[depth];
        (cs[idx], cs[idx + 1])
    }

    /// Binary search for `v` among the entries `lo..hi` of level `d`.
    fn find_in(&self, d: usize, lo: usize, hi: usize, v: Val) -> Option<usize> {
        let vals = &self.values[d][lo..hi];
        vals.binary_search(&v).ok().map(|i| lo + i)
    }
}

/// A trie (prefix tree) index over a [`Relation`] in a chosen attribute order: an
/// `Arc`-shared immutable base trie plus an optional delta layer of inserts and
/// tombstoned deletes (see the [module docs](self) for the layer semantics).
///
/// Engines consume it through [`TrieIndex::iter`] and [`TrieIndex::probe`], both of
/// which merge the layers into one logical sorted stream.
#[derive(Debug, Clone)]
pub struct TrieIndex {
    base: Arc<TrieCore>,
    delta: Option<DeltaLayer>,
    /// Column permutation used to build the index: output level `d` corresponds to
    /// source column `perm[d]` of the original relation.
    perm: Vec<usize>,
    /// Live row count: `base - deletes + inserts`.
    num_rows: usize,
    /// Upper bound on the largest live value (exact for solid indexes; deletes may
    /// make it an overestimate, which is all Minesweeper's domain bound needs).
    max_value: Option<Val>,
}

/// The mutable-by-replacement half of a [`TrieIndex`]: a sorted insert trie and a
/// sorted tombstone trie, both built with the base's column permutation. Deletes
/// apply to the base only — the logical content is `(base \ del) ∪ ins`.
#[derive(Debug, Clone)]
struct DeltaLayer {
    ins: TrieCore,
    del: TrieCore,
}

/// Result of probing a trie index with a full projected tuple (Minesweeper, Idea 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The whole tuple is present in the relation.
    Found,
    /// The prefix of length `depth` is present but extending it with the probed value
    /// is not. `(lower, upper)` is the maximal open interval around the probed value
    /// that contains no value extending that prefix; the ends are `NEG_INF` /
    /// `POS_INF` when the probe falls before the first or after the last child.
    Gap { depth: usize, lower: Val, upper: Val },
}

impl TrieIndex {
    /// Builds a solid (delta-free) trie index over `relation`, indexing the columns in
    /// the order given by `perm` (`perm[d]` is the source column that becomes trie
    /// level `d`). `perm` must be a permutation of `0..relation.arity()`.
    pub fn build(relation: &Relation, perm: &[usize]) -> Self {
        let core = TrieCore::build(relation, perm);
        TrieIndex {
            num_rows: core.num_rows,
            base: Arc::new(core),
            delta: None,
            perm: perm.to_vec(),
            max_value: relation.max_value(),
        }
    }

    /// Builds a trie index over a relation in its natural column order.
    pub fn build_natural(relation: &Relation) -> Self {
        let perm: Vec<usize> = (0..relation.arity()).collect();
        Self::build(relation, &perm)
    }

    /// Returns an updated index over the same shared base trie, with `ins` rows
    /// inserted and `del` rows tombstoned — O(|ins| + |del|) work, the base is
    /// **not** rebuilt (any previous delta layer is replaced, so the batches must be
    /// cumulative against the base).
    ///
    /// Preconditions (maintained by the `IndexCache` normalization): `del` rows are
    /// present in the base, `ins` rows are absent from it, and both are disjoint.
    /// The logical content becomes `(base \ del) ∪ ins`.
    pub fn with_edits(&self, ins: &Relation, del: &Relation) -> TrieIndex {
        assert_eq!(ins.arity(), self.arity(), "insert batch arity mismatch");
        assert_eq!(del.arity(), self.arity(), "delete batch arity mismatch");
        let delta = DeltaLayer {
            ins: TrieCore::build(ins, &self.perm),
            del: TrieCore::build(del, &self.perm),
        };
        TrieIndex {
            base: Arc::clone(&self.base),
            num_rows: self.base.num_rows - del.len() + ins.len(),
            max_value: self.base_max_value().max(ins.max_value()),
            delta: Some(delta),
            perm: self.perm.clone(),
        }
    }

    /// The base layer's exact max value (what `max_value` was at build time).
    fn base_max_value(&self) -> Option<Val> {
        // A delta never lowers the recorded base bound; recompute from the stored
        // overestimate minus the insert contribution is impossible, so the solid
        // build's value is carried through `max_value` when there is no delta.
        match &self.delta {
            None => self.max_value,
            Some(_) => {
                // The deepest level of the base holds every row's last value, but the
                // true bound was cached at solid-build time; walking levels would be
                // O(n). `with_edits` is only ever applied to a chain that started
                // solid, so the stored max is base_max ∪ previous inserts — still a
                // sound upper bound to carry forward.
                self.max_value
            }
        }
    }

    /// Whether this index carries a delta layer (updates not yet compacted).
    pub fn has_delta(&self) -> bool {
        self.delta.is_some()
    }

    /// Rows in the delta layer (`inserts + tombstones`; 0 for a solid index). The
    /// `IndexCache` compares this against its compaction threshold.
    pub fn delta_len(&self) -> usize {
        self.delta.as_ref().map_or(0, |d| d.ins.num_rows + d.del.num_rows)
    }

    /// Whether this index and `other` share the same physical base trie (true for
    /// every index produced from the same solid ancestor by [`TrieIndex::with_edits`]).
    pub fn shares_base(&self, other: &TrieIndex) -> bool {
        Arc::ptr_eq(&self.base, &other.base)
    }

    /// Number of indexed attributes (trie depth).
    pub fn arity(&self) -> usize {
        self.base.arity
    }

    /// Number of live rows (`base - deletes + inserts`).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The column permutation this index was built with.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The distinct values at trie level `d` of the **base** layer (grouped by
    /// parent, each group sorted). Solid indexes only — delta-carrying indexes must
    /// be read through [`TrieIndex::iter`] / [`TrieIndex::first_level_values`] /
    /// [`TrieIndex::extensions`].
    pub fn level_values(&self, d: usize) -> &[Val] {
        debug_assert!(self.delta.is_none(), "level_values() reads the base layer only");
        &self.base.values[d]
    }

    /// An upper bound on the largest value appearing in the live relation (`None`
    /// when the index never held a row). Minesweeper uses this to bound its search:
    /// values beyond the data cannot appear in any output tuple, and an overestimate
    /// (deletes are not subtracted) only costs a little search headroom, never
    /// correctness. Cached at build/edit time — calling it per bind is free.
    pub fn max_value(&self) -> Option<Val> {
        self.max_value
    }

    /// The range of entries at level 0 of the base layer (children of the conceptual
    /// root). Solid indexes only, like [`TrieIndex::level_values`].
    pub fn root_range(&self) -> (usize, usize) {
        debug_assert!(self.delta.is_none(), "root_range() reads the base layer only");
        self.base.root_range()
    }

    /// The range of children (at level `depth + 1`) of entry `idx` at level `depth`
    /// of the base layer. Solid indexes only.
    pub fn children_range(&self, depth: usize, idx: usize) -> (usize, usize) {
        debug_assert!(self.delta.is_none(), "children_range() reads the base layer only");
        self.base.children_range(depth, idx)
    }

    /// The raw child-offset array of level `d` of the base layer (one entry per
    /// level-`d` value plus a closing sentinel). Exposed so equivalence tests can
    /// compare two builds structurally; engine code should use
    /// [`TrieIndex::children_range`]. Solid indexes only.
    pub fn child_offsets(&self, d: usize) -> &[usize] {
        debug_assert!(self.delta.is_none(), "child_offsets() reads the base layer only");
        &self.base.child_start[d]
    }

    /// The merged, sorted, distinct first-level key set: base level 0 unioned with
    /// any delta inserts' level 0. Borrowed (zero-copy) for solid indexes. This is
    /// what parallel partitioning must split over — a delta-only key outside the
    /// base's min/max still owns output rows.
    ///
    /// Keys whose whole subtree is tombstoned may still appear; they contribute no
    /// rows, which partitioning tolerates (boundaries affect load balance only).
    pub fn first_level_values(&self) -> Cow<'_, [Val]> {
        let base0 = self.base.values.first().map_or(&[][..], Vec::as_slice);
        match &self.delta {
            None => Cow::Borrowed(base0),
            Some(delta) => {
                let ins0 = delta.ins.values.first().map_or(&[][..], Vec::as_slice);
                if ins0.is_empty() {
                    return Cow::Borrowed(base0);
                }
                Cow::Owned(merge_union(base0, ins0))
            }
        }
    }

    /// Locates the node reached by following `prefix` from the root of the **base**
    /// layer. Solid indexes only; delta-aware callers use [`TrieIndex::extensions`].
    ///
    /// Returns the `(lo, hi)` range of that node's children at level `prefix.len()`,
    /// or `None` if the prefix is not present in the relation. An empty prefix returns
    /// the root range. A full-length prefix cannot be located this way (it has no
    /// children); use [`TrieIndex::contains`] instead.
    pub fn prefix_range(&self, prefix: &[Val]) -> Option<(usize, usize)> {
        debug_assert!(self.delta.is_none(), "prefix_range() reads the base layer only");
        assert!(prefix.len() < self.arity(), "prefix must be shorter than the arity");
        let (mut lo, mut hi) = self.base.root_range();
        for (d, &v) in prefix.iter().enumerate() {
            let idx = self.base.find_in(d, lo, hi, v)?;
            let (clo, chi) = self.base.children_range(d, idx);
            lo = clo;
            hi = chi;
        }
        Some((lo, hi))
    }

    /// The sorted **live** values extending `prefix` at level `prefix.len()`, merged
    /// across the layers: base children minus tombstones (when the extension is the
    /// last attribute), unioned with delta-insert children. `None` when the prefix
    /// exists in no layer. Borrowed (zero-copy) for solid indexes — this is the
    /// delta-aware replacement for `prefix_range` + `level_values`.
    pub fn extensions(&self, prefix: &[Val]) -> Option<Cow<'_, [Val]>> {
        assert!(prefix.len() < self.arity(), "prefix must be shorter than the arity");
        let Some(delta) = &self.delta else {
            let (lo, hi) = self.walk_core(&self.base, prefix)?;
            return Some(Cow::Borrowed(&self.base.values[prefix.len()][lo..hi]));
        };
        let d = prefix.len();
        let base = self.walk_core(&self.base, prefix);
        let ins = self.walk_core(&delta.ins, prefix);
        if base.is_none() && ins.is_none() {
            return None;
        }
        let base_vals = base.map_or(&[][..], |(lo, hi)| &self.base.values[d][lo..hi]);
        let ins_vals = ins.map_or(&[][..], |(lo, hi)| &delta.ins.values[d][lo..hi]);
        // Tombstones remove full tuples, so they only filter the last level; an
        // interior dead key still heads (possibly empty) live subtrees below it.
        let del_vals = if d + 1 == self.arity() {
            self.walk_core(&delta.del, prefix)
                .map_or(&[][..], |(lo, hi)| &delta.del.values[d][lo..hi])
        } else {
            &[]
        };
        if del_vals.is_empty() && ins_vals.is_empty() {
            return Some(Cow::Borrowed(base_vals));
        }
        let mut out = Vec::with_capacity(base_vals.len() + ins_vals.len());
        let (mut i, mut j) = (0, 0);
        while i < base_vals.len() || j < ins_vals.len() {
            let take_base =
                j >= ins_vals.len() || (i < base_vals.len() && base_vals[i] <= ins_vals[j]);
            if take_base {
                let v = base_vals[i];
                if j < ins_vals.len() && ins_vals[j] == v {
                    j += 1;
                }
                i += 1;
                if del_vals.binary_search(&v).is_err() {
                    out.push(v);
                }
            } else {
                out.push(ins_vals[j]);
                j += 1;
            }
        }
        Some(Cow::Owned(out))
    }

    /// Follows `prefix` down `core`, returning the child range at the next level.
    fn walk_core(&self, core: &TrieCore, prefix: &[Val]) -> Option<(usize, usize)> {
        let (mut lo, mut hi) = core.root_range();
        for (d, &v) in prefix.iter().enumerate() {
            let idx = core.find_in(d, lo, hi, v)?;
            let (clo, chi) = core.children_range(d, idx);
            lo = clo;
            hi = chi;
        }
        Some((lo, hi))
    }

    /// Whether the full tuple `t` (of length `arity`) is live: present in the insert
    /// delta, or present in the base and not tombstoned.
    pub fn contains(&self, t: &[Val]) -> bool {
        matches!(self.probe(t), ProbeResult::Found)
    }

    /// Probes the index with a full tuple `t` in index (GAO-projected) order.
    ///
    /// This is Minesweeper's `seekGap`: walk the trie level by level; at the first
    /// level `d` where `t[d]` is absent among the children of the matched prefix,
    /// return the maximal open gap interval `(lower, upper)` around `t[d]` at that
    /// level. If every level matches (with the tuple live under the delta layer), the
    /// tuple is in the relation.
    ///
    /// With a delta layer the walk descends base and insert tries in lockstep.
    /// Last-level gap endpoints are always **live** values (Minesweeper's Idea 4 memo
    /// treats a finite last-attribute endpoint as a member); interior endpoints may
    /// head tombstoned subtrees — the interval is still free of live values, just not
    /// always maximal.
    pub fn probe(&self, t: &[Val]) -> ProbeResult {
        let Some(delta) = &self.delta else {
            return self.probe_solid(t);
        };
        assert_eq!(t.len(), self.arity(), "probe tuple must have the index arity");
        let arity = self.arity();
        let mut b = Some(self.base.root_range());
        let mut i = Some(delta.ins.root_range());
        let mut del = Some(delta.del.root_range());
        for (d, &tv) in t.iter().enumerate() {
            let b_idx = b.and_then(|(lo, hi)| self.base.find_in(d, lo, hi, tv));
            let i_idx = i.and_then(|(lo, hi)| delta.ins.find_in(d, lo, hi, tv));
            let d_idx = del.and_then(|(lo, hi)| delta.del.find_in(d, lo, hi, tv));
            let leaf = d + 1 == arity;
            if leaf {
                // Live: inserted, or in the base and not tombstoned.
                if i_idx.is_some() || (b_idx.is_some() && d_idx.is_none()) {
                    return ProbeResult::Found;
                }
                let b_vals = b.map_or(&[][..], |(lo, hi)| &self.base.values[d][lo..hi]);
                let i_vals = i.map_or(&[][..], |(lo, hi)| &delta.ins.values[d][lo..hi]);
                let d_vals = del.map_or(&[][..], |(lo, hi)| &delta.del.values[d][lo..hi]);
                let (lower, upper) = live_leaf_gap(b_vals, i_vals, d_vals, tv);
                return ProbeResult::Gap { depth: d, lower, upper };
            }
            if b_idx.is_none() && i_idx.is_none() {
                // Interior gap: tightest bracket over both present layers. Endpoints
                // may head dead subtrees — sound (the interval holds no live value),
                // merely non-maximal.
                let (mut lower, mut upper) = (NEG_INF, POS_INF);
                for (vals, range) in [(&self.base.values[d], b), (&delta.ins.values[d], i)] {
                    let Some((lo, hi)) = range else { continue };
                    let vals = &vals[lo..hi];
                    let pos = vals.partition_point(|&x| x < tv);
                    if pos > 0 {
                        lower = lower.max(vals[pos - 1]);
                    }
                    if pos < vals.len() {
                        upper = upper.min(vals[pos]);
                    }
                }
                return ProbeResult::Gap { depth: d, lower, upper };
            }
            b = b_idx.map(|idx| self.base.children_range(d, idx));
            i = i_idx.map(|idx| delta.ins.children_range(d, idx));
            del = match (del, d_idx) {
                (Some(_), Some(idx)) => Some(delta.del.children_range(d, idx)),
                _ => None,
            };
        }
        unreachable!("the loop returns at the leaf level");
    }

    /// The solid-index probe: one layer, no liveness checks.
    fn probe_solid(&self, t: &[Val]) -> ProbeResult {
        assert_eq!(t.len(), self.arity(), "probe tuple must have the index arity");
        let core = &self.base;
        let (mut lo, mut hi) = core.root_range();
        for (d, &tv) in t.iter().enumerate() {
            match core.find_in(d, lo, hi, tv) {
                Some(idx) => {
                    if d + 1 < core.arity {
                        let (clo, chi) = core.children_range(d, idx);
                        lo = clo;
                        hi = chi;
                    }
                }
                None => {
                    let vals = &core.values[d][lo..hi];
                    // partition_point: number of values < tv in the node.
                    let pos = vals.partition_point(|&x| x < tv);
                    let lower = if pos == 0 { NEG_INF } else { vals[pos - 1] };
                    let upper = if pos == vals.len() { POS_INF } else { vals[pos] };
                    return ProbeResult::Gap { depth: d, lower, upper };
                }
            }
        }
        ProbeResult::Found
    }

    /// Creates a fresh [`TrieIterator`] positioned at the root.
    pub fn iter(&self) -> TrieIterator<'_> {
        TrieIterator::new(self)
    }
}

/// Merges two sorted distinct slices into one sorted distinct vector.
fn merge_union(a: &[Val], b: &[Val]) -> Vec<Val> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The maximal open interval around `tv` containing no **live** last-level value,
/// where live = `(base \ del) ∪ ins` over the three sorted leaf slices.
fn live_leaf_gap(base: &[Val], ins: &[Val], del: &[Val], tv: Val) -> (Val, Val) {
    // Greatest live value < tv: scan the base downwards past tombstones, take the
    // best of that and the insert side.
    let mut lower = NEG_INF;
    let mut pos = base.partition_point(|&x| x < tv);
    while pos > 0 {
        let v = base[pos - 1];
        if del.binary_search(&v).is_err() {
            lower = v;
            break;
        }
        pos -= 1;
    }
    let ipos = ins.partition_point(|&x| x < tv);
    if ipos > 0 {
        lower = lower.max(ins[ipos - 1]);
    }
    // Least live value > tv, symmetric.
    let mut upper = POS_INF;
    let mut pos = base.partition_point(|&x| x <= tv);
    while pos < base.len() {
        let v = base[pos];
        if del.binary_search(&v).is_err() {
            upper = v;
            break;
        }
        pos += 1;
    }
    let ipos = ins.partition_point(|&x| x <= tv);
    if ipos < ins.len() {
        upper = upper.min(ins[ipos]);
    }
    (lower, upper)
}

/// LeapFrog TrieJoin iterator over a [`TrieIndex`].
///
/// Implements the interface of Veldhuizen's LFTJ paper:
///
/// * [`open`](TrieIterator::open) — descend to the first child of the current node;
/// * [`up`](TrieIterator::up) — return to the parent;
/// * [`key`](TrieIterator::key) — the value at the current position;
/// * [`next`](TrieIterator::next) — advance to the next sibling;
/// * [`seek`](TrieIterator::seek) — advance to the least sibling `>= v` (galloping +
///   binary search);
/// * [`at_end`](TrieIterator::at_end) — whether the current level is exhausted.
///
/// Over a delta-carrying index the iterator walks base and insert tries in lockstep
/// and skips tombstoned leaves, so the stream is exactly the sorted live relation —
/// engines never see the layers. Solid indexes take a dedicated single-layer path
/// with no merge overhead.
#[derive(Debug, Clone)]
pub struct TrieIterator<'a>(Iter<'a>);

#[derive(Debug, Clone)]
enum Iter<'a> {
    Solid(SolidIter<'a>),
    Merged(MergedIter<'a>),
}

impl<'a> TrieIterator<'a> {
    /// Creates an iterator positioned at the root (no level open).
    pub fn new(index: &'a TrieIndex) -> Self {
        TrieIterator(match &index.delta {
            None => Iter::Solid(SolidIter {
                core: &index.base,
                stack: Vec::with_capacity(index.arity()),
                at_end: false,
            }),
            Some(delta) => Iter::Merged(MergedIter {
                base: &index.base,
                ins: &delta.ins,
                del: &delta.del,
                stack: Vec::with_capacity(index.arity()),
                at_end: false,
            }),
        })
    }

    /// The number of currently open levels (0 = at root).
    pub fn depth(&self) -> usize {
        match &self.0 {
            Iter::Solid(it) => it.stack.len(),
            Iter::Merged(it) => it.stack.len(),
        }
    }

    /// Whether the iterator has run past the last sibling at the current level.
    pub fn at_end(&self) -> bool {
        match &self.0 {
            Iter::Solid(it) => it.at_end,
            Iter::Merged(it) => it.at_end,
        }
    }

    /// The value at the current position. Panics if no level is open or the level is
    /// exhausted.
    pub fn key(&self) -> Val {
        match &self.0 {
            Iter::Solid(it) => it.key(),
            Iter::Merged(it) => it.key(),
        }
    }

    /// Opens the next trie level, positioning at the first child of the current node.
    ///
    /// At the root this opens level 0. Panics if the maximum depth is already open or
    /// if the current level is exhausted.
    pub fn open(&mut self) {
        match &mut self.0 {
            Iter::Solid(it) => it.open(),
            Iter::Merged(it) => it.open(),
        }
    }

    /// Closes the current level and returns to the parent position.
    pub fn up(&mut self) {
        match &mut self.0 {
            Iter::Solid(it) => it.up(),
            Iter::Merged(it) => it.up(),
        }
    }

    /// Advances to the next sibling. Sets `at_end` when the level is exhausted.
    pub fn next(&mut self) {
        match &mut self.0 {
            Iter::Solid(it) => it.next(),
            Iter::Merged(it) => it.next(),
        }
    }

    /// Positions at the least sibling with value `>= v`, or exhausts the level.
    ///
    /// `seek` never moves backwards; seeking to a value smaller than the current key
    /// is a no-op (as specified by the LFTJ iterator contract).
    pub fn seek(&mut self, v: Val) {
        match &mut self.0 {
            Iter::Solid(it) => it.seek(v),
            Iter::Merged(it) => it.seek(v),
        }
    }
}

/// The single-layer iterator: the original flat-trie walk, byte-for-byte.
#[derive(Debug, Clone)]
struct SolidIter<'a> {
    core: &'a TrieCore,
    /// One frame per open level: (current position, lo, hi) within `values[depth]`.
    stack: Vec<(usize, usize, usize)>,
    /// Set when `next`/`seek` runs past `hi` at the current level.
    at_end: bool,
}

impl SolidIter<'_> {
    fn key(&self) -> Val {
        assert!(!self.at_end, "key() called on an exhausted level");
        let &(pos, _, _) = self.stack.last().expect("key() called at the root");
        self.core.values[self.stack.len() - 1][pos]
    }

    fn open(&mut self) {
        assert!(self.stack.len() < self.core.arity, "open() past the last level");
        assert!(!self.at_end, "open() on an exhausted level");
        let (lo, hi) = if self.stack.is_empty() {
            self.core.root_range()
        } else {
            let depth = self.stack.len() - 1;
            let &(pos, _, _) = self.stack.last().unwrap();
            self.core.children_range(depth, pos)
        };
        self.stack.push((lo, lo, hi));
        self.at_end = lo >= hi;
    }

    fn up(&mut self) {
        self.stack.pop().expect("up() called at the root");
        self.at_end = false;
    }

    fn next(&mut self) {
        assert!(!self.at_end, "next() on an exhausted level");
        let frame = self.stack.last_mut().expect("next() called at the root");
        frame.0 += 1;
        self.at_end = frame.0 >= frame.2;
    }

    fn seek(&mut self, v: Val) {
        assert!(!self.at_end, "seek() on an exhausted level");
        let depth = self.stack.len() - 1;
        let frame = self.stack.last_mut().expect("seek() called at the root");
        let values = &self.core.values[depth];
        if values[frame.0] >= v {
            return;
        }
        // Gallop forward to find a bracket, then binary search inside it.
        let mut step = 1;
        let mut lo = frame.0;
        let mut hi = frame.0 + 1;
        while hi < frame.2 && values[hi] < v {
            lo = hi;
            hi = (hi + step).min(frame.2);
            step *= 2;
        }
        let off = values[lo..hi.min(frame.2)].partition_point(|&x| x < v);
        frame.0 = lo + off;
        // If the bracket ended before finding >= v, continue from there.
        while frame.0 < frame.2 && values[frame.0] < v {
            frame.0 += 1;
        }
        self.at_end = frame.0 >= frame.2;
    }
}

/// Which layer(s) the merged iterator's current key came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Base,
    Ins,
    Both,
}

/// One open level of the merged walk: a cursor into the base level range, a cursor
/// into the insert level range, and a forward-only tombstone cursor used for
/// last-level liveness checks. `pos == hi` encodes both "exhausted" and "this layer
/// never matched the path here".
#[derive(Debug, Clone, Copy)]
struct Frame {
    b_pos: usize,
    b_hi: usize,
    i_pos: usize,
    i_hi: usize,
    d_pos: usize,
    d_hi: usize,
    src: Src,
}

/// The two-layer lockstep iterator: presents `min(base, ins)` at every level with
/// duplicates collapsed, and skips base leaves that appear in the tombstone trie.
#[derive(Debug, Clone)]
struct MergedIter<'a> {
    base: &'a TrieCore,
    ins: &'a TrieCore,
    del: &'a TrieCore,
    stack: Vec<Frame>,
    at_end: bool,
}

impl MergedIter<'_> {
    fn key(&self) -> Val {
        assert!(!self.at_end, "key() called on an exhausted level");
        let frame = self.stack.last().expect("key() called at the root");
        let d = self.stack.len() - 1;
        match frame.src {
            Src::Base | Src::Both => self.base.values[d][frame.b_pos],
            Src::Ins => self.ins.values[d][frame.i_pos],
        }
    }

    fn open(&mut self) {
        assert!(self.stack.len() < self.base.arity, "open() past the last level");
        assert!(!self.at_end, "open() on an exhausted level");
        let mut frame = match self.stack.last() {
            None => {
                let (b_lo, b_hi) = self.base.root_range();
                let (i_lo, i_hi) = self.ins.root_range();
                let (d_lo, d_hi) = self.del.root_range();
                Frame { b_pos: b_lo, b_hi, i_pos: i_lo, i_hi, d_pos: d_lo, d_hi, src: Src::Base }
            }
            Some(parent) => {
                let pd = self.stack.len() - 1;
                let key = self.key();
                let (b_pos, b_hi) = match parent.src {
                    Src::Base | Src::Both => self.base.children_range(pd, parent.b_pos),
                    Src::Ins => (0, 0),
                };
                let (i_pos, i_hi) = match parent.src {
                    Src::Ins | Src::Both => self.ins.children_range(pd, parent.i_pos),
                    Src::Base => (0, 0),
                };
                // The tombstone path stays open only while it matches every key on
                // the way down; its cursor already sits at the first entry >= key.
                let (d_pos, d_hi) =
                    if parent.d_pos < parent.d_hi && self.del.values[pd][parent.d_pos] == key {
                        self.del.children_range(pd, parent.d_pos)
                    } else {
                        (0, 0)
                    };
                Frame { b_pos, b_hi, i_pos, i_hi, d_pos, d_hi, src: Src::Base }
            }
        };
        let depth = self.stack.len();
        self.at_end = !self.settle(&mut frame, depth);
        self.stack.push(frame);
    }

    fn up(&mut self) {
        self.stack.pop().expect("up() called at the root");
        self.at_end = false;
    }

    fn next(&mut self) {
        assert!(!self.at_end, "next() on an exhausted level");
        let depth = self.stack.len() - 1;
        let mut frame = *self.stack.last().expect("next() called at the root");
        match frame.src {
            Src::Base => frame.b_pos += 1,
            Src::Ins => frame.i_pos += 1,
            Src::Both => {
                frame.b_pos += 1;
                frame.i_pos += 1;
            }
        }
        self.at_end = !self.settle(&mut frame, depth);
        *self.stack.last_mut().unwrap() = frame;
    }

    fn seek(&mut self, v: Val) {
        assert!(!self.at_end, "seek() on an exhausted level");
        let depth = self.stack.len() - 1;
        let mut frame = *self.stack.last().expect("seek() called at the root");
        if self.key() >= v {
            return;
        }
        frame.b_pos += gallop(&self.base.values[depth][frame.b_pos..frame.b_hi], v);
        frame.i_pos += gallop(&self.ins.values[depth][frame.i_pos..frame.i_hi], v);
        self.at_end = !self.settle(&mut frame, depth);
        *self.stack.last_mut().unwrap() = frame;
    }

    /// Computes the merged key/source at `frame`'s cursors, skipping base leaves
    /// that are tombstoned. Returns `false` when the level is exhausted.
    fn settle(&self, frame: &mut Frame, depth: usize) -> bool {
        let leaf = depth + 1 == self.base.arity;
        loop {
            let bv = (frame.b_pos < frame.b_hi).then(|| self.base.values[depth][frame.b_pos]);
            let iv = (frame.i_pos < frame.i_hi).then(|| self.ins.values[depth][frame.i_pos]);
            let (key, src) = match (bv, iv) {
                (None, None) => return false,
                (Some(b), None) => (b, Src::Base),
                (None, Some(i)) => (i, Src::Ins),
                (Some(b), Some(i)) => match b.cmp(&i) {
                    std::cmp::Ordering::Less => (b, Src::Base),
                    std::cmp::Ordering::Greater => (i, Src::Ins),
                    std::cmp::Ordering::Equal => (b, Src::Both),
                },
            };
            // Advance the tombstone cursor to the first entry >= key (forward-only,
            // amortized linear over the level; deltas are small by construction).
            while frame.d_pos < frame.d_hi && self.del.values[depth][frame.d_pos] < key {
                frame.d_pos += 1;
            }
            // A tombstone kills a pure-base leaf. (Interior keys pass through: their
            // live subtrees, if any, are resolved below; insert-side keys are live by
            // the delta invariants — deletes apply to the base layer.)
            if leaf
                && src == Src::Base
                && frame.d_pos < frame.d_hi
                && self.del.values[depth][frame.d_pos] == key
            {
                frame.b_pos += 1;
                continue;
            }
            frame.src = src;
            return true;
        }
    }
}

/// Offset of the first element `>= v` in `values` (galloping + binary search — the
/// same forward-only probe pattern as the solid seek).
fn gallop(values: &[Val], v: Val) -> usize {
    if values.first().is_none_or(|&x| x >= v) {
        return 0;
    }
    let mut step = 1;
    let mut lo = 0;
    let mut hi = 1;
    while hi < values.len() && values[hi] < v {
        lo = hi;
        hi = (hi + step).min(values.len());
        step *= 2;
    }
    lo + values[lo..hi].partition_point(|&x| x < v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The relation of Figure 1 in the paper: R(A2, A4, A5).
    fn figure1_relation() -> Relation {
        Relation::from_rows(
            3,
            vec![
                vec![5, 1, 4],
                vec![5, 1, 7],
                vec![5, 1, 12],
                vec![7, 4, 6],
                vec![7, 9, 8],
                vec![7, 9, 13],
                vec![10, 4, 1],
            ],
        )
    }

    #[test]
    fn figure1_trie_levels() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert_eq!(idx.level_values(0), &[5, 7, 10]);
        assert_eq!(idx.level_values(1), &[1, 4, 9, 4]);
        assert_eq!(idx.level_values(2), &[4, 7, 12, 6, 8, 13, 1]);
        assert_eq!(idx.children_range(0, 0), (0, 1)); // 5 -> {1}
        assert_eq!(idx.children_range(0, 1), (1, 3)); // 7 -> {4, 9}
        assert_eq!(idx.children_range(0, 2), (3, 4)); // 10 -> {4}
        assert_eq!(idx.children_range(1, 0), (0, 3)); // (5,1) -> {4,7,12}
        assert_eq!(idx.children_range(1, 2), (4, 6)); // (7,9) -> {8,13}
    }

    #[test]
    fn probe_reproduces_paper_gap_examples() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        // Section 4.2: free tuple projected to (6, 3, 7) -> gap between A2 = 5 and 7.
        assert_eq!(idx.probe(&[6, 3, 7]), ProbeResult::Gap { depth: 0, lower: 5, upper: 7 });
        // Free tuple projected to (7, 5, 8) -> band inside A2 = 7, 4 < A4 < 9.
        assert_eq!(idx.probe(&[7, 5, 8]), ProbeResult::Gap { depth: 1, lower: 4, upper: 9 });
        // A present tuple is Found.
        assert_eq!(idx.probe(&[7, 9, 13]), ProbeResult::Found);
    }

    #[test]
    fn probe_open_ends_use_sentinels() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert_eq!(idx.probe(&[1, 0, 0]), ProbeResult::Gap { depth: 0, lower: NEG_INF, upper: 5 });
        assert_eq!(
            idx.probe(&[20, 0, 0]),
            ProbeResult::Gap { depth: 0, lower: 10, upper: POS_INF }
        );
        // Last level gap: prefix (5,1) exists, value 20 is past 12.
        assert_eq!(
            idx.probe(&[5, 1, 20]),
            ProbeResult::Gap { depth: 2, lower: 12, upper: POS_INF }
        );
    }

    #[test]
    fn prefix_range_walks_the_trie() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert_eq!(idx.prefix_range(&[]), Some((0, 3)));
        assert_eq!(idx.prefix_range(&[7]), Some((1, 3)));
        assert_eq!(idx.prefix_range(&[7, 9]), Some((4, 6)));
        assert_eq!(idx.prefix_range(&[6]), None);
        assert_eq!(idx.prefix_range(&[7, 5]), None);
    }

    #[test]
    fn contains_full_tuples() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        assert!(idx.contains(&[10, 4, 1]));
        assert!(!idx.contains(&[10, 4, 2]));
    }

    #[test]
    fn build_with_permutation_reorders_levels() {
        // Index R(A,B) by (B,A).
        let r = Relation::from_pairs(vec![(1, 10), (2, 10), (2, 20)]);
        let idx = TrieIndex::build(&r, &[1, 0]);
        assert_eq!(idx.level_values(0), &[10, 20]);
        assert_eq!(idx.level_values(1), &[1, 2, 2]);
        assert!(idx.contains(&[10, 1]));
        assert!(idx.contains(&[20, 2]));
        assert!(!idx.contains(&[20, 1]));
    }

    #[test]
    fn iterator_walks_figure1() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        let mut it = idx.iter();
        it.open();
        assert_eq!(it.key(), 5);
        it.next();
        assert_eq!(it.key(), 7);
        it.open();
        assert_eq!(it.key(), 4);
        it.next();
        assert_eq!(it.key(), 9);
        it.open();
        assert_eq!(it.key(), 8);
        it.next();
        assert_eq!(it.key(), 13);
        it.next();
        assert!(it.at_end());
        it.up();
        assert_eq!(it.key(), 9);
        it.up();
        assert_eq!(it.key(), 7);
        it.next();
        assert_eq!(it.key(), 10);
        it.next();
        assert!(it.at_end());
    }

    #[test]
    fn iterator_seek_moves_forward_only() {
        let idx = TrieIndex::build_natural(&figure1_relation());
        let mut it = idx.iter();
        it.open();
        it.seek(6);
        assert_eq!(it.key(), 7);
        // Seeking backwards is a no-op.
        it.seek(1);
        assert_eq!(it.key(), 7);
        it.seek(8);
        assert_eq!(it.key(), 10);
        it.seek(11);
        assert!(it.at_end());
    }

    #[test]
    fn iterator_on_empty_relation() {
        let idx = TrieIndex::build_natural(&Relation::empty(2));
        let mut it = idx.iter();
        it.open();
        assert!(it.at_end());
    }

    #[test]
    fn unary_relation_trie() {
        let r = Relation::from_values(vec![3, 1, 4, 1, 5]);
        let idx = TrieIndex::build_natural(&r);
        assert_eq!(idx.level_values(0), &[1, 3, 4, 5]);
        assert_eq!(idx.probe(&[2]), ProbeResult::Gap { depth: 0, lower: 1, upper: 3 });
        assert_eq!(idx.probe(&[4]), ProbeResult::Found);
        let mut it = idx.iter();
        it.open();
        it.seek(4);
        assert_eq!(it.key(), 4);
    }

    #[test]
    fn seek_gallop_long_runs() {
        let r = Relation::from_values((0..1000).map(|i| i * 3).collect::<Vec<_>>());
        let idx = TrieIndex::build_natural(&r);
        let mut it = idx.iter();
        it.open();
        for target in [1, 100, 101, 2500, 2997] {
            it.seek(target);
            assert!(!it.at_end());
            let expected = ((target + 2) / 3) * 3; // least multiple of 3 >= target
            assert_eq!(it.key(), expected, "seek({target})");
        }
        it.seek(2998);
        assert!(it.at_end());
    }

    // ------------------------------------------------------------------
    // Delta layers
    // ------------------------------------------------------------------

    /// Walks an index depth-first through the public iterator, collecting the rows.
    fn enumerate(idx: &TrieIndex) -> Vec<Vec<Val>> {
        fn rec(
            it: &mut TrieIterator<'_>,
            arity: usize,
            prefix: &mut Vec<Val>,
            out: &mut Vec<Vec<Val>>,
        ) {
            it.open();
            while !it.at_end() {
                prefix.push(it.key());
                if prefix.len() == arity {
                    out.push(prefix.clone());
                } else {
                    rec(it, arity, prefix, out);
                }
                prefix.pop();
                it.next();
            }
            it.up();
        }
        let mut out = Vec::new();
        let mut it = idx.iter();
        rec(&mut it, idx.arity(), &mut Vec::new(), &mut out);
        out
    }

    /// An index with a delta layer, and the solid index over the same live rows.
    fn edited_pair(
        base: &Relation,
        perm: &[usize],
        ins: &Relation,
        del: &Relation,
    ) -> (TrieIndex, TrieIndex) {
        let idx = TrieIndex::build(base, perm).with_edits(ins, del);
        let solid = TrieIndex::build(&base.with_edits(ins, del), perm);
        (idx, solid)
    }

    #[test]
    fn with_edits_shares_the_base_and_counts_live_rows() {
        let base = figure1_relation();
        let solid = TrieIndex::build_natural(&base);
        let ins = Relation::from_rows(3, vec![vec![6, 6, 6]]);
        let del = Relation::from_rows(3, vec![vec![7, 4, 6], vec![5, 1, 7]]);
        let idx = solid.with_edits(&ins, &del);
        assert!(idx.has_delta());
        assert!(!solid.has_delta());
        assert!(idx.shares_base(&solid));
        assert_eq!(idx.delta_len(), 3);
        assert_eq!(idx.num_rows(), base.len() - 2 + 1);
        assert_eq!(idx.perm(), solid.perm());
    }

    #[test]
    fn merged_iterator_streams_the_live_relation() {
        let base = figure1_relation();
        let ins = Relation::from_rows(3, vec![vec![6, 6, 6], vec![5, 1, 5], vec![11, 0, 0]]);
        let del = Relation::from_rows(3, vec![vec![7, 4, 6], vec![10, 4, 1]]);
        for perm in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let (idx, solid) = edited_pair(&base, &perm, &ins, &del);
            assert_eq!(enumerate(&idx), enumerate(&solid), "perm {perm:?}");
        }
    }

    #[test]
    fn merged_iterator_handles_delta_only_and_all_deleted() {
        let base = figure1_relation();
        // Delete everything; insert a fresh row.
        let ins = Relation::from_rows(3, vec![vec![1, 2, 3]]);
        let (idx, solid) = edited_pair(&base, &[0, 1, 2], &ins, &base);
        assert_eq!(idx.num_rows(), 1);
        assert_eq!(enumerate(&idx), enumerate(&solid));
        // Empty base, delta-only content.
        let empty = Relation::empty(3);
        let (idx, solid) = edited_pair(&empty, &[0, 1, 2], &ins, &empty);
        assert_eq!(enumerate(&idx), enumerate(&solid));
    }

    #[test]
    fn merged_seek_skips_tombstones_and_finds_inserts() {
        let base = Relation::from_values(vec![10, 20, 30, 40]);
        let idx = TrieIndex::build_natural(&base)
            .with_edits(&Relation::from_values(vec![25, 50]), &Relation::from_values(vec![30]));
        let mut it = idx.iter();
        it.open();
        it.seek(21);
        assert_eq!(it.key(), 25, "insert-side key found by seek");
        it.seek(26);
        assert_eq!(it.key(), 40, "tombstoned 30 skipped");
        it.seek(41);
        assert_eq!(it.key(), 50, "delta key beyond the base max");
        it.next();
        assert!(it.at_end());
    }

    #[test]
    fn merged_contains_and_probe_respect_liveness() {
        let base = figure1_relation();
        let ins = Relation::from_rows(3, vec![vec![6, 6, 6]]);
        let del = Relation::from_rows(3, vec![vec![7, 9, 8]]);
        let idx = TrieIndex::build_natural(&base).with_edits(&ins, &del);
        assert!(idx.contains(&[6, 6, 6]), "inserted row is live");
        assert!(!idx.contains(&[7, 9, 8]), "tombstoned row is dead");
        assert!(idx.contains(&[7, 9, 13]), "untouched base row stays live");
        // Probing the dead row yields a gap whose endpoints are live leaf values.
        assert_eq!(idx.probe(&[7, 9, 8]), ProbeResult::Gap { depth: 2, lower: NEG_INF, upper: 13 });
        // A gap bracketed by an inserted first-level key.
        assert_eq!(idx.probe(&[6, 3, 7]), ProbeResult::Gap { depth: 1, lower: NEG_INF, upper: 6 });
    }

    #[test]
    fn merged_probe_is_sound_against_the_live_relation() {
        let base = figure1_relation();
        let ins = Relation::from_rows(3, vec![vec![6, 6, 6], vec![5, 2, 2]]);
        let del = Relation::from_rows(3, vec![vec![5, 1, 7], vec![10, 4, 1]]);
        let (idx, solid) = edited_pair(&base, &[0, 1, 2], &ins, &del);
        let live = enumerate(&solid);
        for a in 0..13 {
            for b in [0, 1, 2, 4, 6, 9] {
                for c in [0, 1, 4, 6, 7, 8, 12, 13, 20] {
                    let t = [a, b, c];
                    match idx.probe(&t) {
                        // Found exactly when the tuple is live.
                        ProbeResult::Found => assert!(live.contains(&t.to_vec()), "{t:?}"),
                        // A gap may sit deeper than the solid probe's (descending a
                        // dead path is allowed), but its open interval must contain
                        // no live value extending the matched prefix — and never the
                        // probed value itself outside the interval.
                        ProbeResult::Gap { depth, lower, upper } => {
                            assert!(!live.contains(&t.to_vec()), "{t:?}: gap on a live tuple");
                            assert!(
                                lower < t[depth] && t[depth] < upper,
                                "{t:?}: probe outside gap"
                            );
                            for row in &live {
                                if row[..depth] == t[..depth] {
                                    assert!(
                                        row[depth] <= lower || row[depth] >= upper,
                                        "{t:?}: live {row:?} inside gap ({lower}, {upper}) at depth {depth}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merged_leaf_gap_endpoints_are_live() {
        // Base 10,20,30; delete 20: probing 20 must bracket with live 10 and 30,
        // never the dead 20 itself.
        let base = Relation::from_values(vec![10, 20, 30]);
        let idx = TrieIndex::build_natural(&base)
            .with_edits(&Relation::empty(1), &Relation::from_values(vec![20]));
        assert_eq!(idx.probe(&[20]), ProbeResult::Gap { depth: 0, lower: 10, upper: 30 });
        assert_eq!(idx.probe(&[15]), ProbeResult::Gap { depth: 0, lower: 10, upper: 30 });
    }

    #[test]
    fn first_level_values_merges_delta_keys() {
        let base = Relation::from_pairs(vec![(10, 1), (20, 2)]);
        let solid = TrieIndex::build_natural(&base);
        assert!(matches!(solid.first_level_values(), Cow::Borrowed(_)));
        assert_eq!(&*solid.first_level_values(), &[10, 20]);
        let idx = solid.with_edits(
            &Relation::from_pairs(vec![(-5, 0), (10, 9), (99, 1)]),
            &Relation::from_pairs(vec![(20, 2)]),
        );
        // Union of both layers' first keys, sorted distinct; the fully-deleted 20
        // may remain (harmless for partitioning).
        assert_eq!(&*idx.first_level_values(), &[-5, 10, 20, 99]);
    }

    #[test]
    fn extensions_merge_and_filter_tombstones() {
        let base = figure1_relation();
        let ins = Relation::from_rows(3, vec![vec![5, 1, 5], vec![5, 2, 9]]);
        let del = Relation::from_rows(3, vec![vec![5, 1, 7]]);
        let idx = TrieIndex::build_natural(&base).with_edits(&ins, &del);
        // Leaf-level extensions: tombstones filtered, inserts merged.
        assert_eq!(&*idx.extensions(&[5, 1]).unwrap(), &[4, 5, 12]);
        // Interior extensions: inserts merged (no tombstone filtering above leaves).
        assert_eq!(&*idx.extensions(&[5]).unwrap(), &[1, 2]);
        // Delta-only prefix.
        assert_eq!(&*idx.extensions(&[5, 2]).unwrap(), &[9]);
        // Absent from every layer.
        assert!(idx.extensions(&[6, 6]).is_none());
        // Solid path stays zero-copy.
        let solid = TrieIndex::build_natural(&base);
        assert!(matches!(solid.extensions(&[5, 1]), Some(Cow::Borrowed(_))));
        assert_eq!(&*solid.extensions(&[5, 1]).unwrap(), &[4, 7, 12]);
    }

    #[test]
    fn max_value_is_a_live_upper_bound() {
        let base = Relation::from_values(vec![10, 20]);
        let idx = TrieIndex::build_natural(&base)
            .with_edits(&Relation::from_values(vec![35]), &Relation::empty(1));
        assert_eq!(idx.max_value(), Some(35), "out-of-range insert raises the bound");
        let idx = TrieIndex::build_natural(&base)
            .with_edits(&Relation::empty(1), &Relation::from_values(vec![20]));
        assert!(idx.max_value() >= Some(10), "after deleting the max the bound may overestimate");
    }

    #[test]
    fn with_edits_replaces_a_previous_delta() {
        let base = Relation::from_values(vec![1, 2, 3]);
        let solid = TrieIndex::build_natural(&base);
        let first = solid.with_edits(&Relation::from_values(vec![9]), &Relation::empty(1));
        // Cumulative batches are applied against the base, replacing the old layer.
        let second =
            first.with_edits(&Relation::from_values(vec![9, 10]), &Relation::from_values(vec![1]));
        assert!(second.shares_base(&solid));
        assert_eq!(enumerate(&second), vec![vec![2], vec![3], vec![9], vec![10]],);
        assert_eq!(second.num_rows(), 4);
    }
}
