//! Sorted, deduplicated relations in a flat columnar-strided layout.
//!
//! A [`Relation`] is the logical object the join algorithms consume: a set of
//! fixed-arity tuples. Physically the tuples live in **one contiguous buffer** of
//! `len × arity` values in row-major order, kept sorted in lexicographic order and
//! deduplicated. There is no per-row allocation: a row is a `&[Val]` slice into the
//! buffer ([`Relation::row`]), and every reordering operation (sorting on
//! construction, [`Relation::sorted_row_order`] for index builds) works on row
//! *indices* over that buffer rather than on materialized row copies. This is what
//! lets [`TrieIndex::build`](crate::trie::TrieIndex::build) construct a
//! GAO-consistent index in any attribute order without ever materializing a permuted
//! copy of the relation.

use crate::value::{is_finite, Tuple, Val};
use std::cmp::Ordering;

/// A fixed-arity relation stored as sorted, deduplicated rows in one flat buffer.
///
/// The row ordering is plain lexicographic order on the stored column order. To index
/// a relation in a different attribute order (as required by GAO-consistency), build a
/// [`TrieIndex`](crate::trie::TrieIndex) with the desired column permutation — the
/// relation itself is never reordered or copied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    len: usize,
    /// Row-major flat buffer of `len * arity` values; rows are sorted and distinct.
    values: Vec<Val>,
    /// Cached largest value in the relation (`None` when empty). Column order does
    /// not affect it, so every [`TrieIndex`](crate::trie::TrieIndex) built over this
    /// relation shares it instead of rescanning its levels.
    max_value: Option<Val>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        assert!(arity > 0, "relations need at least one attribute");
        Relation { arity, len: 0, values: Vec::new(), max_value: None }
    }

    /// Builds a relation from a flat row-major buffer of `values.len() / arity` rows.
    ///
    /// Rows are sorted and deduplicated in place (by index permutation — no per-row
    /// allocation). Panics if the buffer length is not a multiple of the arity or if
    /// any value is a sentinel (`NEG_INF`/`POS_INF`), because the join algorithms
    /// reserve those for internal use.
    pub fn from_flat(arity: usize, values: Vec<Val>) -> Self {
        assert!(arity > 0, "relations need at least one attribute");
        assert_eq!(
            values.len() % arity,
            0,
            "flat buffer length {} is not a multiple of arity {arity}",
            values.len()
        );
        assert!(values.iter().all(|&v| is_finite(v)), "rows must not contain sentinel values");
        Self::from_flat_unchecked(arity, values)
    }

    /// `from_flat` without the finiteness re-validation, for internal callers whose
    /// values are already known to be legal data values.
    fn from_flat_unchecked(arity: usize, mut values: Vec<Val>) -> Self {
        assert!(arity > 0, "relations need at least one attribute");
        let len = values.len() / arity;
        assert!(len <= u32::MAX as usize, "relation exceeds u32 row indexing");
        let row = |i: usize| &values[i * arity..(i + 1) * arity];

        // Fast path: many loaders (graph edge lists, ranges) already hand us sorted,
        // distinct rows; detect that with one linear scan and skip the sort entirely.
        let sorted_unique = (1..len).all(|i| row(i - 1) < row(i));
        if !sorted_unique {
            let mut order: Vec<u32> = (0..len as u32).collect();
            order.sort_unstable_by(|&a, &b| row(a as usize).cmp(row(b as usize)));
            // Gather in sorted order, dropping duplicates of the previous row.
            let mut gathered: Vec<Val> = Vec::with_capacity(values.len());
            for &i in &order {
                let r = row(i as usize);
                if gathered.is_empty() || &gathered[gathered.len() - arity..] != r {
                    gathered.extend_from_slice(r);
                }
            }
            values = gathered;
        }
        let len = values.len() / arity;
        let max_value = values.iter().copied().max();
        Relation { arity, len, values, max_value }
    }

    /// Builds a relation from an arbitrary collection of rows.
    ///
    /// Rows are sorted and deduplicated. Panics if any row has the wrong arity or
    /// contains a sentinel value (`NEG_INF`/`POS_INF`).
    pub fn from_rows(arity: usize, rows: Vec<Tuple>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), arity, "row arity mismatch: {row:?} vs arity {arity}");
            assert!(
                row.iter().all(|&v| is_finite(v)),
                "rows must not contain sentinel values: {row:?}"
            );
        }
        let mut values = Vec::with_capacity(rows.len() * arity);
        for row in &rows {
            values.extend_from_slice(row);
        }
        Self::from_flat_unchecked(arity, values)
    }

    /// Builds a unary relation from a set of values.
    pub fn from_values(values: impl IntoIterator<Item = Val>) -> Self {
        let flat: Vec<Val> = values.into_iter().collect();
        assert!(flat.iter().all(|&v| is_finite(v)), "values must not contain sentinels");
        Self::from_flat_unchecked(1, flat)
    }

    /// Builds a binary relation from `(a, b)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Val, Val)>) -> Self {
        let mut flat = Vec::new();
        for (a, b) in pairs {
            assert!(is_finite(a) && is_finite(b), "values must not contain sentinels");
            flat.push(a);
            flat.push(b);
        }
        Self::from_flat_unchecked(2, flat)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i` as a zero-copy slice into the flat buffer.
    #[inline]
    pub fn row(&self, i: usize) -> &[Val] {
        &self.values[i * self.arity..(i + 1) * self.arity]
    }

    /// The flat row-major buffer (`len() * arity()` values, rows sorted, distinct).
    pub fn flat_values(&self) -> &[Val] {
        &self.values
    }

    /// The largest value appearing anywhere in the relation (`None` when empty).
    /// Cached at construction; independent of column order.
    pub fn max_value(&self) -> Option<Val> {
        self.max_value
    }

    /// Materializes the rows as owned tuples (convenience for tests and engines that
    /// need owned intermediates; the hot paths use [`Relation::row`] /
    /// [`Relation::iter`] instead).
    pub fn to_rows(&self) -> Vec<Tuple> {
        self.iter().map(<[Val]>::to_vec).collect()
    }

    /// Membership test (binary search over the sorted rows).
    pub fn contains(&self, row: &[Val]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.row(mid).cmp(row) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return true,
            }
        }
        false
    }

    /// The order of this relation's row indices when rows are compared through the
    /// column permutation `perm` (`perm[d]` is the source column compared at
    /// position `d`). For the identity permutation the rows are already in order
    /// and no sort happens.
    ///
    /// This is the primitive behind zero-materialization index builds: a consumer
    /// walks `order` and reads `row(order[k])[perm[d]]` instead of materializing a
    /// permuted, re-sorted copy of the relation. Because the stored rows are
    /// distinct and `perm` is a full permutation, the permuted rows are distinct
    /// too — no deduplication pass is needed.
    pub fn sorted_row_order(&self, perm: &[usize]) -> Vec<u32> {
        assert_permutation(perm, self.arity);
        let mut order: Vec<u32> = (0..self.len as u32).collect();
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            return order;
        }
        order.sort_unstable_by(|&a, &b| {
            let (ra, rb) = (self.row(a as usize), self.row(b as usize));
            for &c in perm {
                match ra[c].cmp(&rb[c]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
        order
    }

    /// Returns a new relation with the columns permuted by `perm` (`perm[i]` is the
    /// source column of output column `i`), re-sorted for the new column order.
    ///
    /// The index builds do **not** use this (see [`Relation::sorted_row_order`]); it
    /// remains as a general relational operator and as the reference implementation
    /// the property tests compare the zero-materialization build against.
    pub fn permute(&self, perm: &[usize]) -> Relation {
        let order = self.sorted_row_order(perm);
        let mut values = Vec::with_capacity(self.values.len());
        for &i in &order {
            let r = self.row(i as usize);
            values.extend(perm.iter().map(|&c| r[c]));
        }
        // Distinct rows stay distinct under a full column permutation, and `order`
        // already sorted them, so no normalization pass is needed.
        Relation { arity: self.arity, len: self.len, values, max_value: self.max_value }
    }

    /// Projects the relation onto the given columns (duplicates removed).
    pub fn project(&self, cols: &[usize]) -> Relation {
        let mut values = Vec::with_capacity(self.len * cols.len());
        for r in self.iter() {
            values.extend(cols.iter().map(|&c| r[c]));
        }
        Self::from_flat_unchecked(cols.len(), values)
    }

    /// Iterates over the rows as zero-copy slices.
    pub fn iter(&self) -> impl Iterator<Item = &[Val]> {
        self.values.chunks_exact(self.arity)
    }

    /// Returns a new relation with `ins` rows added and `del` rows removed, in one
    /// O(len + edits) sorted merge (deletes win over simultaneous inserts of the
    /// same row; inserting an existing row or deleting an absent one is a no-op).
    ///
    /// This is the *eager* half of incremental maintenance: the relation catalog is
    /// updated immediately (so baseline engines that read rows directly stay
    /// consistent), while the trie indexes absorb the same edits as delta layers
    /// ([`TrieIndex::with_edits`](crate::trie::TrieIndex::with_edits)) instead of
    /// being rebuilt.
    pub fn with_edits(&self, ins: &Relation, del: &Relation) -> Relation {
        assert_eq!(ins.arity(), self.arity, "insert batch arity mismatch");
        assert_eq!(del.arity(), self.arity, "delete batch arity mismatch");
        let mut values = Vec::with_capacity(self.values.len() + ins.values.len());
        let (mut i, mut j) = (0usize, 0usize);
        let mut push = |row: &[Val]| {
            if !del.contains(row) {
                values.extend_from_slice(row);
            }
        };
        while i < self.len && j < ins.len {
            match self.row(i).cmp(ins.row(j)) {
                Ordering::Less => {
                    push(self.row(i));
                    i += 1;
                }
                Ordering::Greater => {
                    push(ins.row(j));
                    j += 1;
                }
                Ordering::Equal => {
                    push(self.row(i));
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < self.len {
            push(self.row(i));
            i += 1;
        }
        while j < ins.len {
            push(ins.row(j));
            j += 1;
        }
        let len = values.len() / self.arity;
        let max_value = values.iter().copied().max();
        Relation { arity: self.arity, len, values, max_value }
    }
}

/// Asserts that `perm` is a permutation of `0..arity`. Both [`Relation::permute`]
/// and the zero-materialization index build rely on full permutations keeping
/// distinct rows distinct, so a duplicate column must fail loudly here rather than
/// silently produce a relation with duplicate rows.
fn assert_permutation(perm: &[usize], arity: usize) {
    assert_eq!(perm.len(), arity, "permutation length must equal the arity");
    let mut seen = vec![false; arity];
    for &p in perm {
        assert!(p < arity && !seen[p], "perm must be a permutation of 0..{arity}: {perm:?}");
        seen[p] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must be a permutation")]
    fn permute_rejects_duplicate_columns() {
        Relation::from_pairs(vec![(1, 2), (1, 3)]).permute(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_projection_rejected() {
        Relation::from_pairs(vec![(1, 2)]).project(&[]);
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let r = Relation::from_rows(2, vec![vec![3, 1], vec![1, 2], vec![3, 1], vec![1, 1]]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_rows(), vec![vec![1, 1], vec![1, 2], vec![3, 1]]);
        assert_eq!(r.flat_values(), &[1, 1, 1, 2, 3, 1]);
    }

    #[test]
    fn contains_uses_set_semantics() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 3), (1, 2)]);
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[2, 3]));
        assert!(!r.contains(&[2, 1]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn permute_reorders_columns() {
        let r = Relation::from_pairs(vec![(1, 10), (2, 5)]);
        let p = r.permute(&[1, 0]);
        assert_eq!(p.to_rows(), vec![vec![5, 2], vec![10, 1]]);
    }

    #[test]
    fn project_removes_duplicates() {
        let r = Relation::from_pairs(vec![(1, 10), (1, 20), (2, 10)]);
        let p = r.project(&[0]);
        assert_eq!(p.to_rows(), vec![vec![1], vec![2]]);
    }

    #[test]
    fn unary_relation_from_values() {
        let r = Relation::from_values(vec![5, 1, 5, 3]);
        assert_eq!(r.to_rows(), vec![vec![1], vec![3], vec![5]]);
    }

    #[test]
    fn rows_are_zero_copy_slices_into_the_flat_buffer() {
        let r = Relation::from_rows(3, vec![vec![4, 5, 6], vec![1, 2, 3]]);
        assert_eq!(r.row(0), &[1, 2, 3]);
        assert_eq!(r.row(1), &[4, 5, 6]);
        let collected: Vec<&[Val]> = r.iter().collect();
        assert_eq!(collected, vec![&[1, 2, 3][..], &[4, 5, 6][..]]);
        // Row slices alias the single flat buffer.
        let base = r.flat_values().as_ptr();
        // SAFETY: the relation holds 2 rows × 3 columns = 6 values in one flat
        // allocation, so base + 3 is in bounds of that same allocation.
        assert_eq!(r.row(1).as_ptr(), unsafe { base.add(3) });
    }

    #[test]
    fn sorted_row_order_identity_is_a_no_op() {
        let r = Relation::from_pairs(vec![(2, 1), (1, 2), (1, 1)]);
        assert_eq!(r.sorted_row_order(&[0, 1]), vec![0, 1, 2]);
    }

    #[test]
    fn sorted_row_order_matches_permuted_relation() {
        let r = Relation::from_rows(
            3,
            vec![vec![5, 1, 4], vec![5, 1, 7], vec![7, 4, 6], vec![7, 9, 8], vec![10, 4, 1]],
        );
        let perm = [2usize, 0, 1];
        let order = r.sorted_row_order(&perm);
        let via_order: Vec<Vec<Val>> =
            order.iter().map(|&i| perm.iter().map(|&c| r.row(i as usize)[c]).collect()).collect();
        assert_eq!(via_order, r.permute(&perm).to_rows());
    }

    #[test]
    fn max_value_is_cached_and_correct() {
        assert_eq!(Relation::empty(2).max_value(), None);
        assert_eq!(Relation::from_pairs(vec![(3, 9), (12, 0)]).max_value(), Some(12));
        assert_eq!(Relation::from_values(vec![-5, -2]).max_value(), Some(-2));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        Relation::from_rows(2, vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_values_rejected() {
        Relation::from_rows(1, vec![vec![crate::value::POS_INF]]);
    }

    #[test]
    #[should_panic(expected = "multiple of arity")]
    fn ragged_flat_buffer_rejected() {
        Relation::from_flat(2, vec![1, 2, 3]);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(3);
        assert!(r.is_empty());
        assert_eq!(r.arity(), 3);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn with_edits_merges_inserts_and_deletes() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 3), (5, 5)]);
        let ins = Relation::from_pairs(vec![(0, 9), (2, 3), (7, 1)]);
        let del = Relation::from_pairs(vec![(5, 5), (8, 8)]);
        let out = r.with_edits(&ins, &del);
        assert_eq!(out.to_rows(), vec![vec![0, 9], vec![1, 2], vec![2, 3], vec![7, 1]]);
        assert_eq!(out.max_value(), Some(9));
        // Empty edit batches are the identity.
        let same = r.with_edits(&Relation::empty(2), &Relation::empty(2));
        assert_eq!(same, r);
    }

    #[test]
    fn with_edits_delete_wins_over_simultaneous_insert() {
        let r = Relation::from_pairs(vec![(1, 1)]);
        let ins = Relation::from_pairs(vec![(2, 2)]);
        let del = Relation::from_pairs(vec![(2, 2)]);
        assert_eq!(r.with_edits(&ins, &del).to_rows(), vec![vec![1, 1]]);
    }

    #[test]
    fn with_edits_can_empty_a_relation() {
        let r = Relation::from_values(vec![1, 2]);
        let out = r.with_edits(&Relation::empty(1), &Relation::from_values(vec![1, 2]));
        assert!(out.is_empty());
        assert_eq!(out.max_value(), None);
    }
}
