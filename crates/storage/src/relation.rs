//! Sorted, deduplicated relations.
//!
//! A [`Relation`] is the logical object the join algorithms consume: a set of
//! fixed-arity tuples. Physically the tuples are kept sorted in lexicographic order
//! and deduplicated, which makes building the [trie index](crate::trie::TrieIndex)
//! a single linear pass and makes set semantics (no duplicate rows) explicit.

use crate::value::{is_finite, Tuple, Val};

/// A fixed-arity relation stored as sorted, deduplicated rows.
///
/// The row ordering is plain lexicographic order on the stored column order. To index
/// a relation in a different attribute order (as required by GAO-consistency), build a
/// [`TrieIndex`](crate::trie::TrieIndex) with the desired column permutation — the
/// relation itself is never reordered in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation { arity, rows: Vec::new() }
    }

    /// Builds a relation from an arbitrary collection of rows.
    ///
    /// Rows are sorted and deduplicated. Panics if any row has the wrong arity or
    /// contains a sentinel value (`NEG_INF`/`POS_INF`), because the join algorithms
    /// reserve those for internal use.
    pub fn from_rows(arity: usize, mut rows: Vec<Tuple>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), arity, "row arity mismatch: {row:?} vs arity {arity}");
            assert!(
                row.iter().all(|&v| is_finite(v)),
                "rows must not contain sentinel values: {row:?}"
            );
        }
        rows.sort_unstable();
        rows.dedup();
        Relation { arity, rows }
    }

    /// Builds a unary relation from a set of values.
    pub fn from_values(values: impl IntoIterator<Item = Val>) -> Self {
        Self::from_rows(1, values.into_iter().map(|v| vec![v]).collect())
    }

    /// Builds a binary relation from `(a, b)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Val, Val)>) -> Self {
        Self::from_rows(2, pairs.into_iter().map(|(a, b)| vec![a, b]).collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The sorted rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Membership test (binary search over the sorted rows).
    pub fn contains(&self, row: &[Val]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        self.rows.binary_search_by(|r| r.as_slice().cmp(row)).is_ok()
    }

    /// Returns a new relation with the columns permuted by `perm` (`perm[i]` is the
    /// source column of output column `i`), re-sorted for the new column order.
    pub fn permute(&self, perm: &[usize]) -> Relation {
        assert_eq!(perm.len(), self.arity);
        let rows = self
            .rows
            .iter()
            .map(|r| perm.iter().map(|&i| r[i]).collect::<Tuple>())
            .collect();
        Relation::from_rows(self.arity, rows)
    }

    /// Projects the relation onto the given columns (duplicates removed).
    pub fn project(&self, cols: &[usize]) -> Relation {
        let rows = self
            .rows
            .iter()
            .map(|r| cols.iter().map(|&i| r[i]).collect::<Tuple>())
            .collect();
        Relation::from_rows(cols.len(), rows)
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_sorts_and_dedups() {
        let r = Relation::from_rows(2, vec![vec![3, 1], vec![1, 2], vec![3, 1], vec![1, 1]]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows(), &[vec![1, 1], vec![1, 2], vec![3, 1]]);
    }

    #[test]
    fn contains_uses_set_semantics() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 3), (1, 2)]);
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[2, 3]));
        assert!(!r.contains(&[2, 1]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn permute_reorders_columns() {
        let r = Relation::from_pairs(vec![(1, 10), (2, 5)]);
        let p = r.permute(&[1, 0]);
        assert_eq!(p.rows(), &[vec![5, 2], vec![10, 1]]);
    }

    #[test]
    fn project_removes_duplicates() {
        let r = Relation::from_pairs(vec![(1, 10), (1, 20), (2, 10)]);
        let p = r.project(&[0]);
        assert_eq!(p.rows(), &[vec![1], vec![2]]);
    }

    #[test]
    fn unary_relation_from_values() {
        let r = Relation::from_values(vec![5, 1, 5, 3]);
        assert_eq!(r.rows(), &[vec![1], vec![3], vec![5]]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        Relation::from_rows(2, vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_values_rejected() {
        Relation::from_rows(1, vec![vec![crate::value::POS_INF]]);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(3);
        assert!(r.is_empty());
        assert_eq!(r.arity(), 3);
        assert_eq!(r.len(), 0);
    }
}
