//! Fault-injection failpoints for the execution stack.
//!
//! A [`FailpointRegistry`] is a small, instance-scoped switchboard of **named
//! sites** at which tests can inject faults: a panic (exercises the panic-isolation
//! path), a delay (stretches a run so cancellation can race it deterministically),
//! or a forced budget trip (exercises the typed-abort path without wall-clock
//! dependence). Production code carries the registry as an
//! `Option<Arc<FailpointRegistry>>` and never constructs one outside tests, so the
//! disabled cost on hot paths is a single `Option` branch at coarse check points —
//! there is no global state and no build-time feature to keep in sync.
//!
//! Sites are plain strings; the canonical sites instrumented by the runtime and
//! engines live in [`sites`]. A site does nothing until it is
//! [`arm`](FailpointRegistry::arm)ed; arming can skip the first `n` hits and fire a
//! bounded number of times, which lets a test place a fault *inside* a long run
//! ("panic at the 1000th join step") rather than only at its edges.
//!
//! The registry records the first site that actually fired so abort diagnostics
//! (`RunStats` outcomes in `gj-core`) can report *which* injected fault ended a run.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Canonical failpoint site names instrumented across the workspace.
pub mod sites {
    /// Hit by each parallel worker just before claiming a morsel from the queue.
    pub const MORSEL_CLAIM: &str = "morsel_claim";
    /// Hit after a morsel completes, just before its shard enters the ordered merge.
    pub const SHARD_MERGE: &str = "shard_merge";
    /// Hit inside `IndexCache` just before a trie index is built.
    pub const TRIE_BUILD: &str = "trie_build";
    /// Hit from every engine's inner loop at the cooperative check stride.
    pub const JOIN_STEP: &str = "join_step";
    /// Hit by the disk store just before a record is appended to the write-ahead
    /// log. A `Panic` here leaves a deliberately torn record on disk (the crash
    /// the recovery scan must discard); a `Trip` surfaces as a typed store fault.
    pub const WAL_APPEND: &str = "wal_append";
    /// Hit by the pager just before a page is written to the data file (buffer
    /// pool evictions and checkpoint writes alike).
    pub const PAGE_FLUSH: &str = "page_flush";
    /// Hit during recovery just before each scanned WAL record is replayed onto
    /// the checkpoint image.
    pub const RECOVERY_REPLAY: &str = "recovery_replay";
}

/// What an armed failpoint injects when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site (payload: `"failpoint panic: <site>"`).
    Panic,
    /// Sleep for the given duration at the site, then continue normally.
    Delay(Duration),
    /// Force a budget trip: the caller aborts with a typed budget error.
    Trip,
}

/// The action a caller must perform after [`FailpointRegistry::hit`] returns
/// `Some` — delays are absorbed inside `hit` itself and never surface here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailpointHit {
    /// The caller should `panic!("failpoint panic: <site>")`.
    Panic,
    /// The caller should trip its budget/stop machinery.
    Trip,
}

#[derive(Debug, Clone)]
struct Armed {
    action: FailAction,
    /// Hits to ignore before the site starts firing.
    skip: u64,
    /// Remaining times the site fires before going dormant.
    remaining: u64,
}

/// An instance-scoped set of armed failpoints (see the module docs).
///
/// All methods take `&self`; the registry is shared across worker threads behind an
/// `Arc`. Lock poisoning is impossible to observe from the outside: the registry is
/// explicitly used on panic paths, so every lock access recovers the inner value.
#[derive(Debug, Default)]
pub struct FailpointRegistry {
    armed: Mutex<HashMap<String, Armed>>,
    /// First site that actually fired an action (sticky until [`clear`](Self::clear)).
    fired: Mutex<Option<String>>,
}

impl FailpointRegistry {
    /// Creates a registry with no site armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `site` to fire `action` on every hit until disarmed.
    pub fn arm(&self, site: &str, action: FailAction) {
        self.arm_after(site, action, 0, u64::MAX);
    }

    /// Arms `site` to ignore its first `skip` hits, then fire `action` for the next
    /// `times` hits, then go dormant.
    pub fn arm_after(&self, site: &str, action: FailAction, skip: u64, times: u64) {
        let armed = Armed { action, skip, remaining: times };
        self.lock_armed().insert(site.to_string(), armed);
    }

    /// Disarms `site` (a no-op if it was never armed).
    pub fn disarm(&self, site: &str) {
        self.lock_armed().remove(site);
    }

    /// Disarms every site and forgets which site fired.
    pub fn clear(&self) {
        self.lock_armed().clear();
        *self.lock_fired() = None;
    }

    /// The first site that actually fired an action, if any.
    pub fn fired(&self) -> Option<String> {
        self.lock_fired().clone()
    }

    /// Registers one hit of `site`.
    ///
    /// Returns the action the caller must perform, or `None` when the site is
    /// dormant. [`FailAction::Delay`] sleeps *here* (with no lock held) and returns
    /// `None`, so callers only ever handle panics and trips.
    pub fn hit(&self, site: &str) -> Option<FailpointHit> {
        let action = {
            let mut armed = self.lock_armed();
            let entry = armed.get_mut(site)?;
            if entry.skip > 0 {
                entry.skip -= 1;
                return None;
            }
            if entry.remaining == 0 {
                return None;
            }
            entry.remaining -= 1;
            entry.action
        };
        self.lock_fired().get_or_insert_with(|| site.to_string());
        match action {
            FailAction::Panic => Some(FailpointHit::Panic),
            FailAction::Trip => Some(FailpointHit::Trip),
            FailAction::Delay(d) => {
                std::thread::sleep(d);
                None
            }
        }
    }

    fn lock_armed(&self) -> std::sync::MutexGuard<'_, HashMap<String, Armed>> {
        self.armed.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_fired(&self) -> std::sync::MutexGuard<'_, Option<String>> {
        self.fired.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_sites_never_fire() {
        let fp = FailpointRegistry::new();
        assert_eq!(fp.hit(sites::JOIN_STEP), None);
        assert_eq!(fp.fired(), None);
    }

    #[test]
    fn skip_and_times_bound_the_firing_window() {
        let fp = FailpointRegistry::new();
        fp.arm_after(sites::JOIN_STEP, FailAction::Trip, 2, 1);
        assert_eq!(fp.hit(sites::JOIN_STEP), None, "skipped");
        assert_eq!(fp.hit(sites::JOIN_STEP), None, "skipped");
        assert_eq!(fp.hit(sites::JOIN_STEP), Some(FailpointHit::Trip));
        assert_eq!(fp.hit(sites::JOIN_STEP), None, "budget of 1 firing exhausted");
        assert_eq!(fp.fired().as_deref(), Some(sites::JOIN_STEP));
    }

    #[test]
    fn delay_is_absorbed_and_still_recorded() {
        let fp = FailpointRegistry::new();
        fp.arm(sites::MORSEL_CLAIM, FailAction::Delay(Duration::from_millis(1)));
        assert_eq!(fp.hit(sites::MORSEL_CLAIM), None);
        assert_eq!(fp.fired().as_deref(), Some(sites::MORSEL_CLAIM));
    }

    #[test]
    fn first_fired_site_is_sticky_until_clear() {
        let fp = FailpointRegistry::new();
        fp.arm(sites::SHARD_MERGE, FailAction::Trip);
        fp.arm(sites::TRIE_BUILD, FailAction::Trip);
        fp.hit(sites::SHARD_MERGE);
        fp.hit(sites::TRIE_BUILD);
        assert_eq!(fp.fired().as_deref(), Some(sites::SHARD_MERGE));
        fp.clear();
        assert_eq!(fp.fired(), None);
        assert_eq!(fp.hit(sites::SHARD_MERGE), None, "clear disarms everything");
    }

    #[test]
    fn disarm_silences_a_site() {
        let fp = FailpointRegistry::new();
        fp.arm(sites::JOIN_STEP, FailAction::Panic);
        fp.disarm(sites::JOIN_STEP);
        assert_eq!(fp.hit(sites::JOIN_STEP), None);
    }
}
