//! Graph containers: edge lists and CSR adjacency.
//!
//! The paper's workloads are graph-pattern queries over a single `edge(a, b)`
//! relation derived from SNAP graphs. [`Graph`] is the loader-side container
//! (deduplicated edge list with optional symmetrisation), and [`Csr`] is the
//! compressed-sparse-row adjacency view used by the specialised graph-engine baseline
//! (the GraphLab stand-in) and by the data generators when they need neighbourhood
//! queries.

use crate::relation::Relation;
use crate::value::Val;

/// An undirected or directed graph stored as a deduplicated edge list.
///
/// Node identifiers are dense `0..num_nodes`. Self-loops are dropped on construction
/// because none of the paper's pattern queries admit them (every query binds distinct
/// nodes through `<` filters or distinct sample predicates).
#[derive(Debug, Clone)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph from raw edges. Self-loops are removed and duplicate edges are
    /// collapsed. `num_nodes` must be larger than every endpoint.
    pub fn new(num_nodes: usize, mut edges: Vec<(u32, u32)>) -> Self {
        edges.retain(|&(a, b)| a != b);
        for &(a, b) in &edges {
            assert!(
                (a as usize) < num_nodes && (b as usize) < num_nodes,
                "edge ({a}, {b}) out of range for {num_nodes} nodes"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        Graph { num_nodes, edges }
    }

    /// Builds an undirected graph: both orientations of every edge are kept so that
    /// the `edge` relation is symmetric, matching how the paper treats graphs as
    /// undirected for the clique queries.
    pub fn new_undirected(num_nodes: usize, edges: Vec<(u32, u32)>) -> Self {
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for (a, b) in edges {
            if a == b {
                continue;
            }
            sym.push((a, b));
            sym.push((b, a));
        }
        Graph::new(num_nodes, sym)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of stored (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of undirected edges (each symmetric pair counted once).
    pub fn num_undirected_edges(&self) -> usize {
        self.edges.iter().filter(|&&(a, b)| a < b).count()
    }

    /// The sorted, deduplicated edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Converts the edge list into the binary `edge(a, b)` relation used by the join
    /// engines.
    pub fn edge_relation(&self) -> Relation {
        Relation::from_pairs(self.edges.iter().map(|&(a, b)| (a as Val, b as Val)))
    }

    /// Converts only the `a < b` orientation into a relation (useful for queries that
    /// already impose an order on the pattern's nodes).
    pub fn oriented_edge_relation(&self) -> Relation {
        Relation::from_pairs(
            self.edges.iter().filter(|&&(a, b)| a < b).map(|&(a, b)| (a as Val, b as Val)),
        )
    }

    /// Keeps only the first `n` edges in `(a, b)` sorted order, mirroring the paper's
    /// "LiveJournal subset of N edges" scaling experiment (Figures 6 and 7).
    pub fn edge_prefix(&self, n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = self.edges.iter().copied().take(n).collect();
        Graph::new(self.num_nodes, edges)
    }

    /// Builds the CSR adjacency view.
    pub fn to_csr(&self) -> Csr {
        Csr::from_graph(self)
    }

    /// Counts triangles, treating the graph as undirected. Used to validate that the
    /// synthetic datasets land in the same clique-richness regime as the SNAP graphs
    /// they stand in for.
    pub fn triangle_count(&self) -> u64 {
        self.to_csr().triangle_count()
    }
}

/// Compressed-sparse-row adjacency with sorted neighbour lists.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Csr {
    /// Builds the CSR from a graph's directed edge list.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut degree = vec![0usize; n];
        for &(a, _) in g.edges() {
            degree[a as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut neighbors = vec![0u32; g.num_edges()];
        let mut cursor = offsets.clone();
        for &(a, b) in g.edges() {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
        }
        // Edge list is sorted by (a, b), so each neighbour run is already sorted.
        Csr { offsets, neighbors }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted neighbour list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Whether the directed edge `(a, b)` exists.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Size of the intersection of two sorted neighbour lists.
    pub fn intersection_count(xs: &[u32], ys: &[u32]) -> u64 {
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Triangle count via the node-iterator algorithm (each triangle counted once,
    /// graph treated as undirected / symmetric).
    pub fn triangle_count(&self) -> u64 {
        let n = self.num_nodes();
        let mut count = 0u64;
        for a in 0..n as u32 {
            let na = self.neighbors(a);
            for &b in na.iter().filter(|&&b| b > a) {
                let nb = self.neighbors(b);
                // Count common neighbours c with c > b to count each triangle once.
                let start_a = na.partition_point(|&x| x <= b);
                let start_b = nb.partition_point(|&x| x <= b);
                count += Self::intersection_count(&na[start_a..], &nb[start_b..]);
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph {
        // Triangle 0-1-2 plus a pendant 2-3.
        Graph::new_undirected(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn undirected_construction_symmetrises() {
        let g = small_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.num_undirected_edges(), 4);
        assert!(g.edges().contains(&(1, 0)));
        assert!(g.edges().contains(&(0, 1)));
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Graph::new(3, vec![(0, 0), (0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_relation_roundtrip() {
        let g = small_graph();
        let r = g.edge_relation();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 8);
        assert!(r.contains(&[3, 2]));
        let oriented = g.oriented_edge_relation();
        assert_eq!(oriented.len(), 4);
        assert!(oriented.contains(&[0, 1]));
        assert!(!oriented.contains(&[1, 0]));
    }

    #[test]
    fn csr_neighbors_sorted() {
        let csr = small_graph().to_csr();
        assert_eq!(csr.neighbors(2), &[0, 1, 3]);
        assert_eq!(csr.degree(0), 2);
        assert!(csr.has_edge(0, 2));
        assert!(!csr.has_edge(0, 3));
    }

    #[test]
    fn triangle_count_small() {
        assert_eq!(small_graph().triangle_count(), 1);
        // K4 has 4 triangles.
        let k4 = Graph::new_undirected(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(k4.triangle_count(), 4);
        // A path has none.
        let path = Graph::new_undirected(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(path.triangle_count(), 0);
    }

    #[test]
    fn edge_prefix_truncates() {
        let g = small_graph();
        let sub = g.edge_prefix(3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.num_nodes(), g.num_nodes());
    }

    #[test]
    fn intersection_count_basic() {
        assert_eq!(Csr::intersection_count(&[1, 3, 5, 7], &[2, 3, 5, 8]), 2);
        assert_eq!(Csr::intersection_count(&[], &[1, 2]), 0);
    }
}
