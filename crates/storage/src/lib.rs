//! # gj-storage
//!
//! Storage substrate for the graph-pattern join engine.
//!
//! This crate implements the pieces of the LogicBlox storage layer that the paper's
//! join algorithms rely on (Section 4.1, Figure 1 of the paper):
//!
//! * [`Relation`] — a sorted, deduplicated, fixed-arity relation of integer tuples.
//! * [`TrieIndex`] — a *flat trie* built over a relation for a given attribute
//!   permutation, exposing the LeapFrog TrieJoin iterator interface
//!   ([`TrieIterator`]: `open`/`up`/`next`/`seek`) as well as the least-upper-bound /
//!   greatest-lower-bound probes ([`TrieIndex::probe`]) that Minesweeper's gap
//!   extraction (`seekGap`) needs.
//! * [`Graph`] — an edge-list / CSR view of a graph used by the data generators, the
//!   specialised graph-engine baseline, and the dataset catalog.
//!
//! Values are [`Val`] (`i64`). Minesweeper uses the sentinels [`NEG_INF`] and
//! [`POS_INF`] for the open ends of gap intervals; real data must stay strictly within
//! `(NEG_INF, POS_INF)`, which every loader in this workspace guarantees (node
//! identifiers are non-negative and far below `i64::MAX`).

pub mod graph;
pub mod relation;
pub mod trie;
pub mod value;

pub use graph::{Csr, Graph};
pub use relation::Relation;
pub use trie::{ProbeResult, TrieIndex, TrieIterator};
pub use value::{Tuple, Val, NEG_INF, POS_INF};
