//! # gj-storage
//!
//! Storage substrate for the graph-pattern join engine.
//!
//! This crate implements the pieces of the LogicBlox storage layer that the paper's
//! join algorithms rely on (Section 4.1, Figure 1 of the paper):
//!
//! * [`Relation`] — a sorted, deduplicated, fixed-arity relation of integer tuples.
//! * [`TrieIndex`] — a *flat trie* built over a relation for a given attribute
//!   permutation, exposing the LeapFrog TrieJoin iterator interface
//!   ([`TrieIterator`]: `open`/`up`/`next`/`seek`) as well as the least-upper-bound /
//!   greatest-lower-bound probes ([`TrieIndex::probe`]) that Minesweeper's gap
//!   extraction (`seekGap`) needs.
//! * [`Graph`] — an edge-list / CSR view of a graph used by the data generators, the
//!   specialised graph-engine baseline, and the dataset catalog.
//!
//! # Flat columnar storage layout
//!
//! A [`Relation`] stores its tuples in **one contiguous row-major buffer** of
//! `len × arity` values — there is no per-row allocation anywhere in the hot paths.
//! Rows are handed out as zero-copy `&[Val]` slices ([`Relation::row`],
//! [`Relation::iter`]), and all reordering (construction-time sorting, permuted
//! orders for index builds) happens through row-*index* permutations over the flat
//! buffer ([`Relation::sorted_row_order`]).
//!
//! # Zero-materialization index builds
//!
//! [`TrieIndex::build`] upholds the invariant that **no intermediate permuted
//! relation is ever materialized**: for any attribute permutation it sorts a row
//! index array (a no-op for the identity order, since relations keep their rows
//! sorted) and streams the trie level arrays directly out of the relation's flat
//! buffer through that order. A property test
//! (`tests/prop_trie.rs::flat_build_is_identical_to_build_through_permuted_relation`)
//! checks the result is structurally identical to the reference build that goes
//! through [`Relation::permute`]. The per-relation maximum value is cached on the
//! relation and copied into every index at build time, so
//! [`TrieIndex::max_value`] — which Minesweeper consults on every bind — is a field
//! read, not a level rescan.
//!
//! Values are [`Val`] (`i64`). Minesweeper uses the sentinels [`NEG_INF`] and
//! [`POS_INF`] for the open ends of gap intervals; real data must stay strictly within
//! `(NEG_INF, POS_INF)`, which every loader in this workspace guarantees (node
//! identifiers are non-negative and far below `i64::MAX`).

pub mod fault;
pub mod graph;
pub mod relation;
pub mod trie;
pub mod value;

pub use fault::{FailAction, FailpointHit, FailpointRegistry};
pub use graph::{Csr, Graph};
pub use relation::Relation;
pub use trie::{ProbeResult, TrieIndex, TrieIterator};
pub use value::{is_finite, Tuple, Val, NEG_INF, POS_INF};
