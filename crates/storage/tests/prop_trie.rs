//! Property-based tests for the trie index: every probe, seek and prefix walk must
//! agree with a naive linear-scan reference over the same set of rows, and the
//! zero-materialization build must be structurally identical to a reference build
//! through an explicitly permuted relation.

use gj_storage::{ProbeResult, Relation, TrieIndex, Val, NEG_INF, POS_INF};
use proptest::prelude::*;

/// Strategy: a small relation of the given arity with values in 0..20.
fn rows(arity: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0i64..20, arity), 0..60)
}

/// Reference probe: scan all rows, restrict on the longest matching prefix.
fn reference_probe(rows: &[Vec<i64>], t: &[i64]) -> ProbeResult {
    let arity = t.len();
    let mut candidates: Vec<&Vec<i64>> = rows.iter().collect();
    for d in 0..arity {
        let extending: Vec<&Vec<i64>> =
            candidates.iter().copied().filter(|r| r[d] == t[d]).collect();
        if extending.is_empty() {
            let lower =
                candidates.iter().map(|r| r[d]).filter(|&v| v < t[d]).max().unwrap_or(NEG_INF);
            let upper =
                candidates.iter().map(|r| r[d]).filter(|&v| v > t[d]).min().unwrap_or(POS_INF);
            return ProbeResult::Gap { depth: d, lower, upper };
        }
        candidates = extending;
    }
    ProbeResult::Found
}

/// Deterministic permutation of `0..n` derived from a seed (Fisher–Yates with a
/// cheap multiplicative stream).
fn seeded_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (seed as usize).wrapping_mul(2654435761).wrapping_add(i * 40503) % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #[test]
    fn probe_agrees_with_linear_scan(rows in rows(3), probes in prop::collection::vec(prop::collection::vec(0i64..20, 3), 1..20)) {
        let rel = Relation::from_rows(3, rows);
        let idx = TrieIndex::build_natural(&rel);
        for t in &probes {
            prop_assert_eq!(idx.probe(t), reference_probe(&rel.to_rows(), t));
        }
    }

    #[test]
    fn contains_agrees_with_relation(rows in rows(2), probes in prop::collection::vec(prop::collection::vec(0i64..20, 2), 1..20)) {
        let rel = Relation::from_rows(2, rows);
        let idx = TrieIndex::build_natural(&rel);
        for t in &probes {
            prop_assert_eq!(idx.contains(t), rel.contains(t));
        }
    }

    #[test]
    fn permuted_index_is_permuted_relation(rows in rows(3)) {
        let rel = Relation::from_rows(3, rows);
        let perm = [2usize, 0, 1];
        let idx = TrieIndex::build(&rel, &perm);
        for row in rel.iter() {
            let projected: Vec<i64> = perm.iter().map(|&i| row[i]).collect();
            prop_assert!(idx.contains(&projected));
        }
        prop_assert_eq!(idx.num_rows(), rel.len());
    }

    /// The tentpole invariant of the columnar refactor: building straight from the
    /// flat buffer via a sorted row-index permutation produces an index that is
    /// structurally identical — every level's value array and every child-offset
    /// array — to the reference build that materializes an explicitly permuted
    /// relation first, for random relations, arities and permutations.
    #[test]
    fn flat_build_is_identical_to_build_through_permuted_relation(
        raw in prop::collection::vec(prop::collection::vec(0i64..12, 4), 0..80),
        arity in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let rows: Vec<Vec<i64>> = raw.into_iter().map(|r| r[..arity].to_vec()).collect();
        let rel = Relation::from_rows(arity, rows);
        let perm = seeded_perm(arity, seed);

        // Zero-materialization build in the permuted order.
        let flat = TrieIndex::build(&rel, &perm);
        // Reference: materialize the permuted relation, then index it naturally.
        let reference = TrieIndex::build_natural(&rel.permute(&perm));

        prop_assert_eq!(flat.arity(), reference.arity());
        prop_assert_eq!(flat.num_rows(), reference.num_rows());
        prop_assert_eq!(flat.max_value(), reference.max_value());
        for d in 0..arity {
            prop_assert_eq!(
                flat.level_values(d),
                reference.level_values(d),
                "level {} values differ under perm {:?}", d, &perm
            );
        }
        for d in 0..arity.saturating_sub(1) {
            prop_assert_eq!(
                flat.child_offsets(d),
                reference.child_offsets(d),
                "level {} child offsets differ under perm {:?}", d, &perm
            );
        }
    }

    /// `max_value` is cached at build time and equals the true maximum across all
    /// levels regardless of the indexing order.
    #[test]
    fn cached_max_value_is_the_level_maximum(rows in rows(3), seed in 0u64..1000) {
        let rel = Relation::from_rows(3, rows);
        let perm = seeded_perm(3, seed);
        let idx = TrieIndex::build(&rel, &perm);
        let scanned = (0..3).flat_map(|d| idx.level_values(d).iter().copied()).max();
        prop_assert_eq!(idx.max_value(), scanned);
        prop_assert_eq!(idx.max_value(), rel.max_value());
    }

    #[test]
    fn iterator_enumerates_level0_values(rows in rows(2)) {
        let rel = Relation::from_rows(2, rows);
        let idx = TrieIndex::build_natural(&rel);
        let mut seen = Vec::new();
        let mut it = idx.iter();
        it.open();
        while !it.at_end() {
            seen.push(it.key());
            it.next();
        }
        let mut expected: Vec<i64> = rel.iter().map(|r| r[0]).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn seek_lands_on_least_geq(rows in rows(1), targets in prop::collection::vec(0i64..25, 1..10)) {
        let rel = Relation::from_rows(1, rows);
        let idx = TrieIndex::build_natural(&rel);
        let values: Vec<Val> = rel.iter().map(|r| r[0]).collect();
        for &t in &targets {
            let mut it = idx.iter();
            it.open();
            if it.at_end() { continue; }
            it.seek(t);
            let expected = values.iter().copied().find(|&v| v >= t);
            match expected {
                Some(v) => { prop_assert!(!it.at_end()); prop_assert_eq!(it.key(), v); }
                None => prop_assert!(it.at_end()),
            }
        }
    }
}
