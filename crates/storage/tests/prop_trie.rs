//! Property-based tests for the trie index: every probe, seek and prefix walk must
//! agree with a naive linear-scan reference over the same set of rows.

use gj_storage::{ProbeResult, Relation, TrieIndex, NEG_INF, POS_INF};
use proptest::prelude::*;

/// Strategy: a small relation of the given arity with values in 0..20.
fn rows(arity: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0i64..20, arity), 0..60)
}

/// Reference probe: scan all rows, restrict on the longest matching prefix.
fn reference_probe(rows: &[Vec<i64>], t: &[i64]) -> ProbeResult {
    let arity = t.len();
    let mut candidates: Vec<&Vec<i64>> = rows.iter().collect();
    for d in 0..arity {
        let extending: Vec<&Vec<i64>> =
            candidates.iter().copied().filter(|r| r[d] == t[d]).collect();
        if extending.is_empty() {
            let lower = candidates.iter().map(|r| r[d]).filter(|&v| v < t[d]).max().unwrap_or(NEG_INF);
            let upper = candidates.iter().map(|r| r[d]).filter(|&v| v > t[d]).min().unwrap_or(POS_INF);
            return ProbeResult::Gap { depth: d, lower, upper };
        }
        candidates = extending;
    }
    ProbeResult::Found
}

proptest! {
    #[test]
    fn probe_agrees_with_linear_scan(rows in rows(3), probes in prop::collection::vec(prop::collection::vec(0i64..20, 3), 1..20)) {
        let rel = Relation::from_rows(3, rows);
        let idx = TrieIndex::build_natural(&rel);
        for t in &probes {
            prop_assert_eq!(idx.probe(t), reference_probe(rel.rows(), t));
        }
    }

    #[test]
    fn contains_agrees_with_relation(rows in rows(2), probes in prop::collection::vec(prop::collection::vec(0i64..20, 2), 1..20)) {
        let rel = Relation::from_rows(2, rows);
        let idx = TrieIndex::build_natural(&rel);
        for t in &probes {
            prop_assert_eq!(idx.contains(t), rel.contains(t));
        }
    }

    #[test]
    fn permuted_index_is_permuted_relation(rows in rows(3)) {
        let rel = Relation::from_rows(3, rows);
        let perm = [2usize, 0, 1];
        let idx = TrieIndex::build(&rel, &perm);
        for row in rel.rows() {
            let projected: Vec<i64> = perm.iter().map(|&i| row[i]).collect();
            prop_assert!(idx.contains(&projected));
        }
        prop_assert_eq!(idx.num_rows(), rel.len());
    }

    #[test]
    fn iterator_enumerates_level0_values(rows in rows(2)) {
        let rel = Relation::from_rows(2, rows);
        let idx = TrieIndex::build_natural(&rel);
        let mut seen = Vec::new();
        let mut it = idx.iter();
        it.open();
        while !it.at_end() {
            seen.push(it.key());
            it.next();
        }
        let mut expected: Vec<i64> = rel.rows().iter().map(|r| r[0]).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn seek_lands_on_least_geq(rows in rows(1), targets in prop::collection::vec(0i64..25, 1..10)) {
        let rel = Relation::from_rows(1, rows);
        let idx = TrieIndex::build_natural(&rel);
        let values: Vec<i64> = rel.rows().iter().map(|r| r[0]).collect();
        for &t in &targets {
            let mut it = idx.iter();
            it.open();
            if it.at_end() { continue; }
            it.seek(t);
            let expected = values.iter().copied().find(|&v| v >= t);
            match expected {
                Some(v) => { prop_assert!(!it.at_end()); prop_assert_eq!(it.key(), v); }
                None => prop_assert!(it.at_end()),
            }
        }
    }
}
