//! Seeded random graph generators.
//!
//! Two families cover the regimes of the paper's datasets:
//!
//! * [`erdos_renyi`] — uniform random graphs; triangle-poor at the densities of the
//!   p2p-Gnutella graphs;
//! * [`powerlaw_cluster`] — preferential attachment (Barabási–Albert) with a
//!   triangle-closure step (Holme–Kim), giving the heavy-tailed degree distributions
//!   and high triangle counts of social/collaboration networks. The `triangle_prob`
//!   parameter tunes how clique-rich the result is.
//!
//! Both are deterministic in the seed, so every harness run sees the same data.

use crate::error::DatagenError;
use gj_storage::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi style random graph: `target_edges` undirected edges sampled uniformly
/// (duplicates and self-loops dropped, so the realised edge count can be slightly
/// lower).
pub fn erdos_renyi(num_nodes: usize, target_edges: usize, seed: u64) -> Graph {
    assert!(num_nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(target_edges);
    for _ in 0..target_edges {
        let a = rng.gen_range(0..num_nodes as u32);
        let b = rng.gen_range(0..num_nodes as u32);
        if a != b {
            edges.push((a, b));
        }
    }
    Graph::new_undirected(num_nodes, edges)
}

/// Powerlaw-cluster graph (Holme–Kim): each new node attaches to `edges_per_node`
/// targets chosen by preferential attachment; after each attachment, with probability
/// `triangle_prob` the next attachment goes to a random neighbour of the previous
/// target, closing a triangle.
///
/// Panicking wrapper around [`try_powerlaw_cluster`] for callers with
/// statically-known-good parameters (the dataset catalog, examples, benches).
pub fn powerlaw_cluster(
    num_nodes: usize,
    edges_per_node: usize,
    triangle_prob: f64,
    seed: u64,
) -> Graph {
    match try_powerlaw_cluster(num_nodes, edges_per_node, triangle_prob, seed) {
        Ok(graph) => graph,
        Err(err) => panic!("powerlaw_cluster: {err}"),
    }
}

/// Fallible [`powerlaw_cluster`]: rejects `edges_per_node >= num_nodes` with a
/// typed [`DatagenError`] instead of silently clamping it to `num_nodes - 1`
/// (which used to change the generated graph without telling the caller).
pub fn try_powerlaw_cluster(
    num_nodes: usize,
    edges_per_node: usize,
    triangle_prob: f64,
    seed: u64,
) -> Result<Graph, DatagenError> {
    assert!(num_nodes >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&triangle_prob), "triangle_prob must be a probability");
    if edges_per_node >= num_nodes {
        return Err(DatagenError::DegreeOverflow {
            what: "edges_per_node",
            requested: edges_per_node,
            available: num_nodes,
        });
    }
    let m = edges_per_node.max(1);
    let mut rng = StdRng::seed_from_u64(seed);

    // `targets_pool` holds one entry per edge endpoint, so sampling uniformly from it
    // is preferential attachment. Adjacency lists support the triangle-closure step.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(num_nodes * m);
    let mut pool: Vec<u32> = Vec::with_capacity(2 * num_nodes * m);
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];

    // Seed clique of m+1 nodes so early preferential choices are well defined.
    let seed_nodes = (m + 1).min(num_nodes);
    for a in 0..seed_nodes as u32 {
        for b in (a + 1)..seed_nodes as u32 {
            edges.push((a, b));
            pool.push(a);
            pool.push(b);
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
    }

    for v in seed_nodes as u32..num_nodes as u32 {
        let mut last_target: Option<u32> = None;
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m && guard < 20 * m {
            guard += 1;
            let candidate = match last_target {
                // Triangle-closure step: connect to a neighbour of the previous target.
                Some(t) if rng.gen_bool(triangle_prob) && !adjacency[t as usize].is_empty() => {
                    adjacency[t as usize][rng.gen_range(0..adjacency[t as usize].len())]
                }
                _ => pool[rng.gen_range(0..pool.len())],
            };
            if candidate == v || adjacency[v as usize].contains(&candidate) {
                last_target = None;
                continue;
            }
            edges.push((v, candidate));
            pool.push(v);
            pool.push(candidate);
            adjacency[v as usize].push(candidate);
            adjacency[candidate as usize].push(v);
            last_target = Some(candidate);
            added += 1;
        }
    }
    Ok(Graph::new_undirected(num_nodes, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_is_deterministic_in_the_seed() {
        let a = erdos_renyi(200, 800, 7);
        let b = erdos_renyi(200, 800, 7);
        let c = erdos_renyi(200, 800, 8);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn erdos_renyi_edge_count_is_close_to_target() {
        let g = erdos_renyi(500, 2000, 3);
        let undirected = g.num_undirected_edges();
        assert!(undirected > 1800 && undirected <= 2000, "got {undirected}");
    }

    #[test]
    fn powerlaw_cluster_is_deterministic_and_connected_enough() {
        let a = powerlaw_cluster(300, 4, 0.6, 11);
        let b = powerlaw_cluster(300, 4, 0.6, 11);
        assert_eq!(a.edges(), b.edges());
        // Roughly m edges per added node.
        let undirected = a.num_undirected_edges();
        assert!(undirected >= 290 * 4 / 2, "got {undirected}");
    }

    #[test]
    fn triangle_closure_raises_the_triangle_count() {
        let flat = powerlaw_cluster(400, 4, 0.0, 5);
        let clustered = powerlaw_cluster(400, 4, 0.9, 5);
        assert!(
            clustered.triangle_count() > 2 * flat.triangle_count(),
            "clustered {} vs flat {}",
            clustered.triangle_count(),
            flat.triangle_count()
        );
    }

    #[test]
    fn erdos_renyi_is_triangle_poor_at_gnutella_density() {
        // ~2.4 average degree, like p2p-Gnutella: triangles should be rare.
        let g = erdos_renyi(10_000, 24_000, 9);
        let per_edge = g.triangle_count() as f64 / g.num_undirected_edges() as f64;
        assert!(per_edge < 0.05, "triangles per edge {per_edge}");
    }

    #[test]
    fn degenerate_sizes_still_work() {
        let g = powerlaw_cluster(2, 1, 0.5, 1);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_undirected_edges(), 1);
        let g = erdos_renyi(2, 10, 1);
        assert!(g.num_undirected_edges() <= 1);
    }

    #[test]
    fn oversized_edges_per_node_is_rejected_not_clamped() {
        // 3 neighbours per node in a 2-node simple graph cannot exist; the old
        // behaviour quietly generated the m = 1 graph instead.
        let err = try_powerlaw_cluster(2, 3, 0.5, 1).unwrap_err();
        assert_eq!(
            err,
            DatagenError::DegreeOverflow { what: "edges_per_node", requested: 3, available: 2 }
        );
        assert!(try_powerlaw_cluster(8, 7, 0.5, 1).is_ok());
    }
}
