//! # gj-datagen
//!
//! Synthetic graph workloads for the benchmark harness.
//!
//! The paper evaluates on SNAP graphs (Section 5.1). Those downloads are not part of
//! this repository, so the harness substitutes seeded synthetic graphs whose *regime*
//! matches each SNAP dataset: comparable node count (scaled down for the largest
//! graphs), comparable average degree, and a comparable triangle density — the three
//! properties the paper's comparisons actually hinge on (clique-rich social networks
//! versus triangle-poor peer-to-peer graphs, small versus large inputs). The
//! substitution and its rationale are documented in `DESIGN.md`; `EXPERIMENTS.md`
//! records the generated statistics next to the paper's.
//!
//! * [`generators`] — seeded Erdős–Rényi and powerlaw-cluster (preferential
//!   attachment with triangle closure) generators;
//! * [`catalog`] — one [`DatasetSpec`] per SNAP dataset used in
//!   the paper, with the paper's statistics and the matched generator parameters;
//! * [`sample`] — the random node samples (`v1`, `v2`, …) with selectivity `s`
//!   (each node kept with probability `1/s`), as used by the path/tree/comb/lollipop
//!   queries, plus the heavy-tailed [`powerlaw_degrees`] sampler;
//! * [`ldbc`] — an LDBC-style social network: a typed, attributed multi-relation
//!   schema (`person`, `knows`, `post`, `hasCreator`, ternary `likes`, `tag`,
//!   `hasTag`) with degree skew and temporal correlation, described by a
//!   [`Catalog`];
//! * [`error`] — typed [`DatagenError`] rejection for out-of-range generator
//!   parameters (no silent clamping).

pub mod catalog;
pub mod error;
pub mod generators;
pub mod ldbc;
pub mod sample;

pub use catalog::{Dataset, DatasetSpec};
pub use error::DatagenError;
pub use generators::{erdos_renyi, powerlaw_cluster, try_powerlaw_cluster};
pub use ldbc::{Catalog, Domain, EntityKind, LdbcConfig, RelationMeta, SocialNetwork};
pub use sample::{node_sample, powerlaw_degrees, sample_relations};
