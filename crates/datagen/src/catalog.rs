//! The dataset catalog: one synthetic stand-in per SNAP dataset used in the paper.
//!
//! Each [`Dataset`] records the statistics the paper reports (nodes, edges, triangle
//! count — Section 5.1) and the generator parameters chosen to land in the same
//! regime: triangle-poor Erdős–Rényi for the p2p-Gnutella graphs, powerlaw-cluster
//! (preferential attachment with triangle closure) for the social, collaboration and
//! communication networks. The three web-scale graphs (Pokec, LiveJournal, Orkut) are
//! additionally scaled down by default so the full benchmark harness runs on a
//! laptop; the scale factor is explicit and adjustable.

use crate::generators::{erdos_renyi, powerlaw_cluster};
use gj_storage::Graph;

/// Which generator family a dataset uses.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Family {
    /// Uniform random graph (triangle-poor).
    ErdosRenyi,
    /// Preferential attachment with triangle closure probability.
    PowerlawCluster { triangle_prob: f64 },
}

/// A synthetic stand-in for one of the paper's SNAP datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    WikiVote,
    P2pGnutella31,
    P2pGnutella04,
    LocBrightkite,
    EgoFacebook,
    EmailEnron,
    CaGrQc,
    CaCondMat,
    EgoTwitter,
    SocSlashdot0902,
    SocSlashdot0811,
    SocEpinions1,
    SocPokec,
    SocLiveJournal1,
    ComOrkut,
}

/// Static description of a dataset: the paper's numbers plus our generator choice.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// SNAP name as it appears in the paper's tables.
    pub name: &'static str,
    /// Node count reported in the paper.
    pub paper_nodes: usize,
    /// (Directed) edge count reported in the paper.
    pub paper_edges: usize,
    /// Triangle count reported in the paper.
    pub paper_triangles: u64,
    /// Default down-scaling factor applied to the node count (1.0 = full size).
    pub default_scale: f64,
    family: Family,
}

impl Dataset {
    /// All datasets, in the order of the paper's tables.
    pub fn all() -> [Dataset; 15] {
        [
            Dataset::WikiVote,
            Dataset::P2pGnutella31,
            Dataset::P2pGnutella04,
            Dataset::LocBrightkite,
            Dataset::EgoFacebook,
            Dataset::EmailEnron,
            Dataset::CaGrQc,
            Dataset::CaCondMat,
            Dataset::EgoTwitter,
            Dataset::SocSlashdot0902,
            Dataset::SocSlashdot0811,
            Dataset::SocEpinions1,
            Dataset::SocPokec,
            Dataset::SocLiveJournal1,
            Dataset::ComOrkut,
        ]
    }

    /// The small and medium datasets used in the ablation tables (Tables 1–4), i.e.
    /// everything except the three web-scale graphs.
    pub fn small_and_medium() -> Vec<Dataset> {
        Dataset::all()
            .into_iter()
            .filter(|d| {
                !matches!(d, Dataset::SocPokec | Dataset::SocLiveJournal1 | Dataset::ComOrkut)
            })
            .collect()
    }

    /// The dataset's static description.
    pub fn spec(&self) -> DatasetSpec {
        use Family::*;
        match self {
            Dataset::WikiVote => DatasetSpec {
                name: "wiki-Vote",
                paper_nodes: 7_115,
                paper_edges: 103_689,
                paper_triangles: 608_389,
                default_scale: 1.0,
                family: PowerlawCluster { triangle_prob: 0.75 },
            },
            Dataset::P2pGnutella31 => DatasetSpec {
                name: "p2p-Gnutella31",
                paper_nodes: 62_586,
                paper_edges: 147_892,
                paper_triangles: 2_024,
                default_scale: 1.0,
                family: ErdosRenyi,
            },
            Dataset::P2pGnutella04 => DatasetSpec {
                name: "p2p-Gnutella04",
                paper_nodes: 10_876,
                paper_edges: 39_994,
                paper_triangles: 934,
                default_scale: 1.0,
                family: ErdosRenyi,
            },
            Dataset::LocBrightkite => DatasetSpec {
                name: "loc-Brightkite",
                paper_nodes: 58_228,
                paper_edges: 428_156,
                paper_triangles: 494_728,
                default_scale: 1.0,
                family: PowerlawCluster { triangle_prob: 0.55 },
            },
            Dataset::EgoFacebook => DatasetSpec {
                name: "ego-Facebook",
                paper_nodes: 4_039,
                paper_edges: 88_234,
                paper_triangles: 1_612_010,
                default_scale: 1.0,
                family: PowerlawCluster { triangle_prob: 0.95 },
            },
            Dataset::EmailEnron => DatasetSpec {
                name: "email-Enron",
                paper_nodes: 36_692,
                paper_edges: 367_662,
                paper_triangles: 727_044,
                default_scale: 1.0,
                family: PowerlawCluster { triangle_prob: 0.6 },
            },
            Dataset::CaGrQc => DatasetSpec {
                name: "ca-GrQc",
                paper_nodes: 5_242,
                paper_edges: 28_980,
                paper_triangles: 48_260,
                default_scale: 1.0,
                family: PowerlawCluster { triangle_prob: 0.8 },
            },
            Dataset::CaCondMat => DatasetSpec {
                name: "ca-CondMat",
                paper_nodes: 23_133,
                paper_edges: 186_936,
                paper_triangles: 173_361,
                default_scale: 1.0,
                family: PowerlawCluster { triangle_prob: 0.65 },
            },
            Dataset::EgoTwitter => DatasetSpec {
                name: "ego-Twitter",
                paper_nodes: 81_306,
                paper_edges: 2_420_766,
                paper_triangles: 13_082_506,
                default_scale: 0.25,
                family: PowerlawCluster { triangle_prob: 0.7 },
            },
            Dataset::SocSlashdot0902 => DatasetSpec {
                name: "soc-Slashdot0902",
                paper_nodes: 82_168,
                paper_edges: 948_464,
                paper_triangles: 602_592,
                default_scale: 0.5,
                family: PowerlawCluster { triangle_prob: 0.45 },
            },
            Dataset::SocSlashdot0811 => DatasetSpec {
                name: "soc-Slashdot0811",
                paper_nodes: 77_360,
                paper_edges: 905_468,
                paper_triangles: 551_724,
                default_scale: 0.5,
                family: PowerlawCluster { triangle_prob: 0.45 },
            },
            Dataset::SocEpinions1 => DatasetSpec {
                name: "soc-Epinions1",
                paper_nodes: 75_879,
                paper_edges: 508_837,
                paper_triangles: 1_624_481,
                default_scale: 0.5,
                family: PowerlawCluster { triangle_prob: 0.7 },
            },
            Dataset::SocPokec => DatasetSpec {
                name: "soc-Pokec",
                paper_nodes: 1_632_803,
                paper_edges: 30_622_564,
                paper_triangles: 32_557_458,
                default_scale: 0.03,
                family: PowerlawCluster { triangle_prob: 0.4 },
            },
            Dataset::SocLiveJournal1 => DatasetSpec {
                name: "soc-LiveJournal1",
                paper_nodes: 4_847_571,
                paper_edges: 68_993_773,
                paper_triangles: 285_730_264,
                default_scale: 0.012,
                family: PowerlawCluster { triangle_prob: 0.55 },
            },
            Dataset::ComOrkut => DatasetSpec {
                name: "com-Orkut",
                paper_nodes: 3_072_441,
                paper_edges: 117_185_083,
                paper_triangles: 627_584_181,
                default_scale: 0.012,
                family: PowerlawCluster { triangle_prob: 0.6 },
            },
        }
    }

    /// The dataset's name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        self.spec().name
    }

    /// Generates the synthetic stand-in at the dataset's default scale.
    pub fn generate(&self) -> Graph {
        self.generate_scaled(self.spec().default_scale)
    }

    /// Generates the synthetic stand-in with an explicit node-count scale factor
    /// (`1.0` = the paper's node count). The average degree is preserved.
    pub fn generate_scaled(&self, scale: f64) -> Graph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = self.spec();
        let nodes = ((spec.paper_nodes as f64 * scale).round() as usize).max(16);
        // The paper's edge counts are directed; one undirected edge ~ 2 directed.
        let undirected_edges = spec.paper_edges / 2;
        let avg_degree = (undirected_edges as f64 / spec.paper_nodes as f64).max(1.0);
        let seed = seed_for(spec.name);
        match spec.family {
            Family::ErdosRenyi => {
                erdos_renyi(nodes, (nodes as f64 * avg_degree).round() as usize, seed)
            }
            Family::PowerlawCluster { triangle_prob } => {
                // Scaled-down instances can shrink below the paper's average
                // degree (e.g. Orkut at a tiny scale); cap it *explicitly*
                // here — the strict generator rejects oversized degrees.
                let m = (avg_degree.round() as usize).min(nodes - 1);
                powerlaw_cluster(nodes, m, triangle_prob, seed)
            }
        }
    }
}

/// Stable per-dataset seed derived from the name (FNV-1a).
fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_a_nonempty_graph() {
        for d in Dataset::all() {
            // Generate at a tiny scale so the test is fast even for ego-Twitter.
            let g = d.generate_scaled(d.spec().default_scale.min(0.05));
            assert!(g.num_nodes() > 0, "{}", d.name());
            assert!(g.num_undirected_edges() > 0, "{}", d.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::CaGrQc.generate_scaled(0.2);
        let b = Dataset::CaGrQc.generate_scaled(0.2);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn facebook_like_graph_is_triangle_rich_and_gnutella_like_is_not() {
        let fb = Dataset::EgoFacebook.generate_scaled(0.25);
        let gnutella = Dataset::P2pGnutella04.generate_scaled(0.25);
        let fb_ratio = fb.triangle_count() as f64 / fb.num_undirected_edges() as f64;
        let gn_ratio = gnutella.triangle_count() as f64 / gnutella.num_undirected_edges() as f64;
        assert!(fb_ratio > 20.0 * gn_ratio.max(1e-3), "facebook {fb_ratio} vs gnutella {gn_ratio}");
    }

    #[test]
    fn average_degree_tracks_the_paper() {
        let d = Dataset::CaCondMat;
        let g = d.generate_scaled(0.3);
        let spec = d.spec();
        let paper_avg = spec.paper_edges as f64 / 2.0 / spec.paper_nodes as f64;
        let ours = g.num_undirected_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (ours - paper_avg).abs() / paper_avg < 0.35,
            "avg degree {ours} vs paper {paper_avg}"
        );
    }

    #[test]
    fn small_and_medium_excludes_web_scale_graphs() {
        let list = Dataset::small_and_medium();
        assert_eq!(list.len(), 12);
        assert!(!list.contains(&Dataset::ComOrkut));
    }
}
