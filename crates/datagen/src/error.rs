//! Typed errors for the generators.
//!
//! Historically the generator surface either panicked (`assert!`) or *silently
//! clamped* out-of-range parameters — `powerlaw_cluster` used to cap
//! `edges_per_node` at `num_nodes - 1` without telling the caller, so a config
//! asking for more neighbours than there are nodes produced a quietly different
//! graph. Config-shaped inputs (the LDBC generator, degree samplers) now
//! validate up front and reject with a [`DatagenError`] instead.

use std::fmt;

/// A generator configuration was rejected before any data was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatagenError {
    /// A degree-style parameter asks for more distinct neighbours/targets than
    /// the requested population can provide (a simple graph over `available`
    /// nodes caps every degree at `available - 1`; a sampler without
    /// replacement caps the draw count at `available`).
    DegreeOverflow {
        /// Which parameter overflowed (e.g. `"edges_per_node"`).
        what: &'static str,
        /// The requested degree / draw count.
        requested: usize,
        /// The population it must fit into.
        available: usize,
    },
    /// A population parameter is empty where the generator needs at least one
    /// element (e.g. zero persons, zero tags).
    EmptyDomain {
        /// Which population is empty (e.g. `"persons"`).
        what: &'static str,
    },
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::DegreeOverflow { what, requested, available } => write!(
                f,
                "degree parameter {what} = {requested} overflows its population of {available} \
                 (no silent clamping; shrink the degree or grow the population)"
            ),
            DatagenError::EmptyDomain { what } => {
                write!(f, "population {what} is empty; the generator needs at least one element")
            }
        }
    }
}

impl std::error::Error for DatagenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter_and_population() {
        let err =
            DatagenError::DegreeOverflow { what: "edges_per_node", requested: 9, available: 4 };
        let msg = err.to_string();
        assert!(msg.contains("edges_per_node"));
        assert!(msg.contains('9'));
        assert!(msg.contains('4'));
        let err = DatagenError::EmptyDomain { what: "tags" };
        assert!(err.to_string().contains("tags"));
    }
}
